//! Pattern matching on a labeled social graph: graph simulation, subgraph
//! isomorphism and keyword search — the remaining query classes registered in
//! the demo library (Section 3(3)).
//!
//! Run with: `cargo run --release --example pattern_matching`

use grape::graph::labels::PatternGraph;
use grape::prelude::*;

fn main() {
    let graph = grape::graph::generators::labeled_social(
        grape::graph::generators::SocialGraphConfig {
            num_persons: 800,
            num_products: 10,
            ..Default::default()
        },
        5,
    )
    .expect("valid generator parameters");
    let workers = 6;
    let assignment = BuiltinStrategy::MetisLike.partition(&graph, workers);
    println!(
        "labeled graph: {} vertices, {} edges, {} workers",
        graph.num_vertices(),
        graph.num_edges(),
        workers
    );

    // person --follows--> person --recommends--> product
    let pattern = PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
        .edge_labeled(0, 1, "follows")
        .edge_labeled(1, 2, "recommends");

    // 1. Graph simulation (polynomial time, set semantics).
    let sim = GrapeEngine::new(SimProgram)
        .run_on_graph(&SimQuery::new(pattern.clone()), &graph, &assignment)
        .expect("sim run succeeds");
    println!("\nsimulation:");
    for (u, matches) in sim.output.iter().enumerate() {
        println!(
            "  pattern vertex {u}: {} matching data vertices",
            matches.len()
        );
    }
    println!("  {}", sim.stats.summary());

    // 2. Subgraph isomorphism (exact embeddings, capped for the demo).
    let subiso_query = SubIsoQuery::new(pattern).with_max_matches(1_000);
    let subiso = GrapeEngine::new(SubIsoProgram)
        .run_on_graph(&subiso_query, &graph, &assignment)
        .expect("subiso run succeeds");
    println!(
        "\nsubgraph isomorphism: {} embeddings found",
        subiso.output.len()
    );
    println!("  {}", subiso.stats.summary());

    // 3. Keyword search: who can reach both a phone and a laptop quickly?
    let keyword_query = KeywordQuery::new(["phone", "laptop"], 6.0);
    let keyword = GrapeEngine::new(KeywordProgram)
        .run_on_graph(&keyword_query, &graph, &assignment)
        .expect("keyword run succeeds");
    let within: Vec<_> = keyword
        .output
        .iter()
        .filter(|a| a.total <= keyword_query.max_total_distance)
        .collect();
    println!(
        "\nkeyword search: {} roots reach all keywords within total distance {}",
        within.len(),
        keyword_query.max_total_distance
    );
    for answer in within.iter().take(5) {
        println!(
            "  root {:>6}: distances {:?} (total {})",
            answer.root, answer.distances, answer.total
        );
    }
    println!("  {}", keyword.stats.summary());
}
