//! Quickstart: plug a sequential algorithm into GRAPE and run it in parallel.
//!
//! This is the "plug and play" walk-through of Section 3: the SSSP PIE
//! program (Dijkstra + incremental SSSP + union) is registered, a graph is
//! generated and partitioned, and the engine executes the simultaneous
//! fixpoint, reporting the same per-run analytics the demo's panel shows.
//!
//! Run with: `cargo run --release --example quickstart`

use grape::prelude::*;

fn main() {
    // 1. A workload: a road-network-like grid (large diameter, low degree).
    let graph = grape::graph::generators::road_network(
        grape::graph::generators::RoadNetworkConfig {
            width: 128,
            height: 128,
            ..Default::default()
        },
        42,
    )
    .expect("valid generator parameters");
    let summary = grape::graph::metrics::summarize(&graph);
    println!(
        "graph: {} vertices, {} edges, {} components",
        summary.num_vertices, summary.num_edges, summary.num_components
    );

    // 2. Pick a partition strategy and a number of workers (the Play panel).
    let workers = 8;
    let assignment = BuiltinStrategy::MetisLike.partition(&graph, workers);
    let quality = grape::partition::evaluate_partition(&graph, &assignment);
    println!("partition: {}", quality.summary());

    // 3. Plug in the PIE program and run the query.
    let engine = GrapeEngine::new(SsspProgram)
        .with_config(EngineConfig::builder().check_monotonicity(true).build());
    let query = SsspQuery::new(0);
    let result = engine
        .run_on_graph(&query, &graph, &assignment)
        .expect("run succeeds");

    // 4. Inspect the answer and the analytics.
    let reachable = result.output.values().filter(|d| d.is_finite()).count();
    let max_dist = result
        .output
        .values()
        .filter(|d| d.is_finite())
        .fold(0.0f64, |a, b| a.max(*b));
    println!(
        "sssp from vertex 0: {} reachable vertices, farthest at distance {:.1}",
        reachable, max_dist
    );
    println!("analytics: {}", result.stats.summary());
    for trace in result.stats.history.iter().take(5) {
        println!(
            "  superstep {}: {} active workers, {} changed parameters, {} messages",
            trace.superstep, trace.active_workers, trace.changed_parameters, trace.messages
        );
    }
    assert_eq!(
        result.stats.monotonicity_violations, 0,
        "SSSP satisfies the monotonic condition of the Assurance Theorem"
    );
}
