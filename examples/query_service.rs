//! Query-service mode: one resident graph, a stream of concurrent queries.
//!
//! Demonstrates the unified `Session` facade twice over the same workload —
//! first with in-process resident workers, then against a real
//! `GrapeService` daemon over framed TCP (spawned in this process for the
//! example's sake; `grape-worker daemon --listen …` runs the same thing
//! stand-alone). Both paths produce bit-identical results.
//!
//! Run with: `cargo run --example query_service`

use grape::prelude::*;
use grape::{GrapeService, Query, ServiceOptions, SessionConfig, SessionGraph};

fn main() -> std::io::Result<()> {
    let workers = 4;
    let graph = grape::graph::generators::labeled_social(
        grape::graph::generators::SocialGraphConfig {
            num_persons: 400,
            num_products: 40,
            ..Default::default()
        },
        21,
    )
    .expect("generator");

    // --- In-process session: load once, submit a batch of mixed classes. ---
    let session = Session::connect(SessionConfig::in_process(workers))?;
    session.load(&SessionGraph::from(graph.clone()), BuiltinStrategy::Hash)?;

    let handles = session.submit_batch(vec![
        Query::canonical_sim(),
        Query::canonical_keyword(),
        Query::marketing(400),
    ])?;
    let mut local_results = Vec::new();
    for handle in handles {
        let outcome = handle.join()?;
        println!("[in-process] {}", outcome.stats.summary());
        local_results.push(outcome.result);
    }

    // --- The same queries through a resident TCP daemon. ---
    let daemon = GrapeService::bind("127.0.0.1:0", ServiceOptions::default())?.spawn()?;
    let endpoint = daemon.endpoint().clone();
    println!("daemon listening on {endpoint}");

    let remote = Session::connect(SessionConfig::remote(workers, vec![endpoint]))?;
    remote.load(&SessionGraph::from(graph), BuiltinStrategy::Hash)?;

    // Different query classes in flight at once, multiplexed over the same
    // resident fragments.
    let sim = remote.submit(Query::canonical_sim())?;
    let keyword = remote.submit(Query::canonical_keyword())?;
    let marketing = remote.submit(Query::marketing(400))?;
    let remote_results = vec![
        sim.join()?.result,
        keyword.join()?.result,
        marketing.join()?.result,
    ];

    assert_eq!(
        local_results, remote_results,
        "service results must be bit-identical to the in-process reference"
    );
    println!("verified: remote session results bit-identical to in-process");

    daemon.shutdown()?;
    Ok(())
}
