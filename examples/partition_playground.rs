//! Partition playground: the demo's Play-panel experiment on the impact of
//! partition strategies (Section 3(3)) — METIS-like vs streaming vs hash.
//!
//! Run with: `cargo run --release --example partition_playground`

use grape::prelude::*;

fn main() {
    // LiveJournal stand-in: a power-law social graph.
    let graph = grape::graph::generators::barabasi_albert(30_000, 8, 11)
        .expect("valid generator parameters");
    println!(
        "social graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let workers = 16;
    let source = 0;

    println!(
        "\n{:<18} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "strategy", "cut edges", "replication", "balance", "messages", "time (s)"
    );
    for strategy in [
        BuiltinStrategy::MetisLike,
        BuiltinStrategy::Ldg,
        BuiltinStrategy::Fennel,
        BuiltinStrategy::Hash,
    ] {
        let assignment = strategy.partition(&graph, workers);
        let quality = grape::partition::evaluate_partition(&graph, &assignment);
        let result = GrapeEngine::new(SsspProgram)
            .run_on_graph(&SsspQuery::new(source), &graph, &assignment)
            .expect("run succeeds");
        println!(
            "{:<18} {:>10} {:>12.3} {:>10.3} {:>12} {:>10.3}",
            strategy.name(),
            quality.cut_edges,
            quality.replication_factor,
            quality.balance,
            result.stats.messages,
            result.stats.wall_time.as_secs_f64()
        );
    }
    println!("\nAs in the demo, the better the partition (fewer cut edges), the fewer");
    println!("messages GRAPE ships and the faster the query finishes.");
}
