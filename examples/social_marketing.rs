//! Social-media marketing with GPARs — the Fig. 4 use case.
//!
//! A labeled social graph with `follows` / `recommends` / `rates_bad` /
//! `buys` edges is generated, the Example 2 rule is evaluated with the
//! marketing PIE program (potential customers ranked by confidence), and the
//! generic GPAR machinery measures the rule's support and confidence.
//!
//! Run with: `cargo run --release --example social_marketing`

use grape::algo::marketing::sequential_marketing;
use grape::graph::labels::PatternGraph;
use grape::prelude::*;

fn main() {
    let config = grape::graph::generators::SocialGraphConfig {
        num_persons: 5_000,
        num_products: 10,
        recommend_prob: 0.4,
        bad_rating_prob: 0.03,
        ..Default::default()
    };
    let graph =
        grape::graph::generators::labeled_social(config, 99).expect("valid generator parameters");
    let product = config.num_persons as VertexId; // the first product vertex
    println!(
        "social graph: {} vertices, {} edges; promoting product {}",
        graph.num_vertices(),
        graph.num_edges(),
        product
    );

    // The Example 2 rule: >= 80% of followees recommend, nobody rates badly.
    let query = MarketingQuery::new(product);

    // Scale-up: the more workers, the faster the prospects are found.
    println!(
        "\n{:<10} {:>12} {:>12} {:>12}",
        "workers", "prospects", "time (s)", "messages"
    );
    let mut last: Option<Vec<grape::algo::marketing::Prospect>> = None;
    for workers in [1, 2, 4, 8] {
        let assignment = BuiltinStrategy::Fennel.partition(&graph, workers);
        let result = GrapeEngine::new(MarketingProgram)
            .run_on_graph(&query, &graph, &assignment)
            .expect("run succeeds");
        println!(
            "{:<10} {:>12} {:>12.3} {:>12}",
            workers,
            result.output.len(),
            result.stats.wall_time.as_secs_f64(),
            result.stats.messages
        );
        if let Some(prev) = &last {
            assert_eq!(prev, &result.output, "answers are partition-invariant");
        }
        last = Some(result.output);
    }

    let prospects = last.expect("at least one run");
    let reference = sequential_marketing(&graph, &query);
    assert_eq!(
        prospects, reference,
        "parallel run matches the sequential rule"
    );
    println!("\ntop prospects (person, confidence, followees):");
    for p in prospects.iter().take(5) {
        println!(
            "  person {:>6}  {:.2}  {}",
            p.person, p.recommend_ratio, p.followees
        );
    }

    // The same rule expressed as a generic GPAR, with measured confidence.
    let pattern = PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
        .edge_labeled(0, 1, "follows")
        .edge_labeled(1, 2, "recommends");
    let rule = Gpar::new(pattern, 0, 2, "buys");
    // Evaluate on a sample subgraph to keep the demo snappy.
    let sample: std::collections::HashSet<VertexId> = (0..1_000u64)
        .chain((config.num_persons as u64)..(config.num_persons as u64 + 10))
        .collect();
    let sampled = graph.induced_subgraph(&sample);
    let stats = rule.evaluate(&sampled);
    println!(
        "\nGPAR Q(x, product) => buys(x, product): support {} pairs, confidence {:.3}",
        stats.support_q, stats.confidence
    );
}
