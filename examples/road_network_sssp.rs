//! Road-network SSSP: GRAPE against the vertex-centric and block-centric
//! baselines — a laptop-scale rerun of the scenario behind Table 1.
//!
//! Run with: `cargo run --release --example road_network_sssp`

use grape::baseline::{BlockSssp, BlogelEngine, GasEngine, GasSssp, PregelEngine, PregelSssp};
use grape::prelude::*;
use std::time::Instant;

fn main() {
    let workers = 8;
    let graph = grape::graph::generators::road_network(
        grape::graph::generators::RoadNetworkConfig {
            width: 160,
            height: 160,
            ..Default::default()
        },
        7,
    )
    .expect("valid generator parameters");
    println!(
        "road network: {} vertices, {} edges, estimated diameter {}",
        graph.num_vertices(),
        graph.num_edges(),
        grape::graph::metrics::estimate_diameter(&graph, 2)
    );
    let source = 0;

    // GRAPE with a METIS-like partition (what the paper recommends).
    let assignment = BuiltinStrategy::MetisLike.partition(&graph, workers);
    let grape_run = GrapeEngine::new(SsspProgram)
        .run_on_graph(&SsspQuery::new(source), &graph, &assignment)
        .expect("grape run succeeds");

    // Vertex-centric (Giraph-like) and GAS (GraphLab-like) engines.
    let started = Instant::now();
    let (pregel_states, pregel_stats) =
        PregelEngine::new(workers).run(&PregelSssp, &source, &graph);
    let _ = started.elapsed();
    let (gas_states, gas_stats) = GasEngine::new(workers).run(&GasSssp, &source, &graph);

    // Block-centric (Blogel-like) engine on the same partition.
    let (blogel_states, blogel_stats) =
        BlogelEngine::new().run(&BlockSssp, &source, &graph, &assignment);

    // All four agree on the answer.
    for (v, d) in &grape_run.output {
        if d.is_finite() {
            assert!((pregel_states[v] - d).abs() < 1e-9);
            assert!((gas_states[v] - d).abs() < 1e-9);
            assert!((blogel_states[v] - d).abs() < 1e-9);
        }
    }

    println!(
        "\n{:<22} {:>10} {:>12} {:>14} {:>12}",
        "system", "time (s)", "supersteps", "messages", "comm (MB)"
    );
    println!(
        "{:<22} {:>10.3} {:>12} {:>14} {:>12.4}",
        "pregel (Giraph-like)",
        pregel_stats.wall_time.as_secs_f64(),
        pregel_stats.supersteps,
        pregel_stats.messages,
        pregel_stats.megabytes()
    );
    println!(
        "{:<22} {:>10.3} {:>12} {:>14} {:>12.4}",
        "gas (GraphLab-like)",
        gas_stats.wall_time.as_secs_f64(),
        gas_stats.supersteps,
        gas_stats.messages,
        gas_stats.megabytes()
    );
    println!(
        "{:<22} {:>10.3} {:>12} {:>14} {:>12.4}",
        "blogel (block-centric)",
        blogel_stats.wall_time.as_secs_f64(),
        blogel_stats.supersteps,
        blogel_stats.messages,
        blogel_stats.megabytes()
    );
    println!(
        "{:<22} {:>10.3} {:>12} {:>14} {:>12.4}",
        "grape (PIE)",
        grape_run.stats.wall_time.as_secs_f64(),
        grape_run.stats.supersteps,
        grape_run.stats.messages,
        grape_run.stats.megabytes()
    );
}
