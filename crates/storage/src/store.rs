//! DFS-simulating fragment store.
//!
//! The real GRAPE keeps graph data "in DFS (distributed file system)"
//! accessible to the query engine, the Index Manager, the Partition Manager
//! and the Load Balancer. This module reproduces that interface with a local
//! directory per dataset:
//!
//! ```text
//! <root>/<dataset>/manifest.json      -- partition metadata
//! <root>/<dataset>/fragment_<i>.el    -- edge list owned by fragment i
//! <root>/<dataset>/assignment.json    -- vertex -> fragment map
//! ```
//!
//! Workers load only their own fragment file, which is what a distributed
//! deployment would do.

use grape_graph::io::{load_weighted_edge_list, write_weighted_edge_list, EdgeListOptions};
use grape_graph::types::EdgeRecord;
use grape_graph::{CsrGraph, GraphError, VertexId};
use grape_partition::{build_fragments, Fragment, PartitionAssignment};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// Metadata describing a stored, partitioned dataset.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct StoreManifest {
    /// Dataset name (directory name under the store root).
    pub dataset: String,
    /// Partition strategy used to produce the fragments.
    pub strategy: String,
    /// Number of fragments.
    pub num_fragments: usize,
    /// Total number of vertices in the dataset.
    pub num_vertices: usize,
    /// Total number of directed edges in the dataset.
    pub num_edges: usize,
    /// Inner-vertex count per fragment.
    pub fragment_sizes: Vec<usize>,
}

/// A directory-backed store of partitioned graphs.
#[derive(Debug, Clone)]
pub struct FragmentStore {
    root: PathBuf,
}

impl FragmentStore {
    /// Opens (and creates if necessary) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, GraphError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    fn dataset_dir(&self, dataset: &str) -> PathBuf {
        self.root.join(dataset)
    }

    /// Saves a weighted graph partitioned by `assignment` under `dataset`,
    /// overwriting any previous contents. Returns the manifest.
    pub fn save_partitioned(
        &self,
        dataset: &str,
        graph: &CsrGraph<(), f64>,
        assignment: &PartitionAssignment,
        strategy: &str,
    ) -> Result<StoreManifest, GraphError> {
        let dir = self.dataset_dir(dataset);
        fs::create_dir_all(&dir)?;
        let fragments = build_fragments(graph, assignment);
        let mut sizes = Vec::with_capacity(fragments.len());
        for fragment in &fragments {
            sizes.push(fragment.num_inner());
            let path = dir.join(format!("fragment_{}.el", fragment.id));
            // Persist only edges owned by the fragment (source is inner), so
            // the union of all fragment files is exactly the global edge set.
            let owned_edges: Vec<EdgeRecord<f64>> = fragment
                .graph
                .edges()
                .filter(|(s, _, _)| fragment.is_inner(*s))
                .map(|(s, d, w)| EdgeRecord::new(s, d, *w))
                .collect();
            let vertices: Vec<(VertexId, ())> = fragment
                .graph
                .vertices()
                .filter(|v| {
                    fragment.is_inner(*v) || owned_edges.iter().any(|e| e.src == *v || e.dst == *v)
                })
                .map(|v| (v, ()))
                .collect();
            let sub = CsrGraph::from_records(vertices, owned_edges, false)?;
            write_weighted_edge_list(&sub, &path)?;
        }
        let manifest = StoreManifest {
            dataset: dataset.to_string(),
            strategy: strategy.to_string(),
            num_fragments: fragments.len(),
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            fragment_sizes: sizes,
        };
        let manifest_json =
            serde_json::to_string_pretty(&manifest).map_err(|e| GraphError::Io(e.to_string()))?;
        fs::write(dir.join("manifest.json"), manifest_json)?;
        let assignment_json =
            serde_json::to_string(assignment).map_err(|e| GraphError::Io(e.to_string()))?;
        fs::write(dir.join("assignment.json"), assignment_json)?;
        Ok(manifest)
    }

    /// Reads the manifest of a stored dataset.
    pub fn manifest(&self, dataset: &str) -> Result<StoreManifest, GraphError> {
        let path = self.dataset_dir(dataset).join("manifest.json");
        let text = fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| GraphError::Io(e.to_string()))
    }

    /// Reads the stored vertex → fragment assignment.
    pub fn assignment(&self, dataset: &str) -> Result<PartitionAssignment, GraphError> {
        let path = self.dataset_dir(dataset).join("assignment.json");
        let text = fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| GraphError::Io(e.to_string()))
    }

    /// Loads the edge-list file owned by one fragment.
    pub fn load_fragment_edges(
        &self,
        dataset: &str,
        fragment: usize,
    ) -> Result<CsrGraph<(), f64>, GraphError> {
        let path = self
            .dataset_dir(dataset)
            .join(format!("fragment_{fragment}.el"));
        load_weighted_edge_list(path, EdgeListOptions::default())
    }

    /// Reassembles the full graph from all fragment files.
    pub fn load_full_graph(&self, dataset: &str) -> Result<CsrGraph<(), f64>, GraphError> {
        let manifest = self.manifest(dataset)?;
        let mut vertices: Vec<(VertexId, ())> = Vec::new();
        let mut edges: Vec<EdgeRecord<f64>> = Vec::new();
        for f in 0..manifest.num_fragments {
            let part = self.load_fragment_edges(dataset, f)?;
            vertices.extend(part.vertices().map(|v| (v, ())));
            edges.extend(part.edges().map(|(s, d, w)| EdgeRecord::new(s, d, *w)));
        }
        vertices.sort_unstable_by_key(|(v, _)| *v);
        vertices.dedup_by_key(|(v, _)| *v);
        CsrGraph::from_records(vertices, edges, true)
    }

    /// Rebuilds the in-memory [`Fragment`]s exactly as the engine would use
    /// them, from the stored assignment and fragment files.
    pub fn load_fragments(&self, dataset: &str) -> Result<Vec<Fragment<(), f64>>, GraphError> {
        let graph = self.load_full_graph(dataset)?;
        let assignment = self.assignment(dataset)?;
        Ok(build_fragments(&graph, &assignment))
    }

    /// Lists the datasets currently in the store.
    pub fn datasets(&self) -> Result<Vec<String>, GraphError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.path().join("manifest.json").exists() {
                out.push(entry.file_name().to_string_lossy().to_string());
            }
        }
        out.sort();
        Ok(out)
    }

    /// Removes a dataset from the store.
    pub fn remove(&self, dataset: &str) -> Result<(), GraphError> {
        let dir = self.dataset_dir(dataset);
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::generators::{barabasi_albert, road_network, RoadNetworkConfig};
    use grape_partition::{HashPartitioner, MetisLikePartitioner, Partitioner};

    fn temp_store(name: &str) -> FragmentStore {
        let dir = std::env::temp_dir().join(format!("grape_store_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        FragmentStore::open(dir).unwrap()
    }

    #[test]
    fn save_and_reload_round_trip() {
        let store = temp_store("roundtrip");
        let g = barabasi_albert(200, 3, 1).unwrap();
        let a = HashPartitioner.partition(&g, 4);
        let manifest = store.save_partitioned("social", &g, &a, "hash").unwrap();
        assert_eq!(manifest.num_fragments, 4);
        assert_eq!(manifest.num_vertices, 200);
        assert_eq!(manifest.fragment_sizes.iter().sum::<usize>(), 200);

        let reloaded = store.load_full_graph("social").unwrap();
        assert_eq!(reloaded.num_vertices(), g.num_vertices());
        assert_eq!(reloaded.num_edges(), g.num_edges());

        let manifest2 = store.manifest("social").unwrap();
        assert_eq!(manifest, manifest2);
        store.remove("social").unwrap();
    }

    #[test]
    fn fragment_files_partition_the_edge_set() {
        let store = temp_store("edgesplit");
        let g = road_network(
            RoadNetworkConfig {
                width: 12,
                height: 12,
                ..Default::default()
            },
            2,
        )
        .unwrap();
        let a = MetisLikePartitioner::default().partition(&g, 3);
        store
            .save_partitioned("road", &g, &a, "metis-like")
            .unwrap();
        let mut total_edges = 0;
        for f in 0..3 {
            total_edges += store.load_fragment_edges("road", f).unwrap().num_edges();
        }
        assert_eq!(total_edges, g.num_edges());
        store.remove("road").unwrap();
    }

    #[test]
    fn stored_assignment_and_fragments_match_in_memory_build() {
        let store = temp_store("frags");
        let g = barabasi_albert(120, 2, 5).unwrap();
        let a = HashPartitioner.partition(&g, 3);
        store.save_partitioned("bg", &g, &a, "hash").unwrap();
        let frags = store.load_fragments("bg").unwrap();
        let direct = grape_partition::build_fragments(&g, &a);
        assert_eq!(frags.len(), direct.len());
        for (fa, fb) in frags.iter().zip(direct.iter()) {
            assert_eq!(fa.num_inner(), fb.num_inner());
            assert_eq!(fa.num_outer(), fb.num_outer());
        }
        store.remove("bg").unwrap();
    }

    #[test]
    fn datasets_listing_and_removal() {
        let store = temp_store("listing");
        let g = barabasi_albert(50, 2, 3).unwrap();
        let a = HashPartitioner.partition(&g, 2);
        store.save_partitioned("one", &g, &a, "hash").unwrap();
        store.save_partitioned("two", &g, &a, "hash").unwrap();
        assert_eq!(store.datasets().unwrap(), vec!["one", "two"]);
        store.remove("one").unwrap();
        assert_eq!(store.datasets().unwrap(), vec!["two"]);
        store.remove("two").unwrap();
        assert!(store.datasets().unwrap().is_empty());
    }

    #[test]
    fn missing_dataset_is_an_error() {
        let store = temp_store("missing");
        assert!(store.manifest("nope").is_err());
        assert!(store.load_fragment_edges("nope", 0).is_err());
    }
}
