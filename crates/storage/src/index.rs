//! The Index Manager.
//!
//! GRAPE "inherits optimization strategies available for sequential
//! algorithms and graphs, e.g. indexing" (Section 1). The Index Manager of
//! the architecture (Fig. 2) loads such indices for the query engine. Three
//! index families are provided, matching what the registered PIE programs
//! can exploit:
//!
//! * [`DegreeIndex`] — vertices sorted by degree; used by SubIso to pick
//!   selective pattern vertices first and by the load balancer for hub
//!   detection.
//! * [`LabelIndex`] — label → vertices; used by Sim / SubIso / GPARs to
//!   enumerate candidate matches without scanning the whole fragment.
//! * [`LandmarkIndex`] — exact distances from a set of landmark vertices;
//!   provides lower/upper distance bounds for traversal queries.

use grape_graph::labels::LabeledGraph;
use grape_graph::{CsrGraph, VertexId};
use parking_lot::RwLock;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Vertices ordered by (out-)degree, with O(1) degree lookup.
#[derive(Debug, Clone, Default)]
pub struct DegreeIndex {
    /// `(degree, vertex)` sorted descending by degree.
    by_degree: Vec<(usize, VertexId)>,
    degree_of: HashMap<VertexId, usize>,
}

impl DegreeIndex {
    /// Builds the index over the out-degrees of `graph`.
    pub fn build<V: Clone, E: Clone>(graph: &CsrGraph<V, E>) -> Self {
        let mut by_degree: Vec<(usize, VertexId)> =
            graph.vertices().map(|v| (graph.out_degree(v), v)).collect();
        by_degree.sort_unstable_by(|a, b| b.cmp(a));
        let degree_of = by_degree.iter().map(|(d, v)| (*v, *d)).collect();
        Self {
            by_degree,
            degree_of,
        }
    }

    /// The `k` highest-degree vertices (hubs).
    pub fn top_k(&self, k: usize) -> Vec<VertexId> {
        self.by_degree.iter().take(k).map(|(_, v)| *v).collect()
    }

    /// Degree of a vertex (0 if unknown).
    pub fn degree(&self, v: VertexId) -> usize {
        self.degree_of.get(&v).copied().unwrap_or(0)
    }

    /// Number of indexed vertices.
    pub fn len(&self) -> usize {
        self.by_degree.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.by_degree.is_empty()
    }
}

/// Label → sorted vertex list index over a [`LabeledGraph`].
#[derive(Debug, Clone, Default)]
pub struct LabelIndex {
    by_label: HashMap<String, Vec<VertexId>>,
}

impl LabelIndex {
    /// Builds the index.
    pub fn build(graph: &LabeledGraph) -> Self {
        let mut by_label: HashMap<String, Vec<VertexId>> = HashMap::new();
        for v in graph.vertices() {
            if let Some(data) = graph.vertex_data(v) {
                by_label.entry(data.label.0.clone()).or_default().push(v);
            }
        }
        for list in by_label.values_mut() {
            list.sort_unstable();
        }
        Self { by_label }
    }

    /// Vertices carrying `label` (empty slice if none).
    pub fn vertices_with(&self, label: &str) -> &[VertexId] {
        self.by_label
            .get(label)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of distinct labels.
    pub fn num_labels(&self) -> usize {
        self.by_label.len()
    }

    /// All labels, sorted.
    pub fn labels(&self) -> Vec<&str> {
        let mut l: Vec<&str> = self.by_label.keys().map(|s| s.as_str()).collect();
        l.sort_unstable();
        l
    }
}

/// Exact shortest-path distances from a small set of landmark vertices.
#[derive(Debug, Clone, Default)]
pub struct LandmarkIndex {
    landmarks: Vec<VertexId>,
    /// `distances[i][v]` = distance from landmark `i` to `v`.
    distances: Vec<HashMap<VertexId, f64>>,
}

impl LandmarkIndex {
    /// Builds the index by running Dijkstra from the `k` highest-degree
    /// vertices of `graph` (a standard landmark-selection heuristic).
    pub fn build(graph: &CsrGraph<(), f64>, k: usize) -> Self {
        let deg = DegreeIndex::build(graph);
        let landmarks = deg.top_k(k);
        let distances = landmarks.iter().map(|&l| dijkstra_from(graph, l)).collect();
        Self {
            landmarks,
            distances,
        }
    }

    /// The landmark vertices.
    pub fn landmarks(&self) -> &[VertexId] {
        &self.landmarks
    }

    /// Distance from landmark index `i` to `v`, if reachable.
    pub fn distance_from_landmark(&self, i: usize, v: VertexId) -> Option<f64> {
        self.distances.get(i).and_then(|d| d.get(&v)).copied()
    }

    /// Triangle-inequality upper bound on `dist(u, v)`:
    /// `min_i dist(l_i, u) + dist(l_i, v)` (requires symmetric graphs for a
    /// true bound; on directed graphs it is a heuristic estimate).
    pub fn upper_bound(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let mut best: Option<f64> = None;
        for d in &self.distances {
            if let (Some(du), Some(dv)) = (d.get(&u), d.get(&v)) {
                let bound = du + dv;
                best = Some(best.map_or(bound, |b: f64| b.min(bound)));
            }
        }
        best
    }
}

/// Dijkstra used by the landmark index (duplicated in `grape-algo` as the
/// reference PEval; kept private here to avoid a dependency cycle).
fn dijkstra_from(graph: &CsrGraph<(), f64>, source: VertexId) -> HashMap<VertexId, f64> {
    #[derive(PartialEq)]
    struct Entry(f64, VertexId);
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .0
                .partial_cmp(&self.0)
                .unwrap_or(std::cmp::Ordering::Equal)
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut dist = HashMap::new();
    if !graph.contains(source) {
        return dist;
    }
    let mut heap = BinaryHeap::new();
    dist.insert(source, 0.0);
    heap.push(Entry(0.0, source));
    while let Some(Entry(d, u)) = heap.pop() {
        if d > dist.get(&u).copied().unwrap_or(f64::INFINITY) {
            continue;
        }
        for (v, w) in graph.out_edges(u) {
            let nd = d + w;
            if nd < dist.get(&v).copied().unwrap_or(f64::INFINITY) {
                dist.insert(v, nd);
                heap.push(Entry(nd, v));
            }
        }
    }
    dist
}

/// A named cache of built indices, shared between workers.
///
/// The demo's architecture loads indices once and makes them available to the
/// query engine; here the manager is an in-memory registry keyed by
/// `(dataset, kind)`.
#[derive(Debug, Default, Clone)]
pub struct IndexManager {
    degree: Arc<RwLock<HashMap<String, Arc<DegreeIndex>>>>,
    label: Arc<RwLock<HashMap<String, Arc<LabelIndex>>>>,
    landmark: Arc<RwLock<HashMap<String, Arc<LandmarkIndex>>>>,
}

impl IndexManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (building and caching on first use) the degree index of a
    /// dataset.
    pub fn degree_index<V: Clone, E: Clone>(
        &self,
        dataset: &str,
        graph: &CsrGraph<V, E>,
    ) -> Arc<DegreeIndex> {
        if let Some(idx) = self.degree.read().get(dataset) {
            return Arc::clone(idx);
        }
        let idx = Arc::new(DegreeIndex::build(graph));
        self.degree
            .write()
            .insert(dataset.to_string(), Arc::clone(&idx));
        idx
    }

    /// Returns (building and caching on first use) the label index.
    pub fn label_index(&self, dataset: &str, graph: &LabeledGraph) -> Arc<LabelIndex> {
        if let Some(idx) = self.label.read().get(dataset) {
            return Arc::clone(idx);
        }
        let idx = Arc::new(LabelIndex::build(graph));
        self.label
            .write()
            .insert(dataset.to_string(), Arc::clone(&idx));
        idx
    }

    /// Returns (building and caching on first use) a landmark index with `k`
    /// landmarks.
    pub fn landmark_index(
        &self,
        dataset: &str,
        graph: &CsrGraph<(), f64>,
        k: usize,
    ) -> Arc<LandmarkIndex> {
        if let Some(idx) = self.landmark.read().get(dataset) {
            return Arc::clone(idx);
        }
        let idx = Arc::new(LandmarkIndex::build(graph, k));
        self.landmark
            .write()
            .insert(dataset.to_string(), Arc::clone(&idx));
        idx
    }

    /// Drops every cached index (e.g. after the dataset changed).
    pub fn invalidate(&self, dataset: &str) {
        self.degree.write().remove(dataset);
        self.label.write().remove(dataset);
        self.landmark.write().remove(dataset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::generators::{barabasi_albert, labeled_social, SocialGraphConfig};
    use grape_graph::GraphBuilder;

    #[test]
    fn degree_index_orders_hubs_first() {
        let g = barabasi_albert(300, 3, 2).unwrap();
        let idx = DegreeIndex::build(&g);
        let top = idx.top_k(5);
        assert_eq!(top.len(), 5);
        // Degrees are non-increasing along the top-k list.
        for w in top.windows(2) {
            assert!(idx.degree(w[0]) >= idx.degree(w[1]));
        }
        assert_eq!(idx.len(), 300);
        assert!(!idx.is_empty());
        assert_eq!(idx.degree(999_999), 0);
    }

    #[test]
    fn label_index_finds_products() {
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 100,
                num_products: 7,
                ..Default::default()
            },
            4,
        )
        .unwrap();
        let idx = LabelIndex::build(&g);
        assert_eq!(idx.vertices_with("product").len(), 7);
        assert_eq!(idx.vertices_with("person").len(), 100);
        assert!(idx.vertices_with("robot").is_empty());
        assert_eq!(idx.num_labels(), 2);
        assert_eq!(idx.labels(), vec!["person", "product"]);
    }

    #[test]
    fn landmark_index_distances_and_bounds() {
        // Path graph 0 - 1 - 2 - 3 with unit weights (symmetric).
        let mut b = GraphBuilder::<(), f64>::new().symmetric(true);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        let g = b.build().unwrap();
        let idx = LandmarkIndex::build(&g, 2);
        assert_eq!(idx.landmarks().len(), 2);
        let l0 = idx.landmarks()[0];
        assert_eq!(idx.distance_from_landmark(0, l0), Some(0.0));
        // The triangle bound is at least the true distance 3 for (0, 3).
        let bound = idx.upper_bound(0, 3).unwrap();
        assert!(bound >= 3.0 - 1e-9);
    }

    #[test]
    fn index_manager_caches_and_invalidates() {
        let mgr = IndexManager::new();
        let g = barabasi_albert(100, 2, 9).unwrap();
        let a = mgr.degree_index("d", &g);
        let b = mgr.degree_index("d", &g);
        assert!(Arc::ptr_eq(&a, &b), "second call hits the cache");
        mgr.invalidate("d");
        let c = mgr.degree_index("d", &g);
        assert!(!Arc::ptr_eq(&a, &c), "invalidate forces a rebuild");
    }

    #[test]
    fn landmark_index_on_missing_source_is_empty() {
        let g = CsrGraph::<(), f64>::from_records(vec![], vec![], true).unwrap();
        let idx = LandmarkIndex::build(&g, 3);
        assert!(idx.landmarks().is_empty());
        assert!(idx.upper_bound(0, 1).is_none());
    }
}
