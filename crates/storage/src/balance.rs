//! The Load Balancer.
//!
//! The paper's architecture includes "a Load Balancer to balance workload
//! across workers", and Section 3(4) lists "load balancing in terms of graph
//! partitions and workload estimates" among the graph-level optimizations
//! GRAPE inherits. This module provides:
//!
//! * [`WorkloadEstimate`] — a per-fragment cost model combining vertex count,
//!   edge count and border size (border size drives communication cost).
//! * [`balance_fragments`] — a longest-processing-time (LPT) greedy
//!   assignment of fragments to a possibly smaller number of physical
//!   workers, minimizing the maximum per-worker load.

use grape_partition::{Fragment, FragmentId};

/// Estimated cost of processing one fragment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadEstimate {
    /// Fragment this estimate describes.
    pub fragment: FragmentId,
    /// Inner vertices.
    pub vertices: usize,
    /// Local edges.
    pub edges: usize,
    /// Border vertices (mirrors + mirrored inner vertices).
    pub border: usize,
}

impl WorkloadEstimate {
    /// Builds the estimate from a fragment.
    pub fn of<V: Clone, E: Clone>(fragment: &Fragment<V, E>) -> Self {
        Self {
            fragment: fragment.id,
            vertices: fragment.num_inner(),
            edges: fragment.num_local_edges(),
            border: fragment.border_vertices().len(),
        }
    }

    /// Scalar cost used for balancing: compute cost (vertices + edges) plus a
    /// communication weight on border vertices. The weights follow the usual
    /// rule of thumb that shipping a border value costs about as much as
    /// scanning ten edges.
    pub fn cost(&self) -> f64 {
        self.vertices as f64 + self.edges as f64 + 10.0 * self.border as f64
    }
}

/// Assignment of fragments to physical workers.
#[derive(Debug, Clone, PartialEq)]
pub struct BalancedAssignment {
    /// `worker_of[f]` = physical worker hosting fragment `f`.
    pub worker_of: Vec<usize>,
    /// Total estimated cost per worker.
    pub worker_cost: Vec<f64>,
}

impl BalancedAssignment {
    /// Ratio of the maximum worker cost to the mean worker cost (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let max = self.worker_cost.iter().cloned().fold(0.0, f64::max);
        let mean = self.worker_cost.iter().sum::<f64>() / self.worker_cost.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// The fragments hosted by each worker.
    pub fn fragments_of(&self, worker: usize) -> Vec<FragmentId> {
        self.worker_of
            .iter()
            .enumerate()
            .filter(|(_, w)| **w == worker)
            .map(|(f, _)| f)
            .collect()
    }
}

/// Assigns fragments to `num_workers` physical workers using the LPT
/// heuristic: sort fragments by decreasing cost, repeatedly give the next
/// fragment to the least-loaded worker.
pub fn balance_fragments(estimates: &[WorkloadEstimate], num_workers: usize) -> BalancedAssignment {
    let num_workers = num_workers.max(1);
    let mut order: Vec<&WorkloadEstimate> = estimates.iter().collect();
    order.sort_by(|a, b| {
        b.cost()
            .partial_cmp(&a.cost())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let num_fragments = estimates.iter().map(|e| e.fragment + 1).max().unwrap_or(0);
    let mut worker_of = vec![0usize; num_fragments];
    let mut worker_cost = vec![0.0f64; num_workers];
    for est in order {
        let (worker, _) = worker_cost
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("num_workers >= 1");
        worker_of[est.fragment] = worker;
        worker_cost[worker] += est.cost();
    }
    BalancedAssignment {
        worker_of,
        worker_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::generators::barabasi_albert;
    use grape_partition::{build_fragments, HashPartitioner, Partitioner};

    fn estimates(k: usize) -> Vec<WorkloadEstimate> {
        let g = barabasi_albert(400, 3, 6).unwrap();
        let a = HashPartitioner.partition(&g, k);
        build_fragments(&g, &a)
            .iter()
            .map(WorkloadEstimate::of)
            .collect()
    }

    #[test]
    fn estimates_reflect_fragment_sizes() {
        let ests = estimates(4);
        assert_eq!(ests.len(), 4);
        for e in &ests {
            assert!(e.vertices > 0);
            assert!(e.edges > 0);
            assert!(e.cost() > 0.0);
        }
    }

    #[test]
    fn one_fragment_per_worker_is_identity_like() {
        let ests = estimates(4);
        let b = balance_fragments(&ests, 4);
        // With 4 fragments on 4 workers every worker hosts exactly one.
        let mut hosted = vec![0; 4];
        for &w in &b.worker_of {
            hosted[w] += 1;
        }
        assert_eq!(hosted, vec![1, 1, 1, 1]);
    }

    #[test]
    fn more_fragments_than_workers_balances_load() {
        let ests = estimates(16);
        let b = balance_fragments(&ests, 4);
        assert!(
            b.imbalance() < 1.3,
            "LPT keeps imbalance small: {}",
            b.imbalance()
        );
        let all: usize = (0..4).map(|w| b.fragments_of(w).len()).sum();
        assert_eq!(all, 16);
    }

    #[test]
    fn skewed_costs_spread_over_workers() {
        let ests = vec![
            WorkloadEstimate {
                fragment: 0,
                vertices: 1_000,
                edges: 10_000,
                border: 100,
            },
            WorkloadEstimate {
                fragment: 1,
                vertices: 10,
                edges: 20,
                border: 1,
            },
            WorkloadEstimate {
                fragment: 2,
                vertices: 10,
                edges: 20,
                border: 1,
            },
            WorkloadEstimate {
                fragment: 3,
                vertices: 10,
                edges: 20,
                border: 1,
            },
        ];
        let b = balance_fragments(&ests, 2);
        // The heavy fragment is alone on its worker; the three light ones share.
        let heavy_worker = b.worker_of[0];
        assert_eq!(b.fragments_of(heavy_worker), vec![0]);
        assert_eq!(b.fragments_of(1 - heavy_worker).len(), 3);
    }

    #[test]
    fn degenerate_inputs() {
        let b = balance_fragments(&[], 3);
        assert!(b.worker_of.is_empty());
        assert_eq!(b.worker_cost.len(), 3);
        assert_eq!(b.imbalance(), 1.0);
        let one = vec![WorkloadEstimate {
            fragment: 0,
            vertices: 1,
            edges: 1,
            border: 0,
        }];
        let b = balance_fragments(&one, 0);
        assert_eq!(b.worker_of, vec![0]);
    }
}
