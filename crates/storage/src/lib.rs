//! # grape-storage
//!
//! The storage layer of GRAPE-RS, standing in for the lower tiers of the
//! paper's architecture (Fig. 2):
//!
//! * [`store`] — a **DFS-simulating fragment store**: partitioned graphs are
//!   saved as one edge-list file per fragment plus a JSON manifest, exactly
//!   the layout a worker would read from a distributed file system.
//! * [`index`] — the **Index Manager**: degree, label and landmark indices
//!   that PIE programs may load to speed up their sequential algorithms
//!   (graph-level optimization, Section 3(4)).
//! * [`balance`] — the **Load Balancer**: workload estimates per fragment and
//!   a longest-processing-time assignment of fragments to physical workers.

#![warn(missing_docs)]

pub mod balance;
pub mod index;
pub mod store;

pub use balance::{balance_fragments, WorkloadEstimate};
pub use index::{DegreeIndex, IndexManager, LabelIndex, LandmarkIndex};
pub use store::{FragmentStore, StoreManifest};
