//! Run statistics.
//!
//! The demo's Analytics panel (Section 3(4)) visualizes "the communication
//! and computational costs for computing Q(G)" with "a fine-grained analysis
//! … of partial evaluation (PEval) and incremental steps (IncEval)". This
//! module is that report: per-superstep traces plus job totals, filled in by
//! the engine and printed by the benchmark harness.

use std::time::Duration;

/// Trace of a single superstep.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperstepTrace {
    /// Superstep index; 0 is the PEval round.
    pub superstep: usize,
    /// Number of workers that evaluated during this superstep.
    pub active_workers: usize,
    /// Longest per-worker evaluation time (the BSP critical path).
    pub max_eval_seconds: f64,
    /// Sum of per-worker evaluation times (total compute).
    pub total_eval_seconds: f64,
    /// Changed update parameters reported by all workers.
    pub changed_parameters: usize,
    /// Distinct border slots whose folded value was touched this superstep.
    pub changed_slots: usize,
    /// `(slot, value)` updates actually shipped to workers at the end of
    /// this superstep. With dirty-border tracking this is bounded by the
    /// changed slots times their interested fragments — never a full-border
    /// republication.
    pub published_updates: usize,
    /// Messages shipped (worker → coordinator and coordinator → worker).
    pub messages: u64,
    /// Bytes shipped.
    pub bytes: u64,
}

/// Statistics of one query — a [`crate::GrapeEngine::run`] invocation, or
/// one submitted query of a resident service session (which runs many of
/// these over the same fragments, one per query).
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Name of the PIE program that ran.
    pub program: String,
    /// The query's run id ([`crate::EngineConfig::run_id`]): the base wire
    /// epoch its stream frames carried, letting service sessions match
    /// per-query stats to submitted queries. `0` for one-shot runs.
    pub run_id: u32,
    /// Number of fragments / workers.
    pub num_workers: usize,
    /// Number of supersteps executed (PEval counts as one).
    pub supersteps: usize,
    /// Wall-clock duration of the whole query, including assemble.
    pub wall_time: Duration,
    /// Wall-clock seconds spent in PEval (critical path: the slowest worker
    /// per superstep under threaded execution, the summed worker time when
    /// the engine drives the workers inline on one hardware thread).
    pub peval_seconds: f64,
    /// Wall-clock seconds spent in IncEval supersteps (critical path, see
    /// [`RunStats::peval_seconds`]).
    pub inceval_seconds: f64,
    /// Total messages shipped through the coordinator.
    pub messages: u64,
    /// Total bytes shipped.
    pub bytes: u64,
    /// Number of update-parameter transitions that violated the program's
    /// declared partial order (only counted when monotonicity checking is
    /// enabled; should be zero for correct programs).
    pub monotonicity_violations: u64,
    /// Worker losses the coordinator recovered from (checkpoint restore +
    /// epoch bump + superstep replay). Zero for undisturbed runs.
    pub recoveries: usize,
    /// Per-superstep traces.
    pub history: Vec<SuperstepTrace>,
}

impl RunStats {
    /// Communication volume in megabytes (10^6 bytes, as the paper reports).
    pub fn megabytes(&self) -> f64 {
        self.bytes as f64 / 1_000_000.0
    }

    /// Critical-path compute time (PEval + IncEval supersteps).
    pub fn compute_seconds(&self) -> f64 {
        self.peval_seconds + self.inceval_seconds
    }

    /// Renders a compact single-line summary for logs and tables.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} workers, {} supersteps, {:.3}s wall ({:.3}s peval + {:.3}s inceval), {} msgs, {:.3} MB",
            self.program,
            self.num_workers,
            self.supersteps,
            self.wall_time.as_secs_f64(),
            self.peval_seconds,
            self.inceval_seconds,
            self.messages,
            self.megabytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let stats = RunStats {
            program: "sssp".into(),
            run_id: 0,
            num_workers: 4,
            supersteps: 3,
            wall_time: Duration::from_millis(1500),
            peval_seconds: 0.6,
            inceval_seconds: 0.4,
            messages: 1000,
            bytes: 2_000_000,
            monotonicity_violations: 0,
            recoveries: 0,
            history: vec![],
        };
        assert!((stats.megabytes() - 2.0).abs() < 1e-9);
        assert!((stats.compute_seconds() - 1.0).abs() < 1e-9);
        let s = stats.summary();
        assert!(s.contains("sssp"));
        assert!(s.contains("4 workers"));
        assert!(s.contains("3 supersteps"));
    }

    #[test]
    fn default_is_zeroed() {
        let stats = RunStats::default();
        assert_eq!(stats.supersteps, 0);
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.megabytes(), 0.0);
        assert!(stats.history.is_empty());
    }
}
