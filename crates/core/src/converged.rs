//! Cross-run incremental evaluation: converged-state capture and warm seeds.
//!
//! A query service that keeps fragments resident can answer a repeated query
//! after a mutation batch *from the old fixpoint* instead of from scratch:
//!
//! 1. A converged run captures every fragment's final partial as bytes
//!    ([`ConvergedState`], via [`crate::EngineConfig::capture_converged`]).
//! 2. Each mutation batch records its dirty set and profile in a
//!    [`DeltaLog`]; [`DeltaLog::since`] merges everything applied since the
//!    cached state was captured.
//! 3. [`crate::GrapeEngine::run_incremental`] wraps the program in a
//!    [`Seeded`] adapter whose PEval restores the old partial and
//!    re-evaluates only from the dirty vertices
//!    ([`crate::PieProgram::seed_partial`]); the BSP fixpoint then proceeds
//!    unchanged and — for profiles the program declares eligible — lands on
//!    a state bit-identical to a cold run on the mutated graph.

use crate::context::PieContext;
use crate::program::PieProgram;
use grape_graph::delta::MutationProfile;
use grape_graph::VertexId;
use grape_partition::Fragment;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The converged dense state of one finished run: every fragment's final
/// partial, serialized with [`PieProgram::snapshot_partial`], plus the
/// graph version the run observed. A service caches one per
/// `(graph, query)` pair and seeds later runs from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergedState {
    /// The [`DeltaLog::version`] of the graph the run converged on.
    pub version: u64,
    /// Per-fragment snapshot bytes, indexed by fragment id.
    pub partials: Vec<Vec<u8>>,
}

/// An append-only log of applied mutation batches: per batch, the dirty
/// vertex set and the [`MutationProfile`]. The log's length is the graph
/// *version*; [`DeltaLog::since`] folds every batch applied after a given
/// version into one merged dirty set + profile, which is exactly what a
/// warm run seeded from a version-`v` [`ConvergedState`] must re-evaluate.
#[derive(Debug, Default, Clone)]
pub struct DeltaLog {
    entries: Vec<(Vec<VertexId>, MutationProfile)>,
}

impl DeltaLog {
    /// An empty log at version 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current graph version (number of recorded batches).
    pub fn version(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Records one applied batch and returns the new version.
    pub fn record(&mut self, dirty: Vec<VertexId>, profile: MutationProfile) -> u64 {
        self.entries.push((dirty, profile));
        self.version()
    }

    /// Merges every batch recorded after `version`: the union of their dirty
    /// sets (sorted, deduplicated) and the merged profile. Returns `None` if
    /// `version` is ahead of the log (a stale cache from another graph).
    /// `since(current_version)` returns an empty dirty set — a no-op warm
    /// start.
    pub fn since(&self, version: u64) -> Option<(Vec<VertexId>, MutationProfile)> {
        if version > self.version() {
            return None;
        }
        let mut dirty = BTreeSet::new();
        let mut profile = MutationProfile::default();
        for (d, p) in &self.entries[version as usize..] {
            dirty.extend(d.iter().copied());
            profile.merge(p);
        }
        Some((dirty.into_iter().collect(), profile))
    }
}

/// Adapter that turns a cold program into a warm one: PEval first tries
/// [`PieProgram::seed_partial`] with the fragment's cached snapshot bytes,
/// falling back to the inner cold PEval when no seed exists (or the program
/// declines); every other method delegates unchanged. Built by
/// [`crate::GrapeEngine::run_incremental`].
#[derive(Debug, Clone)]
pub struct Seeded<P> {
    inner: Arc<P>,
    /// Per-fragment snapshot bytes, indexed by fragment id; `None` slots run
    /// the cold PEval.
    seeds: Vec<Option<Vec<u8>>>,
    dirty: Vec<VertexId>,
    profile: MutationProfile,
}

impl<P> Seeded<P> {
    /// Wraps `inner` with per-fragment seeds and the merged dirty set +
    /// profile of the mutations applied since the seeds converged.
    pub fn new(
        inner: Arc<P>,
        seeds: Vec<Option<Vec<u8>>>,
        dirty: Vec<VertexId>,
        profile: MutationProfile,
    ) -> Self {
        Self {
            inner,
            seeds,
            dirty,
            profile,
        }
    }
}

impl<P: PieProgram> PieProgram for Seeded<P> {
    type Query = P::Query;
    type VertexData = P::VertexData;
    type EdgeData = P::EdgeData;
    type Value = P::Value;
    type Partial = P::Partial;
    type Output = P::Output;

    fn peval(
        &self,
        query: &Self::Query,
        fragment: &Fragment<Self::VertexData, Self::EdgeData>,
        ctx: &mut PieContext<Self::Value>,
    ) -> Self::Partial {
        if let Some(Some(bytes)) = self.seeds.get(fragment.id) {
            if let Some(partial) =
                self.inner
                    .seed_partial(query, fragment, bytes, &self.dirty, &self.profile, ctx)
            {
                return partial;
            }
        }
        self.inner.peval(query, fragment, ctx)
    }

    fn inceval(
        &self,
        query: &Self::Query,
        fragment: &Fragment<Self::VertexData, Self::EdgeData>,
        partial: &mut Self::Partial,
        messages: &[(VertexId, Self::Value)],
        ctx: &mut PieContext<Self::Value>,
    ) {
        self.inner.inceval(query, fragment, partial, messages, ctx);
    }

    fn assemble(&self, partials: Vec<Self::Partial>) -> Self::Output {
        self.inner.assemble(partials)
    }

    fn aggregate(&self, a: &Self::Value, b: &Self::Value) -> Self::Value {
        self.inner.aggregate(a, b)
    }

    fn monotonic(&self, old: &Self::Value, new: &Self::Value) -> Option<bool> {
        self.inner.monotonic(old, new)
    }

    fn snapshot_partial(&self, partial: &Self::Partial) -> Option<Vec<u8>> {
        self.inner.snapshot_partial(partial)
    }

    fn restore_partial(&self, bytes: &[u8]) -> Option<Self::Partial> {
        self.inner.restore_partial(bytes)
    }

    fn incremental_eligible(&self, profile: &MutationProfile) -> bool {
        self.inner.incremental_eligible(profile)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_insert() -> MutationProfile {
        MutationProfile {
            edge_inserts: 1,
            ..Default::default()
        }
    }

    #[test]
    fn delta_log_versions_and_merges() {
        let mut log = DeltaLog::new();
        assert_eq!(log.version(), 0);
        assert_eq!(log.record(vec![1, 2], one_insert()), 1);
        assert_eq!(log.record(vec![2, 3], one_insert()), 2);

        let (dirty, profile) = log.since(0).unwrap();
        assert_eq!(dirty, vec![1, 2, 3]);
        assert_eq!(profile.edge_inserts, 2);
        assert!(profile.insert_only());

        let (dirty, _) = log.since(1).unwrap();
        assert_eq!(dirty, vec![2, 3]);

        let (dirty, profile) = log.since(2).unwrap();
        assert!(dirty.is_empty());
        assert!(profile.insert_only());

        assert!(log.since(3).is_none(), "future versions are stale caches");
    }

    #[test]
    fn converged_state_is_plain_data() {
        let s = ConvergedState {
            version: 3,
            partials: vec![vec![1, 2], vec![]],
        };
        assert_eq!(s.clone(), s);
    }
}
