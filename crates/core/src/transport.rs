//! Pluggable transports between the coordinator and its workers.
//!
//! The BSP exchange of [`crate::GrapeEngine`] is expressed against two small
//! traits — [`CoordTransport`] (the coordinator's view: send commands, gather
//! reports) and [`WorkerTransport`] (a worker's view: receive commands, send
//! reports) — so the *same* engine drives three very different fabrics:
//!
//! * **Typed channels** ([`typed_channel_pair`]): the original in-process
//!   backend. Messages move as typed values through
//!   [`grape_comm::CommNetwork`]; byte accounting uses the
//!   [`MessageSize`] *estimates*.
//! * **Framed channels** ([`framed_channel_pair`]): every message is encoded
//!   into a length-prefixed wire frame ([`grape_comm::wire`]), moved as raw
//!   bytes, and decoded on the far side. Semantically identical to the typed
//!   backend — property tests pin the results bit-identical — but the byte
//!   accounting now reports **actual framed bytes** (payload + header), and
//!   every message round-trips through the exact codec a multi-process
//!   deployment uses.
//! * **Framed streams** ([`FramedStreamCoord`] / [`FramedStreamWorker`]):
//!   the same frames over `std::net` TCP or Unix-domain sockets, for workers
//!   that live in other OS processes (see the `grape-worker` binary).
//!
//! The engine picks between the first two via
//! [`crate::EngineConfig::transport`]; the stream transports are used with
//! [`crate::GrapeEngine::run_coordinator`] and [`crate::engine::run_worker`].

use crate::message::{CoordCommand, WorkerReport};
use grape_comm::wire::{self, Frame, Wire};
use grape_comm::{CommNetwork, CommStats, MessageSize, WorkerLink, COORDINATOR};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A typed transport-level failure, surfaced by [`CoordTransport::failure`]
/// after a receive comes back empty: the coordinator lost contact with a
/// worker instead of reaching a normal end of stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A worker disconnected mid-run or stayed silent past the configured
    /// read timeout; the payload describes which and why.
    WorkerLost(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::WorkerLost(reason) => write!(f, "worker lost: {reason}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Default coordinator-side read timeout of the framed stream transport: how
/// long [`FramedStreamCoord::recv_blocking`] waits for the next report
/// before declaring the silent workers lost.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Which in-process transport backend the engine uses.
///
/// Both backends run the identical BSP exchange — same handshake, same
/// messages, same results — only the representation in flight differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Typed values through in-process channels; byte accounting uses
    /// [`MessageSize`] estimates. The fastest backend.
    #[default]
    InProcess,
    /// Every message is encoded to a wire frame and decoded on arrival; byte
    /// accounting reports actual framed bytes. This is the codec-exercising
    /// backend — what a multi-process deployment ships, minus the kernel.
    Framed,
}

/// The coordinator's endpoint of a transport.
pub trait CoordTransport<V>: Send {
    /// Sends `command` to worker `worker`.
    fn send(&self, worker: usize, command: CoordCommand<V>);

    /// Blocks until at least one report arrives, then drains the rest.
    /// An empty vector means every worker has disconnected.
    fn recv_blocking(&self) -> Vec<(usize, WorkerReport<V>)>;

    /// Drains the reports that have already arrived, without blocking.
    fn drain(&self) -> Vec<(usize, WorkerReport<V>)>;

    /// The counters this transport records its traffic into.
    fn comm_stats(&self) -> Arc<CommStats>;

    /// The typed reason the last [`CoordTransport::recv_blocking`] came back
    /// empty, if the transport lost a worker (disconnect, read timeout).
    /// In-process channel backends never lose workers and keep the default.
    fn failure(&self) -> Option<TransportError> {
        None
    }
}

/// One worker's endpoint of a transport.
pub trait WorkerTransport<V>: Send {
    /// Sends `report` to the coordinator.
    fn send(&self, report: WorkerReport<V>);

    /// Blocks until at least one command arrives, then drains the rest.
    /// An empty vector means the coordinator has disconnected.
    fn recv_blocking(&self) -> Vec<CoordCommand<V>>;
}

/// A worker endpoint that can also be polled without blocking — required by
/// the engine's inline driver, which multiplexes every worker onto one
/// thread. Channel-backed transports implement it; socket streams do not.
pub trait DrainableWorkerTransport<V>: WorkerTransport<V> {
    /// Drains the commands that have already arrived, without blocking.
    fn drain(&self) -> Vec<CoordCommand<V>>;
}

// ---------------------------------------------------------------------------
// Typed in-process channels (the original backend).
// ---------------------------------------------------------------------------

/// Coordinator endpoint of the typed in-process backend.
#[derive(Debug)]
pub struct TypedChannelCoord<V> {
    down: WorkerLink<CoordCommand<V>>,
    up: WorkerLink<WorkerReport<V>>,
}

/// Worker endpoint of the typed in-process backend.
#[derive(Debug)]
pub struct TypedChannelWorker<V> {
    down: WorkerLink<CoordCommand<V>>,
    up: WorkerLink<WorkerReport<V>>,
}

/// Builds the typed in-process transport for `n` workers, recording into
/// `stats`.
pub fn typed_channel_pair<V: MessageSize + Send>(
    n: usize,
    stats: Arc<CommStats>,
) -> (TypedChannelCoord<V>, Vec<TypedChannelWorker<V>>) {
    let up = CommNetwork::<WorkerReport<V>>::with_stats(n, Arc::clone(&stats));
    let down = CommNetwork::<CoordCommand<V>>::with_stats(n, stats);
    let (up_coord, up_workers) = up.split();
    let (down_coord, down_workers) = down.split();
    let workers = down_workers
        .into_iter()
        .zip(up_workers)
        .map(|(down, up)| TypedChannelWorker { down, up })
        .collect();
    (
        TypedChannelCoord {
            down: down_coord,
            up: up_coord,
        },
        workers,
    )
}

impl<V: MessageSize + Send> CoordTransport<V> for TypedChannelCoord<V> {
    fn send(&self, worker: usize, command: CoordCommand<V>) {
        self.down.send(worker, command);
    }

    fn recv_blocking(&self) -> Vec<(usize, WorkerReport<V>)> {
        self.up
            .recv_blocking()
            .into_iter()
            .map(|env| (env.from, env.payload))
            .collect()
    }

    fn drain(&self) -> Vec<(usize, WorkerReport<V>)> {
        self.up
            .drain()
            .into_iter()
            .map(|env| (env.from, env.payload))
            .collect()
    }

    fn comm_stats(&self) -> Arc<CommStats> {
        Arc::clone(self.up.stats())
    }
}

impl<V: MessageSize + Send> WorkerTransport<V> for TypedChannelWorker<V> {
    fn send(&self, report: WorkerReport<V>) {
        self.up.send(COORDINATOR, report);
    }

    fn recv_blocking(&self) -> Vec<CoordCommand<V>> {
        self.down
            .recv_blocking()
            .into_iter()
            .map(|env| env.payload)
            .collect()
    }
}

impl<V: MessageSize + Send> DrainableWorkerTransport<V> for TypedChannelWorker<V> {
    fn drain(&self) -> Vec<CoordCommand<V>> {
        self.down
            .drain()
            .into_iter()
            .map(|env| env.payload)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Framed in-process channels: encode → byte channel → decode.
// ---------------------------------------------------------------------------

/// Coordinator endpoint of the framed backend. Every command is encoded to a
/// [`Frame`] before the channel and every report decoded after it, so the
/// full wire codec is on the hot path and the recorded bytes are the actual
/// frame lengths.
#[derive(Debug)]
pub struct FramedChannelCoord<V> {
    down: WorkerLink<Frame>,
    up: WorkerLink<Frame>,
    _values: PhantomData<fn() -> V>,
}

/// Worker endpoint of the framed backend.
#[derive(Debug)]
pub struct FramedChannelWorker<V> {
    down: WorkerLink<Frame>,
    up: WorkerLink<Frame>,
    _values: PhantomData<fn() -> V>,
}

/// Builds the framed in-process transport for `n` workers, recording into
/// `stats` (actual framed bytes, not estimates).
pub fn framed_channel_pair<V: Wire + Send>(
    n: usize,
    stats: Arc<CommStats>,
) -> (FramedChannelCoord<V>, Vec<FramedChannelWorker<V>>) {
    let up = CommNetwork::<Frame>::with_stats(n, Arc::clone(&stats));
    let down = CommNetwork::<Frame>::with_stats(n, stats);
    let (up_coord, up_workers) = up.split();
    let (down_coord, down_workers) = down.split();
    let workers = down_workers
        .into_iter()
        .zip(up_workers)
        .map(|(down, up)| FramedChannelWorker {
            down,
            up,
            _values: PhantomData,
        })
        .collect();
    (
        FramedChannelCoord {
            down: down_coord,
            up: up_coord,
            _values: PhantomData,
        },
        workers,
    )
}

/// Framed channels are an in-process fabric: a frame that fails to decode is
/// an engine bug, not an I/O condition, so the decode path panics with the
/// wire error rather than threading `Result`s through the BSP loop.
fn expect_report<V: Wire>(frame: &Frame) -> WorkerReport<V> {
    WorkerReport::decode_frame(&frame.0)
        .expect("framed channel carried an undecodable report frame")
        .0
}

fn expect_command<V: Wire>(frame: &Frame) -> CoordCommand<V> {
    CoordCommand::decode_frame(&frame.0)
        .expect("framed channel carried an undecodable command frame")
        .0
}

impl<V: Wire + Send> CoordTransport<V> for FramedChannelCoord<V> {
    fn send(&self, worker: usize, command: CoordCommand<V>) {
        let mut bytes = Vec::new();
        command.encode_frame(&mut bytes);
        self.down.send(worker, Frame(bytes));
    }

    fn recv_blocking(&self) -> Vec<(usize, WorkerReport<V>)> {
        self.up
            .recv_blocking()
            .into_iter()
            .map(|env| (env.from, expect_report(&env.payload)))
            .collect()
    }

    fn drain(&self) -> Vec<(usize, WorkerReport<V>)> {
        self.up
            .drain()
            .into_iter()
            .map(|env| (env.from, expect_report(&env.payload)))
            .collect()
    }

    fn comm_stats(&self) -> Arc<CommStats> {
        Arc::clone(self.up.stats())
    }
}

impl<V: Wire + Send> WorkerTransport<V> for FramedChannelWorker<V> {
    fn send(&self, report: WorkerReport<V>) {
        let mut bytes = Vec::new();
        report.encode_frame(&mut bytes);
        self.up.send(COORDINATOR, Frame(bytes));
    }

    fn recv_blocking(&self) -> Vec<CoordCommand<V>> {
        self.down
            .recv_blocking()
            .into_iter()
            .map(|env| expect_command(&env.payload))
            .collect()
    }
}

impl<V: Wire + Send> DrainableWorkerTransport<V> for FramedChannelWorker<V> {
    fn drain(&self) -> Vec<CoordCommand<V>> {
        self.down
            .drain()
            .into_iter()
            .map(|env| expect_command(&env.payload))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Framed byte streams: the same frames over TCP / Unix-domain sockets.
// ---------------------------------------------------------------------------

/// A duplex byte stream that can be split into independently owned read and
/// write halves (both referring to the same connection), as `std::net`
/// sockets can via `try_clone`.
pub trait SplitStream: Read + Write + Send + Sized + 'static {
    /// Splits into `(read half, write half)`.
    fn split(self) -> io::Result<(Self, Self)>;
}

impl SplitStream for std::net::TcpStream {
    fn split(self) -> io::Result<(Self, Self)> {
        let read = self.try_clone()?;
        Ok((read, self))
    }
}

#[cfg(unix)]
impl SplitStream for std::os::unix::net::UnixStream {
    fn split(self) -> io::Result<(Self, Self)> {
        let read = self.try_clone()?;
        Ok((read, self))
    }
}

/// An out-of-band frame received by [`FramedStreamCoord`]: a frame whose tag
/// the BSP protocol does not know, surfaced raw so higher-level drivers can
/// run side protocols (e.g. the `grape-worker` result digests) over the same
/// connection.
pub type OobFrame = (usize, u8, Vec<u8>);

enum StreamEvent<V> {
    Report(usize, WorkerReport<V>),
    Oob(OobFrame),
    /// The worker's reader thread exited (EOF, I/O error, or a corrupt
    /// frame). Explicit, so the coordinator notices a single lost worker —
    /// the channel itself only disconnects when *every* reader is gone.
    Disconnected(usize),
}

/// Coordinator endpoint over framed byte streams (one stream per worker).
///
/// One reader thread per connection decodes incoming frames; report frames
/// feed the BSP loop, any other tag is parked on an out-of-band queue
/// ([`FramedStreamCoord::recv_oob_blocking`]). Sends go straight to the
/// connection's buffered writer. Bytes recorded in the [`CommStats`] are the
/// actual frame lengths, both directions.
pub struct FramedStreamCoord<V> {
    writers: Vec<Mutex<BufWriter<Box<dyn Write + Send>>>>,
    inbox: std::sync::mpsc::Receiver<StreamEvent<V>>,
    oob: Mutex<Vec<OobFrame>>,
    /// Sticky: why a worker was lost while the BSP loop still ran (a mid-run
    /// disconnect, or silence past `read_timeout`). Once set,
    /// `recv_blocking` returns empty immediately so the coordinator surfaces
    /// a typed [`TransportError`] instead of waiting forever for a report
    /// that cannot come.
    failure: Mutex<Option<TransportError>>,
    /// How long `recv_blocking` waits for the next report before declaring
    /// the silent workers lost; `None` waits indefinitely.
    read_timeout: Option<Duration>,
    stats: Arc<CommStats>,
}

impl<V: Wire + Send + 'static> FramedStreamCoord<V> {
    /// Wraps `streams` (one accepted connection per worker, in worker
    /// order), spawning a reader thread per connection.
    pub fn new<S: SplitStream>(streams: Vec<S>, stats: Arc<CommStats>) -> io::Result<Self> {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut writers = Vec::with_capacity(streams.len());
        for (worker, stream) in streams.into_iter().enumerate() {
            let (read_half, write_half) = stream.split()?;
            writers.push(Mutex::new(BufWriter::new(
                Box::new(write_half) as Box<dyn Write + Send>
            )));
            let tx = tx.clone();
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                let mut reader = BufReader::new(read_half);
                while let Ok(Some((tag, body))) = wire::read_frame_io(&mut reader) {
                    stats.record(1, (wire::HEADER_LEN + body.len()) as u64);
                    let event = if tag == crate::message::TAG_REPORT {
                        match WorkerReport::<V>::decode_body(tag, &body) {
                            Ok(report) => StreamEvent::Report(worker, report),
                            Err(err) => {
                                eprintln!(
                                    "coordinator: corrupt report frame from worker {worker}: {err}"
                                );
                                break;
                            }
                        }
                    } else {
                        // Frames outside the BSP protocol go to the driver.
                        StreamEvent::Oob((worker, tag, body))
                    };
                    if tx.send(event).is_err() {
                        return; // Coordinator gone; stop reading.
                    }
                }
                // EOF, I/O error or corrupt frame: tell the coordinator this
                // worker is gone so it never blocks on a report from it.
                let _ = tx.send(StreamEvent::Disconnected(worker));
            });
        }
        Ok(Self {
            writers,
            inbox: rx,
            oob: Mutex::new(Vec::new()),
            failure: Mutex::new(None),
            read_timeout: Some(DEFAULT_READ_TIMEOUT),
            stats,
        })
    }

    /// Overrides the coordinator-side read timeout (default
    /// [`DEFAULT_READ_TIMEOUT`]); `None` restores the historical
    /// wait-forever behavior.
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Records a lost-worker failure; the first reason sticks.
    fn record_failure(&self, reason: String) {
        let mut failure = self.failure.lock().unwrap();
        if failure.is_none() {
            *failure = Some(TransportError::WorkerLost(reason));
        }
    }

    fn sort_event(&self, event: StreamEvent<V>, out: &mut Vec<(usize, WorkerReport<V>)>) {
        match event {
            StreamEvent::Report(from, report) => out.push((from, report)),
            StreamEvent::Oob(frame) => self.oob.lock().unwrap().push(frame),
            // During the BSP loop a vanished worker is fatal: remember it so
            // every later receive fails fast instead of blocking. (This arm
            // only runs mid-loop — post-run hang-ups go through
            // `recv_oob_blocking`, which treats them as normal.)
            StreamEvent::Disconnected(worker) => {
                eprintln!("coordinator: worker {worker} disconnected mid-run");
                self.record_failure(format!("worker {worker} disconnected mid-run"));
            }
        }
    }

    /// Blocks until an out-of-band frame (any non-report tag) arrives from
    /// any worker. Returns `None` when every connection has closed first.
    /// (Connection closes are expected here — this runs after the BSP loop,
    /// when workers finish and hang up.)
    pub fn recv_oob_blocking(&self) -> Option<OobFrame> {
        loop {
            if let Some(frame) = {
                let mut oob = self.oob.lock().unwrap();
                if oob.is_empty() {
                    None
                } else {
                    Some(oob.remove(0))
                }
            } {
                return Some(frame);
            }
            match self.inbox.recv() {
                Ok(StreamEvent::Oob(frame)) => return Some(frame),
                Ok(StreamEvent::Report(from, _)) => {
                    // A late report while waiting for OOB traffic would be a
                    // protocol error by the worker; drop it loudly.
                    eprintln!("discarding post-run report from worker {from}");
                }
                // Normal post-run hang-up; when the last reader exits the
                // channel disconnects and recv() errors below.
                Ok(StreamEvent::Disconnected(_)) => {}
                Err(_) => return None,
            }
        }
    }
}

impl<V: Wire + Send + 'static> CoordTransport<V> for FramedStreamCoord<V> {
    fn send(&self, worker: usize, command: CoordCommand<V>) {
        let mut frame = Vec::new();
        command.encode_frame(&mut frame);
        let mut writer = self.writers[worker].lock().unwrap();
        // A vanished worker surfaces as an empty recv later; sends must not
        // panic mid-superstep.
        if writer
            .write_all(&frame)
            .and_then(|_| writer.flush())
            .is_ok()
        {
            self.stats.record(1, frame.len() as u64);
        }
    }

    fn recv_blocking(&self) -> Vec<(usize, WorkerReport<V>)> {
        let mut out = Vec::new();
        // A worker already died mid-run: fail fast (the coordinator turns
        // the empty receive into a typed Transport error) instead of waiting
        // for a report that can never arrive.
        if self.failure.lock().unwrap().is_some() {
            return out;
        }
        let deadline = self.read_timeout.map(|t| Instant::now() + t);
        while out.is_empty() && self.failure.lock().unwrap().is_none() {
            let event = if let Some(deadline) = deadline {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match self.inbox.recv_timeout(remaining) {
                    Ok(event) => event,
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        self.record_failure(format!(
                            "no report within the {:?} read timeout",
                            self.read_timeout.expect("deadline implies timeout")
                        ));
                        return out;
                    }
                    // Every reader thread has exited.
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return out,
                }
            } else {
                match self.inbox.recv() {
                    Ok(event) => event,
                    Err(_) => return out, // every reader thread has exited
                }
            };
            self.sort_event(event, &mut out);
        }
        while let Ok(event) = self.inbox.try_recv() {
            self.sort_event(event, &mut out);
        }
        out
    }

    fn drain(&self) -> Vec<(usize, WorkerReport<V>)> {
        let mut out = Vec::new();
        while let Ok(event) = self.inbox.try_recv() {
            self.sort_event(event, &mut out);
        }
        out
    }

    fn comm_stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.stats)
    }

    fn failure(&self) -> Option<TransportError> {
        self.failure.lock().unwrap().clone()
    }
}

/// Worker endpoint over one framed byte stream to the coordinator.
pub struct FramedStreamWorker<V> {
    reader: Mutex<BufReader<Box<dyn Read + Send>>>,
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
    /// Why the command stream ended, when it ended without a Finish: the
    /// error text, or the bare close. `recv_blocking` must return an empty
    /// batch in both cases (the worker loop's stop signal), but drivers need
    /// to distinguish "run complete" from "run torn down" before reporting
    /// success — see [`FramedStreamWorker::disconnect_reason`].
    disconnect: Mutex<Option<String>>,
    stats: Arc<CommStats>,
    _values: PhantomData<fn() -> V>,
}

impl<V: Wire + Send> FramedStreamWorker<V> {
    /// Wraps the worker's connection to the coordinator.
    pub fn new<S: SplitStream>(stream: S, stats: Arc<CommStats>) -> io::Result<Self> {
        let (read_half, write_half) = stream.split()?;
        Ok(Self {
            reader: Mutex::new(BufReader::new(Box::new(read_half) as Box<dyn Read + Send>)),
            writer: Mutex::new(BufWriter::new(Box::new(write_half) as Box<dyn Write + Send>)),
            disconnect: Mutex::new(None),
            stats: stats.clone(),
            _values: PhantomData,
        })
    }

    /// This endpoint's communication counters (frames and actual bytes, both
    /// directions).
    pub fn comm_stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.stats)
    }

    /// Why the command stream ended, if it ended *without* a Finish command:
    /// a connection error, an undecodable frame, or a bare close. `None`
    /// while the stream is healthy — i.e. after a clean Finish-terminated
    /// run. Drivers must check this before treating a finished worker loop
    /// as a successful run.
    pub fn disconnect_reason(&self) -> Option<String> {
        self.disconnect.lock().unwrap().clone()
    }

    /// Sends a raw out-of-band frame (any tag outside the BSP protocol) to
    /// the coordinator, for driver-level side protocols.
    pub fn send_oob<T: Wire>(&self, tag: u8, value: &T) -> io::Result<()> {
        let mut writer = self.writer.lock().unwrap();
        let written = wire::write_frame_io(&mut *writer, tag, value)?;
        writer.flush()?;
        self.stats.record(1, written as u64);
        Ok(())
    }
}

impl<V: Wire + Send> WorkerTransport<V> for FramedStreamWorker<V> {
    fn send(&self, report: WorkerReport<V>) {
        let mut frame = Vec::new();
        report.encode_frame(&mut frame);
        let mut writer = self.writer.lock().unwrap();
        if writer
            .write_all(&frame)
            .and_then(|_| writer.flush())
            .is_ok()
        {
            self.stats.record(1, frame.len() as u64);
        }
    }

    fn recv_blocking(&self) -> Vec<CoordCommand<V>> {
        let mut reader = self.reader.lock().unwrap();
        // The empty batch is the worker loop's stop signal; record *why* the
        // stream ended so the driver can tell a torn-down run from success.
        let reason = match wire::read_frame_io(&mut *reader) {
            Ok(Some((tag, body))) => {
                self.stats.record(1, (wire::HEADER_LEN + body.len()) as u64);
                match CoordCommand::decode_body(tag, &body) {
                    Ok(command) => return vec![command],
                    Err(err) => format!("undecodable command frame: {err}"),
                }
            }
            Ok(None) => "connection closed before Finish".to_string(),
            Err(err) => format!("connection error: {err}"),
        };
        eprintln!("worker: {reason}");
        *self.disconnect.lock().unwrap() = Some(reason);
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(superstep: usize, changes: Vec<(u32, f64)>) -> WorkerReport<f64> {
        WorkerReport::Done {
            superstep,
            changes,
            strays: vec![],
            eval_seconds: 0.0,
        }
    }

    #[test]
    fn typed_and_framed_channel_pairs_deliver_identically() {
        for kind in [TransportKind::InProcess, TransportKind::Framed] {
            let stats = Arc::new(CommStats::new());
            let command = CoordCommand::IncEval {
                superstep: 1,
                updates: vec![(0u32, 1.5f64), (3, 2.5)],
            };
            let sent_report = report(1, vec![(7, 0.5)]);
            let (got_commands, got_reports, bytes) = match kind {
                TransportKind::InProcess => {
                    let (coord, workers) = typed_channel_pair::<f64>(2, Arc::clone(&stats));
                    coord.send(1, command.clone());
                    let got = workers[1].drain();
                    workers[1].send(sent_report.clone());
                    (got, coord.recv_blocking(), stats.bytes())
                }
                TransportKind::Framed => {
                    let (coord, workers) = framed_channel_pair::<f64>(2, Arc::clone(&stats));
                    coord.send(1, command.clone());
                    let got = workers[1].drain();
                    workers[1].send(sent_report.clone());
                    (got, coord.recv_blocking(), stats.bytes())
                }
            };
            assert_eq!(got_commands, vec![command.clone()]);
            assert_eq!(got_reports, vec![(1usize, sent_report.clone())]);
            match kind {
                // Estimated: payload sizes only.
                TransportKind::InProcess => assert_eq!(
                    bytes,
                    (command.size_bytes() + sent_report.size_bytes()) as u64
                ),
                // Actual: payload + per-message wire overhead.
                TransportKind::Framed => assert_eq!(
                    bytes,
                    (command.size_bytes()
                        + CoordCommand::<f64>::WIRE_OVERHEAD
                        + sent_report.size_bytes()
                        + WorkerReport::<f64>::WIRE_OVERHEAD) as u64
                ),
            }
        }
    }

    #[test]
    fn a_lost_worker_fails_the_receive_instead_of_hanging() {
        // Two workers; one dies mid-run while the other stays connected.
        // recv_blocking must fail fast (empty batch → the engine's
        // WorkerPanic) rather than block forever on the survivor's channel.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dead = std::thread::spawn(move || {
            // Connects and hangs up without ever reporting.
            drop(std::net::TcpStream::connect(addr).unwrap());
        });
        let survivor_conn = std::net::TcpStream::connect(addr).unwrap();
        let survivor =
            FramedStreamWorker::<f64>::new(survivor_conn, Arc::new(CommStats::new())).unwrap();
        let mut streams = Vec::new();
        for _ in 0..2 {
            streams.push(listener.accept().unwrap().0);
        }
        let coord = FramedStreamCoord::<f64>::new(streams, Arc::new(CommStats::new())).unwrap();
        dead.join().unwrap();
        // Wait until the disconnect has been noticed (first call may still
        // deliver nothing but must not block forever).
        let got = coord.recv_blocking();
        assert!(got.is_empty(), "no worker reported anything: {got:?}");
        // Sticky: every later receive fails immediately too, and the reason
        // is typed.
        assert!(coord.recv_blocking().is_empty());
        assert!(matches!(
            coord.failure(),
            Some(TransportError::WorkerLost(reason)) if reason.contains("disconnected")
        ));
        drop(survivor);
    }

    #[test]
    fn a_silent_worker_times_out_with_a_typed_error() {
        // The "worker" connects but never speaks the protocol: without a
        // read timeout the coordinator would block forever. With one, the
        // receive must come back empty within the deadline and failure()
        // must carry the typed reason.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let silent = std::net::TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let timeout = Duration::from_millis(200);
        let coord = FramedStreamCoord::<f64>::new(vec![accepted], Arc::new(CommStats::new()))
            .unwrap()
            .with_read_timeout(Some(timeout));
        let started = Instant::now();
        let got = coord.recv_blocking();
        let elapsed = started.elapsed();
        assert!(got.is_empty());
        assert!(
            elapsed >= timeout && elapsed < timeout + Duration::from_secs(5),
            "timed out after {elapsed:?} with a {timeout:?} deadline"
        );
        assert!(matches!(
            coord.failure(),
            Some(TransportError::WorkerLost(reason)) if reason.contains("read timeout")
        ));
        // Sticky: later receives fail fast, well under the deadline.
        let started = Instant::now();
        assert!(coord.recv_blocking().is_empty());
        assert!(started.elapsed() < timeout);
        drop(silent);
    }

    #[test]
    fn framed_streams_round_trip_over_tcp() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let stream = std::net::TcpStream::connect(addr).unwrap();
            let worker =
                FramedStreamWorker::<f64>::new(stream, Arc::new(CommStats::new())).unwrap();
            let commands = worker.recv_blocking();
            assert_eq!(commands.len(), 1);
            worker.send(report(0, vec![(1, 9.0)]));
            worker.send_oob(0x77, &String::from("digest")).unwrap();
            // The coordinator releases the worker with Finish; the worker
            // exits and its socket close unblocks the reader thread.
            assert_eq!(worker.recv_blocking(), vec![CoordCommand::Finish]);
        });
        let (accepted, _) = listener.accept().unwrap();
        let stats = Arc::new(CommStats::new());
        let coord = FramedStreamCoord::<f64>::new(vec![accepted], Arc::clone(&stats)).unwrap();
        coord.send(
            0,
            CoordCommand::Init {
                border_slots: vec![0, 1],
            },
        );
        let reports = coord.recv_blocking();
        assert_eq!(reports, vec![(0usize, report(0, vec![(1, 9.0)]))]);
        let (from, tag, body) = coord.recv_oob_blocking().unwrap();
        assert_eq!((from, tag), (0, 0x77));
        let mut reader = wire::WireReader::new(&body);
        assert_eq!(String::decode(&mut reader).unwrap(), "digest");
        // Both directions were recorded with their actual frame lengths.
        assert_eq!(stats.messages(), 3);
        coord.send(0, CoordCommand::Finish);
        client.join().unwrap();
    }
}
