//! Pluggable transports between the coordinator and its workers.
//!
//! The BSP exchange of [`crate::GrapeEngine`] is expressed against two small
//! traits — [`CoordTransport`] (the coordinator's view: send commands, gather
//! reports) and [`WorkerTransport`] (a worker's view: receive commands, send
//! reports) — so the *same* engine drives three very different fabrics:
//!
//! * **Typed channels** ([`typed_channel_pair`]): the original in-process
//!   backend. Messages move as typed values through
//!   [`grape_comm::CommNetwork`]; byte accounting uses the
//!   [`MessageSize`] *estimates*.
//! * **Framed channels** ([`framed_channel_pair`]): every message is encoded
//!   into a length-prefixed wire frame ([`grape_comm::wire`]), moved as raw
//!   bytes, and decoded on the far side. Semantically identical to the typed
//!   backend — property tests pin the results bit-identical — but the byte
//!   accounting now reports **actual framed bytes** (payload + header), and
//!   every message round-trips through the exact codec a multi-process
//!   deployment uses.
//! * **Framed streams** ([`FramedStreamCoord`] / [`FramedStreamWorker`]):
//!   the same frames over `std::net` TCP or Unix-domain sockets, for workers
//!   that live in other OS processes (see the `grape-worker` binary).
//!
//! The engine picks between the first two via
//! [`crate::EngineConfig::transport`]; the stream transports are used with
//! [`crate::GrapeEngine::run_coordinator`] and [`crate::engine::run_worker`].

use crate::message::{CoordCommand, WorkerReport};
use grape_comm::wire::{self, Frame, Wire};
use grape_comm::{CommNetwork, CommStats, MessageSize, WorkerLink, COORDINATOR};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A typed transport-level failure, surfaced by [`CoordTransport::failure`]
/// after a receive comes back empty: the coordinator lost contact with a
/// worker instead of reaching a normal end of stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A worker disconnected mid-run or stayed silent past the configured
    /// read timeout.
    WorkerLost {
        /// Which worker was lost. `None` when the transport cannot tell (a
        /// read timeout fires without naming the silent worker); recovery
        /// then derives the lost set from who has not reported.
        worker: Option<usize>,
        /// Human-readable cause (disconnect, timeout, corrupt frame).
        reason: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::WorkerLost {
                worker: Some(w),
                reason,
            } => write!(f, "worker {w} lost: {reason}"),
            TransportError::WorkerLost {
                worker: None,
                reason,
            } => write!(f, "worker lost: {reason}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Default coordinator-side read timeout of the framed stream transport: how
/// long [`FramedStreamCoord::recv_blocking`] waits for the next report
/// before declaring the silent workers lost.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Which in-process transport backend the engine uses.
///
/// Both backends run the identical BSP exchange — same handshake, same
/// messages, same results — only the representation in flight differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Typed values through in-process channels; byte accounting uses
    /// [`MessageSize`] estimates. The fastest backend.
    #[default]
    InProcess,
    /// Every message is encoded to a wire frame and decoded on arrival; byte
    /// accounting reports actual framed bytes. This is the codec-exercising
    /// backend — what a multi-process deployment ships, minus the kernel.
    Framed,
}

/// The coordinator's endpoint of a transport.
pub trait CoordTransport<V>: Send {
    /// Sends `command` to worker `worker`.
    fn send(&self, worker: usize, command: CoordCommand<V>);

    /// Blocks until at least one report arrives, then drains the rest.
    /// An empty vector means every worker has disconnected.
    fn recv_blocking(&self) -> Vec<(usize, WorkerReport<V>)>;

    /// Drains the reports that have already arrived, without blocking.
    fn drain(&self) -> Vec<(usize, WorkerReport<V>)>;

    /// The counters this transport records its traffic into.
    fn comm_stats(&self) -> Arc<CommStats>;

    /// The typed reason the last [`CoordTransport::recv_blocking`] came back
    /// empty, if the transport lost a worker (disconnect, read timeout).
    /// In-process channel backends never lose workers and keep the default.
    fn failure(&self) -> Option<TransportError> {
        None
    }

    /// Every failure the transport has recorded so far, so a recovering
    /// coordinator can treat same-superstep losses as one batch (one epoch
    /// bump and one replay wave per victim) instead of discovering them one
    /// gather round trip at a time. Defaults to at most the single failure
    /// reported by [`CoordTransport::failure`].
    fn failures(&self) -> Vec<TransportError> {
        self.failure().into_iter().collect()
    }
}

/// One worker's endpoint of a transport.
pub trait WorkerTransport<V>: Send {
    /// Sends `report` to the coordinator.
    fn send(&self, report: WorkerReport<V>);

    /// Blocks until at least one command arrives, then drains the rest.
    /// An empty vector means the coordinator has disconnected.
    fn recv_blocking(&self) -> Vec<CoordCommand<V>>;
}

/// A worker endpoint that can also be polled without blocking — required by
/// the engine's inline driver, which multiplexes every worker onto one
/// thread. Channel-backed transports implement it; socket streams do not.
pub trait DrainableWorkerTransport<V>: WorkerTransport<V> {
    /// Drains the commands that have already arrived, without blocking.
    fn drain(&self) -> Vec<CoordCommand<V>>;
}

// ---------------------------------------------------------------------------
// Typed in-process channels (the original backend).
// ---------------------------------------------------------------------------

/// Coordinator endpoint of the typed in-process backend.
#[derive(Debug)]
pub struct TypedChannelCoord<V> {
    down: WorkerLink<CoordCommand<V>>,
    up: WorkerLink<WorkerReport<V>>,
}

/// Worker endpoint of the typed in-process backend.
#[derive(Debug)]
pub struct TypedChannelWorker<V> {
    down: WorkerLink<CoordCommand<V>>,
    up: WorkerLink<WorkerReport<V>>,
}

/// Builds the typed in-process transport for `n` workers, recording into
/// `stats`.
pub fn typed_channel_pair<V: MessageSize + Send>(
    n: usize,
    stats: Arc<CommStats>,
) -> (TypedChannelCoord<V>, Vec<TypedChannelWorker<V>>) {
    let up = CommNetwork::<WorkerReport<V>>::with_stats(n, Arc::clone(&stats));
    let down = CommNetwork::<CoordCommand<V>>::with_stats(n, stats);
    let (up_coord, up_workers) = up.split();
    let (down_coord, down_workers) = down.split();
    let workers = down_workers
        .into_iter()
        .zip(up_workers)
        .map(|(down, up)| TypedChannelWorker { down, up })
        .collect();
    (
        TypedChannelCoord {
            down: down_coord,
            up: up_coord,
        },
        workers,
    )
}

impl<V: MessageSize + Send> CoordTransport<V> for TypedChannelCoord<V> {
    fn send(&self, worker: usize, command: CoordCommand<V>) {
        self.down.send(worker, command);
    }

    fn recv_blocking(&self) -> Vec<(usize, WorkerReport<V>)> {
        self.up
            .recv_blocking()
            .into_iter()
            .map(|env| (env.from, env.payload))
            .collect()
    }

    fn drain(&self) -> Vec<(usize, WorkerReport<V>)> {
        self.up
            .drain()
            .into_iter()
            .map(|env| (env.from, env.payload))
            .collect()
    }

    fn comm_stats(&self) -> Arc<CommStats> {
        Arc::clone(self.up.stats())
    }
}

impl<V: MessageSize + Send> WorkerTransport<V> for TypedChannelWorker<V> {
    fn send(&self, report: WorkerReport<V>) {
        self.up.send(COORDINATOR, report);
    }

    fn recv_blocking(&self) -> Vec<CoordCommand<V>> {
        self.down
            .recv_blocking()
            .into_iter()
            .map(|env| env.payload)
            .collect()
    }
}

impl<V: MessageSize + Send> DrainableWorkerTransport<V> for TypedChannelWorker<V> {
    fn drain(&self) -> Vec<CoordCommand<V>> {
        self.down
            .drain()
            .into_iter()
            .map(|env| env.payload)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Framed in-process channels: encode → byte channel → decode.
// ---------------------------------------------------------------------------

/// Coordinator endpoint of the framed backend. Every command is encoded to a
/// [`Frame`] before the channel and every report decoded after it, so the
/// full wire codec is on the hot path and the recorded bytes are the actual
/// frame lengths.
#[derive(Debug)]
pub struct FramedChannelCoord<V> {
    down: WorkerLink<Frame>,
    up: WorkerLink<Frame>,
    _values: PhantomData<fn() -> V>,
}

/// Worker endpoint of the framed backend.
#[derive(Debug)]
pub struct FramedChannelWorker<V> {
    down: WorkerLink<Frame>,
    up: WorkerLink<Frame>,
    _values: PhantomData<fn() -> V>,
}

/// Builds the framed in-process transport for `n` workers, recording into
/// `stats` (actual framed bytes, not estimates).
pub fn framed_channel_pair<V: Wire + Send>(
    n: usize,
    stats: Arc<CommStats>,
) -> (FramedChannelCoord<V>, Vec<FramedChannelWorker<V>>) {
    let up = CommNetwork::<Frame>::with_stats(n, Arc::clone(&stats));
    let down = CommNetwork::<Frame>::with_stats(n, stats);
    let (up_coord, up_workers) = up.split();
    let (down_coord, down_workers) = down.split();
    let workers = down_workers
        .into_iter()
        .zip(up_workers)
        .map(|(down, up)| FramedChannelWorker {
            down,
            up,
            _values: PhantomData,
        })
        .collect();
    (
        FramedChannelCoord {
            down: down_coord,
            up: up_coord,
            _values: PhantomData,
        },
        workers,
    )
}

/// Framed channels are an in-process fabric: a frame that fails to decode is
/// an engine bug, not an I/O condition, so the decode path panics with the
/// wire error rather than threading `Result`s through the BSP loop.
fn expect_report<V: Wire>(frame: &Frame) -> WorkerReport<V> {
    WorkerReport::decode_frame(&frame.0)
        .expect("framed channel carried an undecodable report frame")
        .0
}

fn expect_command<V: Wire>(frame: &Frame) -> CoordCommand<V> {
    CoordCommand::decode_frame(&frame.0)
        .expect("framed channel carried an undecodable command frame")
        .0
}

impl<V: Wire + Send> CoordTransport<V> for FramedChannelCoord<V> {
    fn send(&self, worker: usize, command: CoordCommand<V>) {
        let mut bytes = Vec::new();
        command.encode_frame(&mut bytes);
        self.down.send(worker, Frame(bytes));
    }

    fn recv_blocking(&self) -> Vec<(usize, WorkerReport<V>)> {
        self.up
            .recv_blocking()
            .into_iter()
            .map(|env| (env.from, expect_report(&env.payload)))
            .collect()
    }

    fn drain(&self) -> Vec<(usize, WorkerReport<V>)> {
        self.up
            .drain()
            .into_iter()
            .map(|env| (env.from, expect_report(&env.payload)))
            .collect()
    }

    fn comm_stats(&self) -> Arc<CommStats> {
        Arc::clone(self.up.stats())
    }
}

impl<V: Wire + Send> WorkerTransport<V> for FramedChannelWorker<V> {
    fn send(&self, report: WorkerReport<V>) {
        let mut bytes = Vec::new();
        report.encode_frame(&mut bytes);
        self.up.send(COORDINATOR, Frame(bytes));
    }

    fn recv_blocking(&self) -> Vec<CoordCommand<V>> {
        self.down
            .recv_blocking()
            .into_iter()
            .map(|env| expect_command(&env.payload))
            .collect()
    }
}

impl<V: Wire + Send> DrainableWorkerTransport<V> for FramedChannelWorker<V> {
    fn drain(&self) -> Vec<CoordCommand<V>> {
        self.down
            .drain()
            .into_iter()
            .map(|env| expect_command(&env.payload))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Framed byte streams: the same frames over TCP / Unix-domain sockets.
// ---------------------------------------------------------------------------

/// A duplex byte stream that can be split into independently owned read and
/// write halves (both referring to the same connection), as `std::net`
/// sockets can via `try_clone`.
pub trait SplitStream: Read + Write + Send + Sized + 'static {
    /// Splits into `(read half, write half)`.
    fn split(self) -> io::Result<(Self, Self)>;

    /// Applies an OS-level read timeout to the underlying connection
    /// (`None` = block forever). Lets a worker notice a vanished
    /// coordinator instead of waiting on a dead socket indefinitely.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
}

impl SplitStream for std::net::TcpStream {
    fn split(self) -> io::Result<(Self, Self)> {
        let read = self.try_clone()?;
        Ok((read, self))
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        std::net::TcpStream::set_read_timeout(self, timeout)
    }
}

#[cfg(unix)]
impl SplitStream for std::os::unix::net::UnixStream {
    fn split(self) -> io::Result<(Self, Self)> {
        let read = self.try_clone()?;
        Ok((read, self))
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        std::os::unix::net::UnixStream::set_read_timeout(self, timeout)
    }
}

/// An out-of-band frame received by [`FramedStreamCoord`]: a frame whose tag
/// the BSP protocol does not know, surfaced raw so higher-level drivers can
/// run side protocols (e.g. the `grape-worker` result digests) over the same
/// connection.
pub type OobFrame = (usize, u8, Vec<u8>);

enum StreamEvent<V> {
    Report(usize, WorkerReport<V>),
    Oob(OobFrame),
    /// The worker's reader thread exited (EOF, I/O error, or a corrupt
    /// frame). Carries the epoch the reader was serving: a replaced
    /// connection's reader exits *after* the replacement took over, and its
    /// stale epoch tells the coordinator to ignore the hang-up.
    Disconnected(usize, u32),
}

/// Coordinator endpoint over framed byte streams (one stream per worker).
///
/// One reader thread per connection decodes incoming frames; report frames
/// feed the BSP loop, any other tag is parked on an out-of-band queue
/// ([`FramedStreamCoord::recv_oob_blocking`]). Sends go straight to the
/// connection's buffered writer. Bytes recorded in the [`CommStats`] are the
/// actual frame lengths, both directions.
pub struct FramedStreamCoord<V> {
    writers: Vec<Mutex<BufWriter<Box<dyn Write + Send>>>>,
    inbox: std::sync::mpsc::Receiver<StreamEvent<V>>,
    /// Kept so [`FramedStreamCoord::replace_worker`] can hand new reader
    /// threads their event channel. Because the struct holds a sender, the
    /// inbox never "disconnects"; end-of-traffic is tracked by `live`.
    tx: std::sync::mpsc::Sender<StreamEvent<V>>,
    oob: Mutex<Vec<OobFrame>>,
    /// Sticky until recovered: which workers were lost while the BSP loop
    /// still ran (mid-run disconnects, or silence past `read_timeout`).
    /// While non-empty, `recv_blocking` returns empty immediately so the
    /// coordinator surfaces a typed [`TransportError`] instead of waiting
    /// forever for a report that cannot come;
    /// [`FramedStreamCoord::replace_worker`] clears the replaced worker's
    /// entries.
    failures: Mutex<Vec<TransportError>>,
    /// Per-worker connection epoch. Frames stamped with any other epoch are
    /// fenced (dropped + counted) by the reader threads; sends stamp the
    /// current value.
    epochs: Vec<Arc<AtomicU32>>,
    /// Frames dropped because their epoch did not match the connection's.
    fenced: Arc<AtomicU64>,
    /// Reader threads still running; when it reaches zero every connection
    /// has closed and `recv_oob_blocking` can report end-of-traffic.
    live: Arc<AtomicUsize>,
    /// How long `recv_blocking` waits for the next report before declaring
    /// the silent workers lost; `None` waits indefinitely.
    read_timeout: Option<Duration>,
    stats: Arc<CommStats>,
}

impl<V: Wire + Send + 'static> FramedStreamCoord<V> {
    /// Wraps `streams` (one accepted connection per worker, in worker
    /// order), spawning a reader thread per connection. All connections
    /// start at epoch 0.
    pub fn new<S: SplitStream>(streams: Vec<S>, stats: Arc<CommStats>) -> io::Result<Self> {
        Self::new_at_epoch(streams, stats, 0)
    }

    /// [`FramedStreamCoord::new`] with every connection starting at `epoch`
    /// instead of 0 — the service path, where each query's connections are
    /// fenced by its own run id. The epoch must be a constructor parameter
    /// (not a post-hoc setter) because each reader thread captures it for
    /// the [`StreamEvent::Disconnected`] it emits: a reader spawned at the
    /// wrong epoch would report a loss the coordinator then ignores as
    /// stale, turning a fast worker-loss signal into a read-timeout stall.
    pub fn new_at_epoch<S: SplitStream>(
        streams: Vec<S>,
        stats: Arc<CommStats>,
        epoch: u32,
    ) -> io::Result<Self> {
        let (tx, rx) = std::sync::mpsc::channel();
        let n = streams.len();
        let coord = Self {
            writers: Vec::new(),
            inbox: rx,
            tx,
            oob: Mutex::new(Vec::new()),
            failures: Mutex::new(Vec::new()),
            epochs: (0..n).map(|_| Arc::new(AtomicU32::new(epoch))).collect(),
            fenced: Arc::new(AtomicU64::new(0)),
            live: Arc::new(AtomicUsize::new(0)),
            read_timeout: Some(DEFAULT_READ_TIMEOUT),
            stats,
        };
        let mut coord = coord;
        for (worker, stream) in streams.into_iter().enumerate() {
            let (read_half, write_half) = stream.split()?;
            coord.writers.push(Mutex::new(BufWriter::new(
                Box::new(write_half) as Box<dyn Write + Send>
            )));
            coord.spawn_reader(worker, read_half, epoch);
        }
        Ok(coord)
    }

    /// Spawns the reader thread serving `worker`'s connection at `epoch`.
    /// Frames stamped with a different epoch are fenced: dropped, counted,
    /// never delivered.
    fn spawn_reader<R: Read + Send + 'static>(&self, worker: usize, read_half: R, epoch: u32) {
        let tx = self.tx.clone();
        let stats = Arc::clone(&self.stats);
        let expected = Arc::clone(&self.epochs[worker]);
        let fenced = Arc::clone(&self.fenced);
        let live = Arc::clone(&self.live);
        live.fetch_add(1, Ordering::SeqCst);
        std::thread::spawn(move || {
            let mut reader = BufReader::new(read_half);
            while let Ok(Some((tag, frame_epoch, body))) = wire::read_frame_io_epoch(&mut reader) {
                stats.record(1, (wire::HEADER_LEN + body.len()) as u64);
                // Epoch fence: a frame from a connection that has since been
                // replaced (or any mis-stamped frame) must not reach the BSP
                // loop — a stale report would corrupt the replayed superstep.
                if frame_epoch != expected.load(Ordering::SeqCst) {
                    fenced.fetch_add(1, Ordering::SeqCst);
                    eprintln!(
                        "coordinator: fenced stale frame (tag {tag:#04x}, epoch {frame_epoch}) \
                         from worker {worker}"
                    );
                    continue;
                }
                let event = if tag == crate::message::TAG_REPORT {
                    match WorkerReport::<V>::decode_body(tag, &body) {
                        Ok(report) => StreamEvent::Report(worker, report),
                        Err(err) => {
                            eprintln!(
                                "coordinator: corrupt report frame from worker {worker}: {err}"
                            );
                            break;
                        }
                    }
                } else {
                    // Frames outside the BSP protocol go to the driver.
                    StreamEvent::Oob((worker, tag, body))
                };
                if tx.send(event).is_err() {
                    live.fetch_sub(1, Ordering::SeqCst);
                    return; // Coordinator gone; stop reading.
                }
            }
            // EOF, I/O error or corrupt frame: tell the coordinator this
            // worker is gone so it never blocks on a report from it. The
            // decrement happens first so a receiver woken by the event
            // observes the updated count.
            live.fetch_sub(1, Ordering::SeqCst);
            let _ = tx.send(StreamEvent::Disconnected(worker, epoch));
        });
    }

    /// Replaces `worker`'s connection with a fresh stream at `epoch`
    /// (recovery): future sends are stamped with the new epoch, frames still
    /// in flight from the old connection are fenced, and the worker's
    /// recorded failures are forgotten so the BSP loop can resume.
    pub fn replace_worker<S: SplitStream>(
        &self,
        worker: usize,
        stream: S,
        epoch: u32,
    ) -> io::Result<()> {
        let (read_half, write_half) = stream.split()?;
        self.epochs[worker].store(epoch, Ordering::SeqCst);
        *self.writers[worker].lock().unwrap() =
            BufWriter::new(Box::new(write_half) as Box<dyn Write + Send>);
        self.spawn_reader(worker, read_half, epoch);
        // Forget this worker's failures, and any anonymous timeout failures
        // (the recovery layer re-derives who is still silent, if anyone).
        self.failures.lock().unwrap().retain(|f| match f {
            TransportError::WorkerLost { worker: w, .. } => *w != Some(worker) && w.is_some(),
        });
        Ok(())
    }

    /// How many frames the reader threads dropped because their epoch did
    /// not match the connection's — stale traffic from before a recovery.
    pub fn fenced_frames(&self) -> u64 {
        self.fenced.load(Ordering::SeqCst)
    }

    /// The epoch `worker`'s connection currently runs at.
    pub fn worker_epoch(&self, worker: usize) -> u32 {
        self.epochs[worker].load(Ordering::SeqCst)
    }

    /// Overrides the coordinator-side read timeout (default
    /// [`DEFAULT_READ_TIMEOUT`]); `None` restores the historical
    /// wait-forever behavior.
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Records a lost-worker failure (deduplicated per worker).
    fn record_failure(&self, worker: Option<usize>, reason: String) {
        let mut failures = self.failures.lock().unwrap();
        let duplicate = failures
            .iter()
            .any(|TransportError::WorkerLost { worker: w, .. }| *w == worker);
        if !duplicate {
            failures.push(TransportError::WorkerLost { worker, reason });
        }
    }

    fn sort_event(&self, event: StreamEvent<V>, out: &mut Vec<(usize, WorkerReport<V>)>) {
        match event {
            StreamEvent::Report(from, report) => out.push((from, report)),
            StreamEvent::Oob(frame) => self.oob.lock().unwrap().push(frame),
            // During the BSP loop a vanished worker is fatal (until
            // recovered): remember it so every later receive fails fast
            // instead of blocking. (This arm only runs mid-loop — post-run
            // hang-ups go through `recv_oob_blocking`, which treats them as
            // normal.) A hang-up from a *replaced* connection's reader is
            // expected and carries a stale epoch: ignore it.
            StreamEvent::Disconnected(worker, epoch) => {
                if epoch == self.epochs[worker].load(Ordering::SeqCst) {
                    eprintln!("coordinator: worker {worker} disconnected mid-run");
                    self.record_failure(
                        Some(worker),
                        format!("worker {worker} disconnected mid-run"),
                    );
                }
            }
        }
    }

    /// Blocks until an out-of-band frame (any non-report tag) arrives from
    /// any worker. Returns `None` when every connection has closed first.
    /// (Connection closes are expected here — this runs after the BSP loop,
    /// when workers finish and hang up.)
    pub fn recv_oob_blocking(&self) -> Option<OobFrame> {
        loop {
            if let Some(frame) = {
                let mut oob = self.oob.lock().unwrap();
                if oob.is_empty() {
                    None
                } else {
                    Some(oob.remove(0))
                }
            } {
                return Some(frame);
            }
            // The struct itself holds a sender, so the channel never
            // disconnects on its own: once the last reader has exited, drain
            // what is queued and then report end-of-traffic.
            if self.live.load(Ordering::SeqCst) == 0 {
                match self.inbox.try_recv() {
                    Ok(StreamEvent::Oob(frame)) => return Some(frame),
                    Ok(_) => continue,
                    Err(_) => return None,
                }
            }
            match self.inbox.recv() {
                Ok(StreamEvent::Oob(frame)) => return Some(frame),
                Ok(StreamEvent::Report(from, _)) => {
                    // A late report while waiting for OOB traffic would be a
                    // protocol error by the worker; drop it loudly.
                    eprintln!("discarding post-run report from worker {from}");
                }
                // Normal post-run hang-up; the `live` check above notices
                // when the last reader is gone.
                Ok(StreamEvent::Disconnected(..)) => {}
                Err(_) => return None,
            }
        }
    }
}

impl<V: Wire + Send + 'static> CoordTransport<V> for FramedStreamCoord<V> {
    fn send(&self, worker: usize, command: CoordCommand<V>) {
        let mut frame = Vec::new();
        command.encode_frame_epoch(self.epochs[worker].load(Ordering::SeqCst), &mut frame);
        let mut writer = self.writers[worker].lock().unwrap();
        // A vanished worker surfaces as an empty recv later; sends must not
        // panic mid-superstep.
        if writer
            .write_all(&frame)
            .and_then(|_| writer.flush())
            .is_ok()
        {
            self.stats.record(1, frame.len() as u64);
        }
    }

    fn recv_blocking(&self) -> Vec<(usize, WorkerReport<V>)> {
        let mut out = Vec::new();
        // A worker already died mid-run: fail fast (the coordinator turns
        // the empty receive into a typed Transport error) instead of waiting
        // for a report that can never arrive. If recovery replaced the
        // worker, `replace_worker` cleared its entry and we proceed.
        if !self.failures.lock().unwrap().is_empty() {
            return out;
        }
        let deadline = self.read_timeout.map(|t| Instant::now() + t);
        while out.is_empty() && self.failures.lock().unwrap().is_empty() {
            let event = if let Some(deadline) = deadline {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match self.inbox.recv_timeout(remaining) {
                    Ok(event) => event,
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        // The transport cannot tell which worker went silent;
                        // `worker: None` lets recovery derive the set from
                        // who has not reported this superstep.
                        self.record_failure(
                            None,
                            format!(
                                "no report within the {:?} read timeout",
                                self.read_timeout.expect("deadline implies timeout")
                            ),
                        );
                        return out;
                    }
                    // Every reader thread has exited.
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return out,
                }
            } else {
                match self.inbox.recv() {
                    Ok(event) => event,
                    Err(_) => return out, // every reader thread has exited
                }
            };
            self.sort_event(event, &mut out);
        }
        while let Ok(event) = self.inbox.try_recv() {
            self.sort_event(event, &mut out);
        }
        out
    }

    fn drain(&self) -> Vec<(usize, WorkerReport<V>)> {
        let mut out = Vec::new();
        while let Ok(event) = self.inbox.try_recv() {
            self.sort_event(event, &mut out);
        }
        out
    }

    fn comm_stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.stats)
    }

    fn failure(&self) -> Option<TransportError> {
        self.failures.lock().unwrap().first().cloned()
    }

    fn failures(&self) -> Vec<TransportError> {
        self.failures.lock().unwrap().clone()
    }
}

/// Worker endpoint over one framed byte stream to the coordinator.
pub struct FramedStreamWorker<V> {
    reader: Mutex<BufReader<Box<dyn Read + Send>>>,
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
    /// Why the command stream ended, when it ended without a Finish: the
    /// error text, or the bare close. `recv_blocking` must return an empty
    /// batch in both cases (the worker loop's stop signal), but drivers need
    /// to distinguish "run complete" from "run torn down" before reporting
    /// success — see [`FramedStreamWorker::disconnect_reason`].
    disconnect: Mutex<Option<String>>,
    /// The connection epoch: stamps every outgoing frame, and incoming
    /// command frames with any other epoch are fenced (dropped + counted).
    /// A worker spawned during recovery runs at the bumped run epoch.
    epoch: u32,
    /// Command frames dropped because their epoch did not match.
    fenced: AtomicU64,
    stats: Arc<CommStats>,
    _values: PhantomData<fn() -> V>,
}

impl<V: Wire + Send> FramedStreamWorker<V> {
    /// Wraps the worker's connection to the coordinator, at epoch 0.
    pub fn new<S: SplitStream>(stream: S, stats: Arc<CommStats>) -> io::Result<Self> {
        let (read_half, write_half) = stream.split()?;
        Ok(Self {
            reader: Mutex::new(BufReader::new(Box::new(read_half) as Box<dyn Read + Send>)),
            writer: Mutex::new(BufWriter::new(Box::new(write_half) as Box<dyn Write + Send>)),
            disconnect: Mutex::new(None),
            epoch: 0,
            fenced: AtomicU64::new(0),
            stats: stats.clone(),
            _values: PhantomData,
        })
    }

    /// Sets the connection epoch this endpoint speaks (outgoing frames are
    /// stamped with it; incoming frames at other epochs are fenced).
    pub fn with_epoch(mut self, epoch: u32) -> Self {
        self.epoch = epoch;
        self
    }

    /// How many incoming command frames were fenced for carrying a stale
    /// epoch.
    pub fn fenced_frames(&self) -> u64 {
        self.fenced.load(Ordering::SeqCst)
    }

    /// This endpoint's communication counters (frames and actual bytes, both
    /// directions).
    pub fn comm_stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.stats)
    }

    /// Why the command stream ended, if it ended *without* a Finish command:
    /// a connection error, an undecodable frame, or a bare close. `None`
    /// while the stream is healthy — i.e. after a clean Finish-terminated
    /// run. Drivers must check this before treating a finished worker loop
    /// as a successful run.
    pub fn disconnect_reason(&self) -> Option<String> {
        self.disconnect.lock().unwrap().clone()
    }

    /// Sends a raw out-of-band frame (any tag outside the BSP protocol) to
    /// the coordinator, stamped with this endpoint's epoch, for driver-level
    /// side protocols.
    pub fn send_oob<T: Wire>(&self, tag: u8, value: &T) -> io::Result<()> {
        let mut writer = self.writer.lock().unwrap();
        let written = wire::write_frame_io_epoch(&mut *writer, tag, self.epoch, value)?;
        writer.flush()?;
        self.stats.record(1, written as u64);
        Ok(())
    }
}

impl<V: Wire + Send> WorkerTransport<V> for FramedStreamWorker<V> {
    fn send(&self, report: WorkerReport<V>) {
        let mut frame = Vec::new();
        report.encode_frame_epoch(self.epoch, &mut frame);
        let mut writer = self.writer.lock().unwrap();
        if writer
            .write_all(&frame)
            .and_then(|_| writer.flush())
            .is_ok()
        {
            self.stats.record(1, frame.len() as u64);
        }
    }

    fn recv_blocking(&self) -> Vec<CoordCommand<V>> {
        let mut reader = self.reader.lock().unwrap();
        // The empty batch is the worker loop's stop signal; record *why* the
        // stream ended so the driver can tell a torn-down run from success.
        let reason = loop {
            match wire::read_frame_io_epoch(&mut *reader) {
                Ok(Some((tag, frame_epoch, body))) => {
                    self.stats.record(1, (wire::HEADER_LEN + body.len()) as u64);
                    // Epoch fence: a command stamped for another run epoch
                    // (e.g. written just before this worker's connection was
                    // replaced) must not be executed.
                    if frame_epoch != self.epoch {
                        self.fenced.fetch_add(1, Ordering::SeqCst);
                        eprintln!(
                            "worker: fenced stale command frame (tag {tag:#04x}, epoch \
                             {frame_epoch}, expected {})",
                            self.epoch
                        );
                        continue;
                    }
                    match CoordCommand::decode_body(tag, &body) {
                        Ok(command) => return vec![command],
                        Err(err) => break format!("undecodable command frame: {err}"),
                    }
                }
                Ok(None) => break "connection closed before Finish".to_string(),
                Err(err) => break format!("connection error: {err}"),
            }
        };
        eprintln!("worker: {reason}");
        *self.disconnect.lock().unwrap() = Some(reason);
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(superstep: usize, changes: Vec<(u32, f64)>) -> WorkerReport<f64> {
        WorkerReport::Done {
            superstep,
            changes,
            strays: vec![],
            checkpoint: None,
            eval_seconds: 0.0,
        }
    }

    #[test]
    fn typed_and_framed_channel_pairs_deliver_identically() {
        for kind in [TransportKind::InProcess, TransportKind::Framed] {
            let stats = Arc::new(CommStats::new());
            let command = CoordCommand::IncEval {
                superstep: 1,
                updates: vec![(0u32, 1.5f64), (3, 2.5)],
            };
            let sent_report = report(1, vec![(7, 0.5)]);
            let (got_commands, got_reports, bytes) = match kind {
                TransportKind::InProcess => {
                    let (coord, workers) = typed_channel_pair::<f64>(2, Arc::clone(&stats));
                    coord.send(1, command.clone());
                    let got = workers[1].drain();
                    workers[1].send(sent_report.clone());
                    (got, coord.recv_blocking(), stats.bytes())
                }
                TransportKind::Framed => {
                    let (coord, workers) = framed_channel_pair::<f64>(2, Arc::clone(&stats));
                    coord.send(1, command.clone());
                    let got = workers[1].drain();
                    workers[1].send(sent_report.clone());
                    (got, coord.recv_blocking(), stats.bytes())
                }
            };
            assert_eq!(got_commands, vec![command.clone()]);
            assert_eq!(got_reports, vec![(1usize, sent_report.clone())]);
            match kind {
                // Estimated: payload sizes only.
                TransportKind::InProcess => assert_eq!(
                    bytes,
                    (command.size_bytes() + sent_report.size_bytes()) as u64
                ),
                // Actual: payload + per-message wire overhead.
                TransportKind::Framed => assert_eq!(
                    bytes,
                    (command.size_bytes()
                        + CoordCommand::<f64>::WIRE_OVERHEAD
                        + sent_report.size_bytes()
                        + WorkerReport::<f64>::WIRE_OVERHEAD) as u64
                ),
            }
        }
    }

    #[test]
    fn a_lost_worker_fails_the_receive_instead_of_hanging() {
        // Two workers; one dies mid-run while the other stays connected.
        // recv_blocking must fail fast (empty batch → the engine's
        // WorkerPanic) rather than block forever on the survivor's channel.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dead = std::thread::spawn(move || {
            // Connects and hangs up without ever reporting.
            drop(std::net::TcpStream::connect(addr).unwrap());
        });
        let survivor_conn = std::net::TcpStream::connect(addr).unwrap();
        let survivor =
            FramedStreamWorker::<f64>::new(survivor_conn, Arc::new(CommStats::new())).unwrap();
        let mut streams = Vec::new();
        for _ in 0..2 {
            streams.push(listener.accept().unwrap().0);
        }
        let coord = FramedStreamCoord::<f64>::new(streams, Arc::new(CommStats::new())).unwrap();
        dead.join().unwrap();
        // Wait until the disconnect has been noticed (first call may still
        // deliver nothing but must not block forever).
        let got = coord.recv_blocking();
        assert!(got.is_empty(), "no worker reported anything: {got:?}");
        // Sticky: every later receive fails immediately too, and the reason
        // is typed.
        assert!(coord.recv_blocking().is_empty());
        assert!(matches!(
            coord.failure(),
            Some(TransportError::WorkerLost { worker: Some(_), reason }) if reason.contains("disconnected")
        ));
        drop(survivor);
    }

    #[test]
    fn a_silent_worker_times_out_with_a_typed_error() {
        // The "worker" connects but never speaks the protocol: without a
        // read timeout the coordinator would block forever. With one, the
        // receive must come back empty within the deadline and failure()
        // must carry the typed reason.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let silent = std::net::TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let timeout = Duration::from_millis(200);
        let coord = FramedStreamCoord::<f64>::new(vec![accepted], Arc::new(CommStats::new()))
            .unwrap()
            .with_read_timeout(Some(timeout));
        let started = Instant::now();
        let got = coord.recv_blocking();
        let elapsed = started.elapsed();
        assert!(got.is_empty());
        assert!(
            elapsed >= timeout && elapsed < timeout + Duration::from_secs(5),
            "timed out after {elapsed:?} with a {timeout:?} deadline"
        );
        assert!(matches!(
            coord.failure(),
            Some(TransportError::WorkerLost { worker: None, reason }) if reason.contains("read timeout")
        ));
        // Sticky: later receives fail fast, well under the deadline.
        let started = Instant::now();
        assert!(coord.recv_blocking().is_empty());
        assert!(started.elapsed() < timeout);
        drop(silent);
    }

    #[test]
    fn stale_epoch_frames_are_fenced_not_delivered() {
        // A worker still speaking the pre-recovery epoch sends a report
        // *after* the coordinator bumped the connection epoch via
        // replace_worker. The report must be dropped (fenced + counted),
        // never delivered to the BSP loop — this is the proof obligation
        // behind "stale frames from the pre-recovery epoch are provably
        // dropped".
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stale_conn = std::net::TcpStream::connect(addr).unwrap();
        let (stale_accepted, _) = listener.accept().unwrap();
        let coord = FramedStreamCoord::<f64>::new(vec![stale_accepted], Arc::new(CommStats::new()))
            .unwrap()
            .with_read_timeout(Some(Duration::from_millis(300)));

        // Recovery: replace worker 0 with a fresh connection at epoch 1.
        let fresh_conn = std::net::TcpStream::connect(addr).unwrap();
        let (fresh_accepted, _) = listener.accept().unwrap();
        coord.replace_worker(0, fresh_accepted, 1).unwrap();
        assert_eq!(coord.worker_epoch(0), 1);

        // The stale endpoint (still epoch 0) reports — into the fence.
        let stale = FramedStreamWorker::<f64>::new(stale_conn, Arc::new(CommStats::new())).unwrap();
        stale.send(report(3, vec![(2, 4.5)]));
        // The fresh endpoint (epoch 1) reports — delivered.
        let fresh = FramedStreamWorker::<f64>::new(fresh_conn, Arc::new(CommStats::new()))
            .unwrap()
            .with_epoch(1);
        fresh.send(report(3, vec![(9, 1.25)]));

        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.is_empty() && Instant::now() < deadline {
            got.extend(coord.recv_blocking());
        }
        assert_eq!(got, vec![(0usize, report(3, vec![(9, 1.25)]))]);
        // Wait for the stale frame to have hit the fence (reader threads run
        // concurrently; the frame may arrive after the fresh one).
        let deadline = Instant::now() + Duration::from_secs(10);
        while coord.fenced_frames() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(coord.fenced_frames(), 1, "stale report fenced exactly once");
        assert!(coord.drain().is_empty(), "fenced frame never delivered");
    }

    #[test]
    fn workers_fence_commands_from_other_epochs() {
        // The mirror direction: a worker running at epoch 1 must drop a
        // command stamped with epoch 0 and keep listening.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let conn = std::net::TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let worker = FramedStreamWorker::<f64>::new(conn, Arc::new(CommStats::new()))
            .unwrap()
            .with_epoch(1);
        let mut writer = BufWriter::new(accepted);
        let stale = CoordCommand::<f64>::Finish;
        let current = CoordCommand::<f64>::Init {
            border_slots: vec![4],
        };
        let mut bytes = Vec::new();
        stale.encode_frame_epoch(0, &mut bytes); // pre-recovery epoch
        current.encode_frame_epoch(1, &mut bytes);
        writer.write_all(&bytes).unwrap();
        writer.flush().unwrap();
        // One receive call: the stale Finish is skipped, the Init delivered.
        assert_eq!(worker.recv_blocking(), vec![current]);
        assert_eq!(worker.fenced_frames(), 1);
    }

    #[test]
    fn framed_streams_round_trip_over_tcp() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let stream = std::net::TcpStream::connect(addr).unwrap();
            let worker =
                FramedStreamWorker::<f64>::new(stream, Arc::new(CommStats::new())).unwrap();
            let commands = worker.recv_blocking();
            assert_eq!(commands.len(), 1);
            worker.send(report(0, vec![(1, 9.0)]));
            worker.send_oob(0x77, &String::from("digest")).unwrap();
            // The coordinator releases the worker with Finish; the worker
            // exits and its socket close unblocks the reader thread.
            assert_eq!(worker.recv_blocking(), vec![CoordCommand::Finish]);
        });
        let (accepted, _) = listener.accept().unwrap();
        let stats = Arc::new(CommStats::new());
        let coord = FramedStreamCoord::<f64>::new(vec![accepted], Arc::clone(&stats)).unwrap();
        coord.send(
            0,
            CoordCommand::Init {
                border_slots: vec![0, 1],
            },
        );
        let reports = coord.recv_blocking();
        assert_eq!(reports, vec![(0usize, report(0, vec![(1, 9.0)]))]);
        let (from, tag, body) = coord.recv_oob_blocking().unwrap();
        assert_eq!((from, tag), (0, 0x77));
        let mut reader = wire::WireReader::new(&body);
        assert_eq!(String::decode(&mut reader).unwrap(), "digest");
        // Both directions were recorded with their actual frame lengths.
        assert_eq!(stats.messages(), 3);
        coord.send(0, CoordCommand::Finish);
        client.join().unwrap();
    }
}
