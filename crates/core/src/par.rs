//! Deterministic intra-worker parallel primitives.
//!
//! GRAPE parallelizes sequential algorithms *across* fragments; this module
//! parallelizes the hot loops *inside* one fragment without giving up the
//! engine's determinism contract. The design follows the frontier-primitive
//! shape of Ligra/GBBS (edgeMap/vertexMap over dense or sparse frontiers):
//!
//! * a small scoped [`ThreadPool`] built on `std::thread` + `std::sync::mpsc`
//!   only — no external dependencies;
//! * work is split into **fixed-size chunks** ([`CHUNK`] indices each, a
//!   constant independent of the thread count);
//! * each chunk writes into its own output slot, and the caller applies the
//!   slots **in chunk-index order**.
//!
//! Only the chunk→thread assignment varies between runs and thread counts,
//! and no observable state depends on it, so results are **bit-identical
//! across `threads_per_worker` ∈ {1, 2, 4, 8, …}** — the same guarantee the
//! Inline/Threads execution modes already pin across worker counts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};

/// Indices per chunk. A fixed constant — deliberately *not* derived from the
/// thread count — so the chunk boundaries (and therefore the order of every
/// reduction) are identical no matter how many threads execute them.
pub const CHUNK: usize = 1024;

/// How many threads each worker's pool should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadCount {
    /// Divide the machine's cores evenly among the workers (at least 1).
    /// The `GRAPE_THREADS` environment variable, when set to a positive
    /// integer, overrides the core count detection — but only for `Auto`;
    /// an explicit [`ThreadCount::Fixed`] always wins, so tests that pin a
    /// thread count stay pinned under the CI thread matrix.
    #[default]
    Auto,
    /// Exactly this many threads per worker (clamped to at least 1).
    Fixed(u32),
}

impl ThreadCount {
    /// Resolves to a concrete thread count for one worker out of `workers`,
    /// where `inline` says the workers run serialized on the calling thread
    /// (and may therefore share the whole machine instead of splitting it).
    pub fn resolve(self, workers: usize, inline: bool) -> usize {
        match self {
            ThreadCount::Fixed(t) => (t as usize).max(1),
            ThreadCount::Auto => {
                if let Some(t) = std::env::var("GRAPE_THREADS")
                    .ok()
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .filter(|&t| t > 0)
                {
                    return t;
                }
                let cores = std::thread::available_parallelism()
                    .map(|c| c.get())
                    .unwrap_or(1);
                if inline {
                    cores
                } else {
                    (cores / workers.max(1)).max(1)
                }
            }
        }
    }
}

/// One parallel invocation: a lifetime-erased task plus the claim/completion
/// bookkeeping shared between the caller and the pool's worker threads.
struct Job {
    /// The chunk body. Lifetime-erased raw pointer: [`ThreadPool::run`]
    /// guarantees every dereference happens before it returns (it waits for
    /// `done == chunks`, and each claimed chunk finishes its call before
    /// counting itself done), so the pointee outlives all uses.
    task: *const (dyn Fn(usize) + Sync),
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// Total chunks; claims at or past this are no-ops.
    chunks: usize,
    /// Completed chunk count, guarded for the condvar handshake.
    done: Mutex<usize>,
    cv: Condvar,
    /// Set when any chunk panics; remaining chunks are skipped (but still
    /// counted) and the caller re-panics after the join.
    panicked: AtomicBool,
}

unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs chunks until none remain. Called by pool workers and
    /// by the submitting thread itself (the caller participates).
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.chunks {
                return;
            }
            if !self.panicked.load(Ordering::Acquire) {
                let task = unsafe { &*self.task };
                if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
                    self.panicked.store(true, Ordering::Release);
                }
            }
            let mut done = self.done.lock().unwrap();
            *done += 1;
            if *done == self.chunks {
                self.cv.notify_all();
            }
        }
    }
}

/// A persistent pool of `threads - 1` helper threads; the submitting thread
/// is the remaining participant. With one thread (or [`ThreadPool::inline`])
/// everything runs on the caller with no synchronization at all.
pub struct ThreadPool {
    senders: Vec<mpsc::Sender<Arc<Job>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// A pool that runs jobs on `threads` threads total (the caller plus
    /// `threads - 1` spawned helpers). `threads` is clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads - 1);
        let mut handles = Vec::with_capacity(threads - 1);
        for i in 1..threads {
            let (tx, rx) = mpsc::channel::<Arc<Job>>();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("grape-par-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job.work();
                        }
                    })
                    .expect("spawn pool thread"),
            );
        }
        Self {
            senders,
            handles,
            threads,
        }
    }

    /// A single-threaded pool: every job runs inline on the caller.
    pub fn inline() -> Self {
        Self::new(1)
    }

    /// The total thread count (callers use this to pick sequential fast
    /// paths when it is 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(chunk_index)` for every index in `0..chunks`, distributing
    /// chunks across the pool. Returns once every chunk has completed.
    /// Panics (after all chunks have settled) if any chunk panicked.
    pub fn run(&self, chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if self.senders.is_empty() || chunks == 1 {
            for i in 0..chunks {
                f(i);
            }
            return;
        }
        let job = Arc::new(Job {
            // Erase the borrow's lifetime; see the field docs for why this
            // cannot dangle.
            task: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync + '_),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(f as *const _)
            },
            next: AtomicUsize::new(0),
            chunks,
            done: Mutex::new(0),
            cv: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        for sender in &self.senders {
            // A send can only fail if the worker thread died, which only
            // happens on pool drop; the remaining participants still finish
            // every chunk.
            let _ = sender.send(Arc::clone(&job));
        }
        job.work();
        let mut done = job.done.lock().unwrap();
        while *done < chunks {
            done = job.cv.wait(done).unwrap();
        }
        drop(done);
        if job.panicked.load(Ordering::Acquire) {
            panic!("a parallel chunk panicked");
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A raw pointer that may cross threads. Used for disjoint per-chunk writes:
/// each chunk index is claimed exactly once, so the regions derived from it
/// never alias.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor rather than direct field use: closures must capture the
    /// whole wrapper (which is Send + Sync), not disjointly capture the raw
    /// pointer field (which is neither).
    fn get(self) -> *mut T {
        self.0
    }
}

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// The number of [`CHUNK`]-sized chunks covering `0..n`.
pub fn num_chunks(n: usize) -> usize {
    n.div_ceil(CHUNK)
}

/// Maps `0..n` in parallel, one output buffer per chunk.
///
/// `f(range, out)` fills `out` with whatever the chunk produces for the
/// index range; the returned `Vec` holds the buffers **in chunk order**, so
/// the caller's sequential drain over it is a fixed-order reduction —
/// independent of which thread ran which chunk. This is the sparse
/// `edge_map`/`vertex_map` workhorse: `n` is a frontier length and `range`
/// indexes into the frontier's index list.
pub fn map_chunks<R: Send>(
    pool: &ThreadPool,
    n: usize,
    f: impl Fn(std::ops::Range<usize>, &mut Vec<R>) + Sync,
) -> Vec<Vec<R>> {
    let chunks = num_chunks(n);
    let mut out: Vec<Vec<R>> = (0..chunks).map(|_| Vec::new()).collect();
    let slots = SendPtr(out.as_mut_ptr());
    // `move` so the closure captures the `SendPtr` wrapper (Copy) rather
    // than disjointly capturing the raw pointer field, which is not Sync.
    let body = move |ci: usize| {
        let start = ci * CHUNK;
        let end = (start + CHUNK).min(n);
        // Chunk `ci` is claimed exactly once, so this &mut is exclusive.
        let slot = unsafe { &mut *slots.get().add(ci) };
        f(start..end, slot);
    };
    pool.run(chunks, &body);
    out
}

/// Runs `f(start, slice)` over disjoint [`CHUNK`]-sized windows of `data` in
/// parallel — the dense `vertex_map`: each chunk owns its window exclusively
/// and may mutate it freely. `start` is the window's offset into `data`.
pub fn for_each_slice_chunk<T: Send>(
    pool: &ThreadPool,
    data: &mut [T],
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let n = data.len();
    let base = SendPtr(data.as_mut_ptr());
    let body = move |ci: usize| {
        let start = ci * CHUNK;
        let end = (start + CHUNK).min(n);
        // Windows from distinct chunk indices are disjoint.
        let window = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(start, window);
    };
    pool.run(num_chunks(n), &body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunks_is_bit_identical_across_pool_sizes() {
        let n = 10 * CHUNK + 37;
        let reference: Vec<u64> = {
            let pool = ThreadPool::inline();
            map_chunks(&pool, n, |range, out: &mut Vec<u64>| {
                for i in range {
                    out.push((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                }
            })
            .into_iter()
            .flatten()
            .collect()
        };
        for threads in [2, 4, 8] {
            let pool = ThreadPool::new(threads);
            for _ in 0..3 {
                let got: Vec<u64> = map_chunks(&pool, n, |range, out: &mut Vec<u64>| {
                    for i in range {
                        out.push((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    }
                })
                .into_iter()
                .flatten()
                .collect();
                assert_eq!(got, reference, "threads={threads}");
            }
        }
    }

    #[test]
    fn slice_chunks_cover_every_index_exactly_once() {
        for threads in [1, 3, 8] {
            let pool = ThreadPool::new(threads);
            let mut data = vec![0u32; 5 * CHUNK + 11];
            for_each_slice_chunk(&pool, &mut data, |start, window| {
                for (off, slot) in window.iter_mut().enumerate() {
                    *slot += (start + off) as u32 + 1;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let pool = ThreadPool::new(4);
        let out = map_chunks(&pool, 0, |_range, _out: &mut Vec<u8>| unreachable!());
        assert!(out.is_empty());
        let out = map_chunks(&pool, 3, |range, out: &mut Vec<usize>| out.extend(range));
        assert_eq!(out.into_iter().flatten().collect::<Vec<_>>(), vec![0, 1, 2]);
        let mut empty: Vec<u8> = Vec::new();
        for_each_slice_chunk(&pool, &mut empty, |_, _| unreachable!());
    }

    #[test]
    fn a_panicking_chunk_propagates_and_the_pool_survives() {
        let pool = ThreadPool::new(4);
        let n = 6 * CHUNK;
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(num_chunks(n), &|ci| {
                if ci == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        let hits: usize = map_chunks(&pool, n, |range, out: &mut Vec<usize>| {
            out.push(range.len());
        })
        .into_iter()
        .flatten()
        .sum();
        assert_eq!(hits, n);
    }

    #[test]
    fn thread_count_resolution() {
        assert_eq!(ThreadCount::Fixed(4).resolve(2, false), 4);
        assert_eq!(ThreadCount::Fixed(0).resolve(2, false), 1);
        // Auto never resolves below 1 regardless of the worker count.
        assert!(ThreadCount::Auto.resolve(64, false) >= 1);
        assert!(ThreadCount::Auto.resolve(1, true) >= 1);
        assert_eq!(ThreadCount::default(), ThreadCount::Auto);
    }
}
