//! Fragment shipping: the wire codec for placing a partitioned fragment on
//! a remote worker.
//!
//! The coordinator cuts the global graph once ([`build_fragments`]) and
//! ships each worker its [`Fragment`] as one [`TAG_FRAGMENT`] frame during
//! the job handshake, so remote workers no longer regenerate the seeded
//! graph locally — and, crucially, a *lost* fragment can be re-placed on a
//! replacement worker during recovery.
//!
//! The payload is the fragment's flat [`FragmentParts`] view (sorted
//! vectors only, canonical order), encoded field by field with the same
//! [`Wire`] primitives as every other frame. Rebuilding goes through
//! [`Fragment::from_parts`], which shares its assembly code with
//! [`build_fragments`] — a shipped fragment is bit-identical to a locally
//! cut one.
//!
//! [`build_fragments`]: grape_partition::build_fragments

use grape_comm::wire::{self, Wire, WireError, WireReader};
use grape_graph::VertexId;
use grape_partition::{Fragment, FragmentParts};

/// Frame tag of a shipped fragment.
pub const TAG_FRAGMENT: u8 = 0x22;

/// Appends `fragment` as one complete epoch-0 [`TAG_FRAGMENT`] frame to
/// `out`.
pub fn encode_fragment<V, E>(fragment: &Fragment<V, E>, out: &mut Vec<u8>)
where
    V: Wire + Clone,
    E: Wire + Clone,
{
    encode_fragment_epoch(fragment, 0, out)
}

/// Appends `fragment` as one [`TAG_FRAGMENT`] frame stamped with `epoch` —
/// the form recovery uses when re-shipping a lost fragment to a replacement
/// worker under a bumped run epoch.
pub fn encode_fragment_epoch<V, E>(fragment: &Fragment<V, E>, epoch: u32, out: &mut Vec<u8>)
where
    V: Wire + Clone,
    E: Wire + Clone,
{
    encode_fragment_parts(&fragment.to_parts(), epoch, out)
}

/// Appends already-flattened parts as one [`TAG_FRAGMENT`] frame stamped
/// with `epoch` to `out`.
pub fn encode_fragment_parts<V: Wire, E: Wire>(
    parts: &FragmentParts<V, E>,
    epoch: u32,
    out: &mut Vec<u8>,
) {
    wire::encode_frame_with_epoch(TAG_FRAGMENT, epoch, out, |out| {
        parts.id.encode(out);
        parts.num_fragments.encode(out);
        parts.vertices.encode(out);
        parts.edges.encode(out);
        parts.inner.encode(out);
        parts.outer.encode(out);
        parts.outer_owner.encode(out);
        parts.mirrored_at.encode(out);
    })
}

/// Decodes a [`TAG_FRAGMENT`] payload (the body of an already-unframed
/// frame) back into [`FragmentParts`]. The payload must decode exactly —
/// trailing bytes are a [`WireError::TrailingBytes`].
pub fn decode_fragment_parts<V: Wire, E: Wire>(
    tag: u8,
    body: &[u8],
) -> Result<FragmentParts<V, E>, WireError> {
    if tag != TAG_FRAGMENT {
        return Err(WireError::BadTag { found: tag });
    }
    let mut reader = WireReader::new(body);
    let parts = FragmentParts {
        id: usize::decode(&mut reader)?,
        num_fragments: usize::decode(&mut reader)?,
        vertices: Vec::<(VertexId, V)>::decode(&mut reader)?,
        edges: Vec::<(VertexId, VertexId, E)>::decode(&mut reader)?,
        inner: Vec::<VertexId>::decode(&mut reader)?,
        outer: Vec::<VertexId>::decode(&mut reader)?,
        outer_owner: Vec::<(VertexId, u32)>::decode(&mut reader)?,
        mirrored_at: Vec::<(VertexId, Vec<u32>)>::decode(&mut reader)?,
    };
    reader.finish()?;
    Ok(parts)
}

/// Decodes a [`TAG_FRAGMENT`] payload and rebuilds the full [`Fragment`].
pub fn decode_fragment<V, E>(tag: u8, body: &[u8]) -> Result<Fragment<V, E>, WireError>
where
    V: Wire + Clone + Default,
    E: Wire + Clone,
{
    let parts = decode_fragment_parts::<V, E>(tag, body)?;
    Fragment::from_parts(parts)
        .map_err(|_| WireError::Malformed("shipped fragment references unknown vertices"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::generators::erdos_renyi;
    use grape_partition::{build_fragments, HashPartitioner, Partitioner};

    #[test]
    fn fragments_roundtrip_through_the_frame_codec() {
        let g = erdos_renyi(160, 0.04, 11).unwrap();
        let a = HashPartitioner.partition(&g, 3);
        for f in build_fragments(&g, &a) {
            let mut frame = Vec::new();
            encode_fragment(&f, &mut frame);
            let (tag, body, consumed) = wire::decode_frame(&frame).unwrap();
            assert_eq!(consumed, frame.len());
            let back: Fragment<(), f64> = decode_fragment(tag, body).unwrap();
            assert_eq!(back.to_parts(), f.to_parts(), "bit-identical rebuild");
            assert_eq!(back.border_vertices(), f.border_vertices());
            assert_eq!(
                back.graph.edges().collect::<Vec<_>>(),
                f.graph.edges().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn labeled_payloads_survive_shipping() {
        // String payloads on vertices and edges must ship too, not just the
        // numeric weights of the traversal classes.
        let mut b = grape_graph::GraphBuilder::<String, String>::new();
        for v in 0..20u64 {
            b.add_vertex(v, format!("person-{v}"));
        }
        for v in 0..19u64 {
            b.add_edge(v, v + 1, "follows".to_string());
            b.add_edge(v + 1, v % 3, "recommends".to_string());
        }
        let g = b.build().unwrap();
        let a = HashPartitioner.partition(&g, 2);
        for f in build_fragments(&g, &a) {
            let mut frame = Vec::new();
            encode_fragment(&f, &mut frame);
            let (tag, body, _) = wire::decode_frame(&frame).unwrap();
            let back: Fragment<String, String> = decode_fragment(tag, body).unwrap();
            assert_eq!(back.to_parts(), f.to_parts());
        }
    }

    #[test]
    fn wrong_tags_and_truncation_are_typed_errors() {
        let g = erdos_renyi(40, 0.1, 3).unwrap();
        let a = HashPartitioner.partition(&g, 2);
        let frags = build_fragments(&g, &a);
        let mut frame = Vec::new();
        encode_fragment(&frags[0], &mut frame);
        let (tag, body, _) = wire::decode_frame(&frame).unwrap();
        assert!(matches!(
            decode_fragment_parts::<(), f64>(0x01, body),
            Err(WireError::BadTag { found: 0x01 })
        ));
        assert!(decode_fragment_parts::<(), f64>(tag, &body[..body.len() - 1]).is_err());
        // Trailing garbage inside the payload is rejected.
        let mut inflated = body.to_vec();
        inflated.push(0xee);
        assert!(matches!(
            decode_fragment_parts::<(), f64>(tag, &inflated),
            Err(WireError::TrailingBytes { count: 1 })
        ));
    }
}
