//! The PIE program trait.

use crate::context::PieContext;
use grape_comm::{MessageSize, Wire};
use grape_graph::delta::MutationProfile;
use grape_graph::VertexId;
use grape_partition::Fragment;
use std::fmt::Debug;

/// A PIE program: three sequential functions (PEval, IncEval, Assemble) plus
/// the declarations that the paper adds to them — the update-parameter value
/// type, its aggregate function and (optionally) the partial order that makes
/// the computation monotonic.
///
/// Implementations plug *existing sequential algorithms* in: `peval` is the
/// textbook algorithm run on a fragment, `inceval` its incremental variant,
/// `assemble` usually a simple union/merge.
pub trait PieProgram: Send + Sync {
    /// The query type (e.g. the source vertex for SSSP, a pattern graph for
    /// SubIso).
    type Query: Clone + Send + Sync;
    /// Vertex payload of the graphs this program runs on.
    type VertexData: Clone + Default + Send + Sync;
    /// Edge payload of the graphs this program runs on.
    type EdgeData: Clone + Send + Sync;
    /// Domain of the update parameters attached to border vertices. The
    /// [`Wire`] bound gives every value a canonical frame encoding, so any
    /// program can run over the framed / multi-process transports unchanged.
    type Value: Clone + PartialEq + Debug + Send + MessageSize + Wire + 'static;
    /// Per-fragment partial result maintained across supersteps.
    type Partial: Send;
    /// Final query answer produced by [`PieProgram::assemble`].
    type Output;

    /// Partial evaluation: compute `Q(F_i)` on one fragment and declare the
    /// initial values of the update parameters through `ctx`.
    fn peval(
        &self,
        query: &Self::Query,
        fragment: &Fragment<Self::VertexData, Self::EdgeData>,
        ctx: &mut PieContext<Self::Value>,
    ) -> Self::Partial;

    /// Incremental evaluation: apply the message `M_i` (aggregated border
    /// values) to the partial result, updating any border values that change
    /// through `ctx`.
    fn inceval(
        &self,
        query: &Self::Query,
        fragment: &Fragment<Self::VertexData, Self::EdgeData>,
        partial: &mut Self::Partial,
        messages: &[(VertexId, Self::Value)],
        ctx: &mut PieContext<Self::Value>,
    );

    /// Combines the partial results of all fragments into `Q(G)`.
    fn assemble(&self, partials: Vec<Self::Partial>) -> Self::Output;

    /// Conflict resolution: when several workers propose values for the same
    /// border vertex, the coordinator folds them with this function (e.g.
    /// `min` for shortest distances).
    fn aggregate(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// The partial order underpinning the Assurance Theorem: returns
    /// `Some(true)` if `new` is at or below `old` in the order (i.e. the
    /// update is monotone), `Some(false)` if the order is violated, and
    /// `None` if the program does not declare an order. The engine only
    /// consults this when [`crate::EngineConfig::check_monotonicity`] is set.
    fn monotonic(&self, _old: &Self::Value, _new: &Self::Value) -> Option<bool> {
        None
    }

    /// Serializes a partial result for checkpointing. Programs that support
    /// worker-loss recovery return `Some(bytes)` such that
    /// [`PieProgram::restore_partial`] rebuilds a bit-identical partial on a
    /// replacement worker; the default `None` marks the program as
    /// non-recoverable (the engine then reports a typed error instead of
    /// recovering).
    fn snapshot_partial(&self, _partial: &Self::Partial) -> Option<Vec<u8>> {
        None
    }

    /// Rebuilds a partial result from [`PieProgram::snapshot_partial`] bytes.
    /// Must be the exact inverse: `restore(snapshot(p))` behaves identically
    /// to `p` for all subsequent IncEval calls. The default `None` matches
    /// the default non-recoverable `snapshot_partial`.
    fn restore_partial(&self, _bytes: &[u8]) -> Option<Self::Partial> {
        None
    }

    /// Whether a converged partial of a *previous* run may seed a warm
    /// (incremental) run after a mutation batch with the given profile.
    /// Programs opt in per profile — e.g. SSSP and CC only for insert-only
    /// batches (their orders only tighten under insertions), graph simulation
    /// only for delete-only batches. The default `false` makes every update
    /// fall back to a cold PEval, which is always correct.
    fn incremental_eligible(&self, _profile: &MutationProfile) -> bool {
        false
    }

    /// Warm-start replacement for [`PieProgram::peval`]: rebuild a partial
    /// from the `snapshot` bytes of the previous run's converged partial
    /// (same fragment, pre-mutation), re-evaluate only from the
    /// update-induced `dirty` vertices, and declare border values through
    /// `ctx` exactly as PEval would. Returning `None` (the default) tells the
    /// engine to run the cold `peval` for this fragment instead.
    ///
    /// Contract: for profiles accepted by
    /// [`PieProgram::incremental_eligible`], the fixpoint reached from this
    /// seed must be bit-identical to a cold run on the mutated graph.
    fn seed_partial(
        &self,
        _query: &Self::Query,
        _fragment: &Fragment<Self::VertexData, Self::EdgeData>,
        _snapshot: &[u8],
        _dirty: &[VertexId],
        _profile: &MutationProfile,
        _ctx: &mut PieContext<Self::Value>,
    ) -> Option<Self::Partial> {
        None
    }

    /// Human-readable name used in statistics and benchmark tables.
    fn name(&self) -> &str {
        "pie-program"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_partition::{build_fragments, HashPartitioner, Partitioner};

    /// A minimal PIE program used to exercise the trait: propagate the
    /// minimum vertex id over the whole graph (a degenerate form of CC where
    /// the answer is a single number).
    struct MinId;

    impl PieProgram for MinId {
        type Query = ();
        type VertexData = ();
        type EdgeData = f64;
        type Value = u64;
        type Partial = u64;
        type Output = u64;

        fn peval(&self, _q: &(), fragment: &Fragment<(), f64>, ctx: &mut PieContext<u64>) -> u64 {
            let local_min = fragment
                .inner_vertices()
                .iter()
                .copied()
                .min()
                .unwrap_or(u64::MAX);
            for &b in fragment.border_vertices() {
                ctx.update(b, local_min);
            }
            local_min
        }

        fn inceval(
            &self,
            _q: &(),
            fragment: &Fragment<(), f64>,
            partial: &mut u64,
            messages: &[(VertexId, u64)],
            ctx: &mut PieContext<u64>,
        ) {
            let incoming = messages.iter().map(|(_, v)| *v).min().unwrap_or(u64::MAX);
            if incoming < *partial {
                *partial = incoming;
                for &b in fragment.border_vertices() {
                    ctx.update(b, *partial);
                }
            }
        }

        fn assemble(&self, partials: Vec<u64>) -> u64 {
            partials.into_iter().min().unwrap_or(u64::MAX)
        }

        fn aggregate(&self, a: &u64, b: &u64) -> u64 {
            *a.min(b)
        }

        fn monotonic(&self, old: &u64, new: &u64) -> Option<bool> {
            Some(new <= old)
        }

        fn name(&self) -> &str {
            "min-id"
        }
    }

    #[test]
    fn trait_methods_have_sane_defaults() {
        let p = MinId;
        assert_eq!(p.aggregate(&3, &5), 3);
        assert_eq!(p.monotonic(&5, &3), Some(true));
        assert_eq!(p.monotonic(&3, &5), Some(false));
        assert_eq!(p.name(), "min-id");
    }

    #[test]
    fn peval_and_inceval_compose_by_hand() {
        // Drive the program manually on two fragments of a 4-cycle to check
        // the trait contract independent of the engine.
        let mut b = grape_graph::GraphBuilder::<(), f64>::new();
        for v in 0..4u64 {
            b.add_edge(v, (v + 1) % 4, 1.0);
        }
        let g = b.build().unwrap();
        let a = HashPartitioner.partition(&g, 2);
        let frags = build_fragments(&g, &a);
        let p = MinId;
        let mut ctxs: Vec<PieContext<u64>> = frags.iter().map(|_| PieContext::new()).collect();
        let mut partials: Vec<u64> = frags
            .iter()
            .zip(ctxs.iter_mut())
            .map(|(f, c)| p.peval(&(), f, c))
            .collect();
        // Exchange: feed every fragment the global minimum proposal.
        let global_min = *partials.iter().min().unwrap();
        for ((f, c), partial) in frags.iter().zip(ctxs.iter_mut()).zip(partials.iter_mut()) {
            let msgs: Vec<(VertexId, u64)> = f
                .border_vertices()
                .iter()
                .map(|&v| (v, global_min))
                .collect();
            p.inceval(&(), f, partial, &msgs, c);
        }
        assert_eq!(p.assemble(partials), 0);
    }
}
