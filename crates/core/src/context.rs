//! The per-worker context PIE programs write update parameters into.

use crate::par::ThreadPool;
use grape_graph::{DenseBitset, VertexId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The update-parameter table of one fragment.
///
/// PEval *declares* update parameters by calling [`PieContext::update`] for
/// border vertices; IncEval calls the same method whenever a border value
/// improves. The engine harvests the vertices whose value actually changed
/// after each call and turns them into messages; values persist across
/// supersteps so programs can consult the current value with
/// [`PieContext::get`].
///
/// Inside the engine the context is configured with the fragment's border
/// list and the coordinator-assigned slot ids
/// ([`PieContext::configure_borders`]). Border updates then live in flat
/// arrays indexed by the border position (resolved by binary search over the
/// sorted border list — no hashing), dirtiness is a [`DenseBitset`] plus an
/// insertion-ordered index list, and [`PieContext::drain_dirty_into`] drains
/// in O(changed) instead of O(border). Updates to vertices outside the
/// border (possible only in buggy or diagnostic programs) fall back to a
/// `HashMap` side table and are reported as *strays*. An unconfigured
/// context — the state of a standalone driver or test — treats every vertex
/// through that side table, preserving the original behavior.
#[derive(Debug, Clone)]
pub struct PieContext<V> {
    /// Sorted global ids of the fragment's border vertices (empty until
    /// [`PieContext::configure_borders`]).
    border_ids: Vec<VertexId>,
    /// Coordinator-assigned slot of each border vertex, aligned with
    /// `border_ids`.
    border_slots: Vec<u32>,
    /// Current value of each border vertex (`None` = not declared yet),
    /// aligned with `border_ids`.
    border_values: Vec<Option<V>>,
    /// Which border positions changed since the last drain.
    border_dirty: DenseBitset,
    /// The dirty border positions in first-touch order, so draining is
    /// O(changed); the bitset deduplicates and survives `absorb`.
    dirty_list: Vec<u32>,
    /// Values of non-border vertices (strays) — the legacy path.
    values: HashMap<VertexId, V>,
    /// Dirty non-border vertices.
    dirty: HashSet<VertexId>,
    /// Cumulative number of `update` calls that changed a value (used by the
    /// boundedness experiment to measure |ΔO| on the border).
    changed_updates: u64,
    /// The worker's intra-fragment thread pool (inline/single-threaded by
    /// default); PIE programs hand it to the `grape_core::par` primitives.
    pool: Arc<ThreadPool>,
}

impl<V: Clone + PartialEq> Default for PieContext<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone + PartialEq> PieContext<V> {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self {
            border_ids: Vec::new(),
            border_slots: Vec::new(),
            border_values: Vec::new(),
            border_dirty: DenseBitset::default(),
            dirty_list: Vec::new(),
            values: HashMap::new(),
            dirty: HashSet::new(),
            changed_updates: 0,
            pool: Arc::new(ThreadPool::inline()),
        }
    }

    /// Installs the worker's intra-fragment thread pool. Called by the engine
    /// before PEval; standalone drivers keep the default inline pool.
    pub fn set_pool(&mut self, pool: Arc<ThreadPool>) {
        self.pool = pool;
    }

    /// The worker's intra-fragment thread pool, for the `grape_core::par`
    /// primitives. Single-threaded (inline) unless the engine installed a
    /// larger one via `threads_per_worker`.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Installs the fragment's border list and its coordinator-assigned slot
    /// ids (the run-start handshake). `ids` must be sorted ascending —
    /// exactly what `Fragment::border_vertices()` provides — and `slots`
    /// aligned with it. Called once per run by the engine before PEval.
    pub fn configure_borders(&mut self, ids: &[VertexId], slots: &[u32]) {
        debug_assert_eq!(ids.len(), slots.len());
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "border ids sorted");
        self.border_ids = ids.to_vec();
        self.border_slots = slots.to_vec();
        self.border_values = vec![None; ids.len()];
        self.border_dirty = DenseBitset::new(ids.len());
        self.dirty_list.clear();
    }

    /// The border position of `vertex`, if it is a configured border vertex.
    #[inline]
    fn border_position(&self, vertex: VertexId) -> Option<u32> {
        self.border_ids
            .binary_search(&vertex)
            .ok()
            .map(|i| i as u32)
    }

    /// Sets the update parameter of `vertex` to `value`. The vertex is marked
    /// dirty (and the value shipped at the end of the superstep) only if the
    /// value differs from the stored one.
    ///
    /// `vertex` should be one of this fragment's border vertices — those are
    /// the update parameters of the PIE model, and the only values the
    /// coordinator can route. Updates to any other vertex are kept locally,
    /// reported as *strays* for the monotonicity diagnostic, and never
    /// delivered to another fragment.
    pub fn update(&mut self, vertex: VertexId, value: V) {
        if let Some(pos) = self.border_position(vertex) {
            let stored = &mut self.border_values[pos as usize];
            if stored.as_ref() != Some(&value) {
                *stored = Some(value);
                if !self.border_dirty.contains(pos) {
                    self.border_dirty.set(pos);
                    self.dirty_list.push(pos);
                }
                self.changed_updates += 1;
            }
            return;
        }
        match self.values.get(&vertex) {
            Some(existing) if *existing == value => {}
            _ => {
                self.values.insert(vertex, value);
                self.dirty.insert(vertex);
                self.changed_updates += 1;
            }
        }
    }

    /// Sets the update parameter of the border vertex at position `pos` in
    /// the configured border list (the index into
    /// `Fragment::border_vertices()` / `border_dense_indices()`). A direct
    /// indexed compare-and-set — no search of any kind — so per-superstep
    /// border publication loops cost O(1) per vertex. Like
    /// [`PieContext::update`], the vertex is marked dirty only if the value
    /// differs from the stored one.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range of the configured border list (the
    /// engine always configures the context before PEval; standalone drivers
    /// must call [`PieContext::configure_borders`] first).
    #[inline]
    pub fn update_at(&mut self, pos: u32, value: V) {
        assert!(
            (pos as usize) < self.border_values.len(),
            "PieContext::update_at({pos}) outside the configured border list \
             ({} entries); standalone drivers must call configure_borders \
             with the fragment's border vertices before PEval",
            self.border_values.len()
        );
        let stored = &mut self.border_values[pos as usize];
        if stored.as_ref() != Some(&value) {
            *stored = Some(value);
            if !self.border_dirty.contains(pos) {
                self.border_dirty.set(pos);
                self.dirty_list.push(pos);
            }
            self.changed_updates += 1;
        }
    }

    /// Current value of the update parameter of `vertex`, if declared.
    pub fn get(&self, vertex: VertexId) -> Option<&V> {
        if let Some(pos) = self.border_position(vertex) {
            return self.border_values[pos as usize].as_ref();
        }
        self.values.get(&vertex)
    }

    /// Current value of the border vertex at position `pos` in the configured
    /// border list, if declared — the search-free sibling of
    /// [`PieContext::get`] for read-modify-write publication loops that
    /// already walk the border by position.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range of the configured border list, like
    /// [`PieContext::update_at`].
    #[inline]
    pub fn get_at(&self, pos: u32) -> Option<&V> {
        self.border_values[pos as usize].as_ref()
    }

    /// Number of declared update parameters.
    pub fn len(&self) -> usize {
        self.values.len() + self.border_values.iter().filter(|v| v.is_some()).count()
    }

    /// Whether no update parameter has been declared yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of `update` calls that actually changed a value so far.
    pub fn changed_updates(&self) -> u64 {
        self.changed_updates
    }

    /// Drains the set of vertices whose value changed since the last call and
    /// returns them with their current values, sorted by vertex id. The
    /// global-id view used by standalone drivers and tests; the engine uses
    /// [`PieContext::drain_dirty_into`] instead.
    pub fn take_dirty(&mut self) -> Vec<(VertexId, V)> {
        let mut out: Vec<(VertexId, V)> = self
            .dirty
            .drain()
            .map(|v| {
                (
                    v,
                    self.values.get(&v).cloned().expect("dirty implies present"),
                )
            })
            .collect();
        for pos in self.dirty_list.drain(..) {
            if self.border_dirty.contains(pos) {
                self.border_dirty.clear(pos);
                let value = self.border_values[pos as usize]
                    .clone()
                    .expect("dirty implies present");
                out.push((self.border_ids[pos as usize], value));
            }
        }
        out.sort_unstable_by_key(|(v, _)| *v);
        out
    }

    /// Drains the changed border values as `(slot, value)` pairs into
    /// `changes` and the changed non-border (stray) values into `strays`,
    /// reusing the callers' buffers. Border draining walks only the dirty
    /// positions — O(changed), not O(border). Called by the engine after
    /// each PEval / IncEval invocation.
    pub fn drain_dirty_into(
        &mut self,
        changes: &mut Vec<(u32, V)>,
        strays: &mut Vec<(VertexId, V)>,
    ) {
        for pos in self.dirty_list.drain(..) {
            if self.border_dirty.contains(pos) {
                self.border_dirty.clear(pos);
                let value = self.border_values[pos as usize]
                    .clone()
                    .expect("dirty implies present");
                changes.push((self.border_slots[pos as usize], value));
            }
        }
        if !self.dirty.is_empty() {
            for v in self.dirty.drain() {
                let value = self.values.get(&v).cloned().expect("dirty implies present");
                strays.push((v, value));
            }
            strays.sort_unstable_by_key(|(v, _)| *v);
        }
    }

    /// Snapshot of the configured border values, for checkpointing. The
    /// engine takes it right after a drain, so no dirtiness needs capturing:
    /// the values are exactly what the coordinator has already seen.
    pub fn snapshot_border_values(&self) -> Vec<Option<V>> {
        self.border_values.clone()
    }

    /// Restores border values from a [`PieContext::snapshot_border_values`]
    /// checkpoint, clearing all dirtiness. Must be called after
    /// [`PieContext::configure_borders`] with the same border list the
    /// snapshot was taken under.
    pub fn restore_border_values(&mut self, values: Vec<Option<V>>) {
        debug_assert_eq!(values.len(), self.border_ids.len());
        self.border_values = values;
        self.border_dirty = DenseBitset::new(self.border_ids.len());
        self.dirty_list.clear();
    }

    /// Records an externally received value (from the coordinator) without
    /// marking it dirty, so the worker will not echo it back unchanged.
    pub fn absorb(&mut self, vertex: VertexId, value: V) {
        if let Some(pos) = self.border_position(vertex) {
            self.border_values[pos as usize] = Some(value);
            // A stale `dirty_list` entry may remain; the cleared bit makes
            // the drain skip it.
            self.border_dirty.clear(pos);
            return;
        }
        self.values.insert(vertex, value);
        self.dirty.remove(&vertex);
    }

    /// Iterates over all `(vertex, value)` pairs currently stored.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &V)> + '_ {
        let borders = self
            .border_ids
            .iter()
            .zip(self.border_values.iter())
            .filter_map(|(&v, val)| val.as_ref().map(|val| (v, val)));
        self.values.iter().map(|(v, val)| (*v, val)).chain(borders)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_marks_dirty_only_on_change() {
        let mut ctx = PieContext::<u64>::new();
        ctx.update(1, 10);
        ctx.update(2, 20);
        ctx.update(1, 10); // no change
        assert_eq!(ctx.changed_updates(), 2);
        let dirty = ctx.take_dirty();
        assert_eq!(dirty, vec![(1, 10), (2, 20)]);
        assert!(ctx.take_dirty().is_empty(), "drained");
        ctx.update(1, 5);
        assert_eq!(ctx.take_dirty(), vec![(1, 5)]);
    }

    #[test]
    fn get_and_len() {
        let mut ctx = PieContext::<f64>::new();
        assert!(ctx.is_empty());
        ctx.update(7, 1.5);
        assert_eq!(ctx.get(7), Some(&1.5));
        assert_eq!(ctx.get(8), None);
        assert_eq!(ctx.len(), 1);
        assert!(!ctx.is_empty());
    }

    #[test]
    fn absorb_does_not_echo() {
        let mut ctx = PieContext::<u64>::new();
        ctx.absorb(3, 30);
        assert!(ctx.take_dirty().is_empty());
        assert_eq!(ctx.get(3), Some(&30));
        // A later genuine improvement is still reported.
        ctx.update(3, 10);
        assert_eq!(ctx.take_dirty(), vec![(3, 10)]);
        // Absorbing over a dirty value clears the dirty flag.
        ctx.update(3, 5);
        ctx.absorb(3, 1);
        assert!(ctx.take_dirty().is_empty());
    }

    #[test]
    fn iter_sees_everything() {
        let mut ctx = PieContext::<u64>::new();
        ctx.update(1, 1);
        ctx.absorb(2, 2);
        let mut all: Vec<(VertexId, u64)> = ctx.iter().map(|(v, x)| (v, *x)).collect();
        all.sort_unstable();
        assert_eq!(all, vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn configured_borders_use_the_slot_path() {
        let mut ctx = PieContext::<u64>::new();
        // Border vertices 10, 20, 30 carry slots 5, 2, 9.
        ctx.configure_borders(&[10, 20, 30], &[5, 2, 9]);
        ctx.update(20, 7);
        ctx.update(10, 1);
        ctx.update(20, 7); // unchanged: not re-dirtied
        assert_eq!(ctx.changed_updates(), 2);
        assert_eq!(ctx.get(20), Some(&7));
        assert_eq!(ctx.len(), 2);

        let mut changes = Vec::new();
        let mut strays = Vec::new();
        ctx.drain_dirty_into(&mut changes, &mut strays);
        // Slot-addressed, in first-touch order; no strays.
        assert_eq!(changes, vec![(2, 7), (5, 1)]);
        assert!(strays.is_empty());

        // Drained: nothing left.
        changes.clear();
        ctx.drain_dirty_into(&mut changes, &mut strays);
        assert!(changes.is_empty() && strays.is_empty());
    }

    #[test]
    fn non_border_updates_become_strays() {
        let mut ctx = PieContext::<u64>::new();
        ctx.configure_borders(&[10], &[0]);
        ctx.update(10, 1);
        ctx.update(99, 2); // not a border vertex
        ctx.update(42, 3); // not a border vertex
        let mut changes = Vec::new();
        let mut strays = Vec::new();
        ctx.drain_dirty_into(&mut changes, &mut strays);
        assert_eq!(changes, vec![(0, 1)]);
        assert_eq!(strays, vec![(42, 3), (99, 2)], "strays sorted by vertex");
    }

    #[test]
    fn absorb_on_border_clears_dirtiness_but_keeps_value() {
        let mut ctx = PieContext::<u64>::new();
        ctx.configure_borders(&[10, 20], &[0, 1]);
        ctx.update(10, 5);
        ctx.absorb(10, 3);
        let mut changes = Vec::new();
        let mut strays = Vec::new();
        ctx.drain_dirty_into(&mut changes, &mut strays);
        assert!(changes.is_empty(), "absorbed value must not be echoed");
        assert_eq!(ctx.get(10), Some(&3));
        // Re-dirtying after an absorb reports again.
        ctx.update(10, 1);
        ctx.drain_dirty_into(&mut changes, &mut strays);
        assert_eq!(changes, vec![(0, 1)]);
    }

    #[test]
    fn border_snapshot_roundtrips_without_dirtiness() {
        let mut ctx = PieContext::<u64>::new();
        ctx.configure_borders(&[10, 20, 30], &[0, 1, 2]);
        ctx.update(10, 5);
        ctx.update(30, 7);
        let mut changes = Vec::new();
        let mut strays = Vec::new();
        ctx.drain_dirty_into(&mut changes, &mut strays);
        let snapshot = ctx.snapshot_border_values();
        assert_eq!(snapshot, vec![Some(5), None, Some(7)]);

        // A fresh context restored from the snapshot sees the same values
        // but reports nothing (the coordinator already has them)...
        let mut restored = PieContext::<u64>::new();
        restored.configure_borders(&[10, 20, 30], &[0, 1, 2]);
        restored.restore_border_values(snapshot);
        assert_eq!(restored.get(10), Some(&5));
        assert_eq!(restored.get(30), Some(&7));
        changes.clear();
        restored.drain_dirty_into(&mut changes, &mut strays);
        assert!(changes.is_empty() && strays.is_empty());

        // ...and re-publishing an unchanged value stays suppressed, exactly
        // like on the original worker.
        restored.update(10, 5);
        restored.drain_dirty_into(&mut changes, &mut strays);
        assert!(changes.is_empty(), "unchanged republication suppressed");
        restored.update(10, 3);
        restored.drain_dirty_into(&mut changes, &mut strays);
        assert_eq!(changes, vec![(0, 3)]);
    }

    #[test]
    fn take_dirty_merges_border_and_stray_updates_sorted() {
        let mut ctx = PieContext::<u64>::new();
        ctx.configure_borders(&[20], &[0]);
        ctx.update(20, 2);
        ctx.update(5, 1); // stray
        assert_eq!(ctx.take_dirty(), vec![(5, 1), (20, 2)]);
    }
}
