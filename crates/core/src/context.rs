//! The per-worker context PIE programs write update parameters into.

use grape_graph::VertexId;
use std::collections::{HashMap, HashSet};

/// The update-parameter table of one fragment.
///
/// PEval *declares* update parameters by calling [`PieContext::update`] for
/// border vertices; IncEval calls the same method whenever a border value
/// improves. The engine harvests the vertices whose value actually changed
/// ([`PieContext::take_dirty`]) after each call and turns them into messages;
/// values persist across supersteps so programs can consult the current value
/// with [`PieContext::get`].
#[derive(Debug, Clone)]
pub struct PieContext<V> {
    values: HashMap<VertexId, V>,
    dirty: HashSet<VertexId>,
    /// Cumulative number of `update` calls that changed a value (used by the
    /// boundedness experiment to measure |ΔO| on the border).
    changed_updates: u64,
}

impl<V: Clone + PartialEq> Default for PieContext<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone + PartialEq> PieContext<V> {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self {
            values: HashMap::new(),
            dirty: HashSet::new(),
            changed_updates: 0,
        }
    }

    /// Sets the update parameter of `vertex` to `value`. The vertex is marked
    /// dirty (and the value shipped at the end of the superstep) only if the
    /// value differs from the stored one.
    pub fn update(&mut self, vertex: VertexId, value: V) {
        match self.values.get(&vertex) {
            Some(existing) if *existing == value => {}
            _ => {
                self.values.insert(vertex, value);
                self.dirty.insert(vertex);
                self.changed_updates += 1;
            }
        }
    }

    /// Current value of the update parameter of `vertex`, if declared.
    pub fn get(&self, vertex: VertexId) -> Option<&V> {
        self.values.get(&vertex)
    }

    /// Number of declared update parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no update parameter has been declared yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of `update` calls that actually changed a value so far.
    pub fn changed_updates(&self) -> u64 {
        self.changed_updates
    }

    /// Drains the set of vertices whose value changed since the last call and
    /// returns them with their current values. Called by the engine after
    /// each PEval / IncEval invocation.
    pub fn take_dirty(&mut self) -> Vec<(VertexId, V)> {
        let mut out: Vec<(VertexId, V)> = self
            .dirty
            .drain()
            .map(|v| {
                (
                    v,
                    self.values.get(&v).cloned().expect("dirty implies present"),
                )
            })
            .collect();
        out.sort_unstable_by_key(|(v, _)| *v);
        out
    }

    /// Records an externally received value (from the coordinator) without
    /// marking it dirty, so the worker will not echo it back unchanged.
    pub fn absorb(&mut self, vertex: VertexId, value: V) {
        self.values.insert(vertex, value);
        self.dirty.remove(&vertex);
    }

    /// Iterates over all `(vertex, value)` pairs currently stored.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &V)> + '_ {
        self.values.iter().map(|(v, val)| (*v, val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_marks_dirty_only_on_change() {
        let mut ctx = PieContext::<u64>::new();
        ctx.update(1, 10);
        ctx.update(2, 20);
        ctx.update(1, 10); // no change
        assert_eq!(ctx.changed_updates(), 2);
        let dirty = ctx.take_dirty();
        assert_eq!(dirty, vec![(1, 10), (2, 20)]);
        assert!(ctx.take_dirty().is_empty(), "drained");
        ctx.update(1, 5);
        assert_eq!(ctx.take_dirty(), vec![(1, 5)]);
    }

    #[test]
    fn get_and_len() {
        let mut ctx = PieContext::<f64>::new();
        assert!(ctx.is_empty());
        ctx.update(7, 1.5);
        assert_eq!(ctx.get(7), Some(&1.5));
        assert_eq!(ctx.get(8), None);
        assert_eq!(ctx.len(), 1);
        assert!(!ctx.is_empty());
    }

    #[test]
    fn absorb_does_not_echo() {
        let mut ctx = PieContext::<u64>::new();
        ctx.absorb(3, 30);
        assert!(ctx.take_dirty().is_empty());
        assert_eq!(ctx.get(3), Some(&30));
        // A later genuine improvement is still reported.
        ctx.update(3, 10);
        assert_eq!(ctx.take_dirty(), vec![(3, 10)]);
        // Absorbing over a dirty value clears the dirty flag.
        ctx.update(3, 5);
        ctx.absorb(3, 1);
        assert!(ctx.take_dirty().is_empty());
    }

    #[test]
    fn iter_sees_everything() {
        let mut ctx = PieContext::<u64>::new();
        ctx.update(1, 1);
        ctx.absorb(2, 2);
        let mut all: Vec<(VertexId, u64)> = ctx.iter().map(|(v, x)| (v, *x)).collect();
        all.sort_unstable();
        assert_eq!(all, vec![(1, 1), (2, 2)]);
    }
}
