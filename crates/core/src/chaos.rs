//! Deterministic fault injection for the transport layer.
//!
//! Recovery code that is only exercised by real outages is recovery code
//! that does not work. This module wraps the transport traits with
//! *seed-driven* chaos — kills, mutes, delays, and duplicated frames — so
//! the fault schedule of a test run is a pure function of its
//! [`ChaosConfig`], never of wall-clock randomness. The same seed replays
//! the same outage, which is what lets the chaos tests pin recovered
//! results bit-identical to undisturbed ones.
//!
//! Two wrappers:
//!
//! * [`ChaosWorkerTransport`] — the worker side. Counts incoming commands
//!   and triggers a kill callback at a configured command index (the
//!   `grape-worker` binary SIGKILLs itself; in-process harnesses drop the
//!   connection, which is the same event at the transport level). It can
//!   also mute or duplicate outgoing reports.
//! * [`ChaosCoordTransport`] — the coordinator side. Duplicates, delays, or
//!   mutes outgoing commands by seeded coin flips, for drills where the
//!   *network* misbehaves rather than a worker dying.
//!
//! Delays are a fixed small sleep (latency never changes BSP results);
//! mutes and duplicates change *which frames exist*, which is exactly what
//! epoch fencing and the recovery dedup rules must survive.

use crate::message::{CoordCommand, WorkerReport};
use crate::transport::{CoordTransport, TransportError, WorkerTransport};
use grape_comm::CommStats;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// `xorshift64*`: tiny, fast, and plenty for fault scheduling. Never
/// touches wall-clock or OS entropy — the whole point.
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    state: u64,
}

impl DeterministicRng {
    /// Seeds the generator (a zero seed is mapped to a fixed non-zero
    /// constant; xorshift has no zero state).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A seeded coin flip that comes up true about `per_mille` times in
    /// 1000.
    pub fn chance(&mut self, per_mille: u32) -> bool {
        (self.next_u64() % 1000) < per_mille as u64
    }
}

/// The fault schedule of one chaos run. All zeros / `None` = no chaos.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosConfig {
    /// RNG seed; the entire fault schedule is a function of it.
    pub seed: u64,
    /// Kill the worker endpoint upon *receiving* the command with this
    /// index (0 = the Init handshake, so index `k` exercises death at
    /// superstep `k`'s evaluation).
    pub kill_at: Option<usize>,
    /// ‰ probability an outgoing frame is sent twice.
    pub duplicate_per_mille: u32,
    /// ‰ probability an outgoing frame is held for a fixed short latency
    /// before sending.
    pub delay_per_mille: u32,
    /// ‰ probability an outgoing frame is silently dropped. Muted reports
    /// surface on the far side as a read timeout → worker-loss recovery.
    pub mute_per_mille: u32,
}

/// The fixed latency injected by a "delay" fault. Latency never changes
/// what the BSP computes, only when — so one constant is as good as a
/// distribution and keeps runs reproducible.
const DELAY: Duration = Duration::from_millis(2);

/// Worker-side fault injector wrapping any [`WorkerTransport`].
pub struct ChaosWorkerTransport<V, T> {
    inner: T,
    config: ChaosConfig,
    rng: Mutex<DeterministicRng>,
    commands_seen: Mutex<usize>,
    on_kill: Mutex<Box<dyn FnMut() + Send>>,
    _values: std::marker::PhantomData<fn() -> V>,
}

impl<V, T: WorkerTransport<V>> ChaosWorkerTransport<V, T> {
    /// Wraps `inner`; `on_kill` runs when the configured command index
    /// arrives (SIGKILL the process, drop the connection, …). The killed
    /// command is *not* delivered — death precedes evaluation.
    pub fn new(inner: T, config: ChaosConfig, on_kill: Box<dyn FnMut() + Send>) -> Self {
        Self {
            inner,
            config,
            rng: Mutex::new(DeterministicRng::new(config.seed)),
            commands_seen: Mutex::new(0),
            on_kill: Mutex::new(on_kill),
            _values: std::marker::PhantomData,
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps the chaos layer, returning the underlying transport (for the
    /// post-run digest handshake, which runs outside the fault schedule).
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<V: Clone + Send, T: WorkerTransport<V>> WorkerTransport<V> for ChaosWorkerTransport<V, T> {
    fn send(&self, report: WorkerReport<V>) {
        let mut rng = self.rng.lock().unwrap();
        if rng.chance(self.config.mute_per_mille) {
            return; // Swallowed; the coordinator's timeout finds out.
        }
        if rng.chance(self.config.delay_per_mille) {
            std::thread::sleep(DELAY);
        }
        let duplicate = rng.chance(self.config.duplicate_per_mille);
        drop(rng);
        if duplicate {
            self.inner.send(report.clone());
        }
        self.inner.send(report);
    }

    fn recv_blocking(&self) -> Vec<CoordCommand<V>> {
        let batch = self.inner.recv_blocking();
        if let Some(kill_at) = self.config.kill_at {
            let mut seen = self.commands_seen.lock().unwrap();
            for (i, command) in batch.iter().enumerate() {
                // `Finish` is not a superstep: dying there cannot change
                // the result, so the kill index counts evaluation commands
                // (Init / IncEval / Resume) only.
                if matches!(command, CoordCommand::Finish) {
                    continue;
                }
                if *seen == kill_at {
                    // Deliver the commands before the fatal one, then die:
                    // the worker evaluated supersteps 0..k and vanishes at
                    // k, exactly the schedule the test asked for.
                    let survivors: Vec<_> = batch.into_iter().take(i).collect();
                    (self.on_kill.lock().unwrap())();
                    return survivors;
                }
                *seen += 1;
            }
        }
        batch
    }
}

/// Coordinator-side fault injector wrapping any [`CoordTransport`].
pub struct ChaosCoordTransport<V, T> {
    inner: T,
    config: ChaosConfig,
    rng: Mutex<DeterministicRng>,
    _values: std::marker::PhantomData<fn() -> V>,
}

impl<V, T: CoordTransport<V>> ChaosCoordTransport<V, T> {
    /// Wraps `inner` with the seeded fault schedule in `config`.
    pub fn new(inner: T, config: ChaosConfig) -> Self {
        Self {
            inner,
            config,
            rng: Mutex::new(DeterministicRng::new(config.seed)),
            _values: std::marker::PhantomData,
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<V: Clone + Send, T: CoordTransport<V>> CoordTransport<V> for ChaosCoordTransport<V, T> {
    fn send(&self, worker: usize, command: CoordCommand<V>) {
        let mut rng = self.rng.lock().unwrap();
        if rng.chance(self.config.mute_per_mille) {
            return;
        }
        if rng.chance(self.config.delay_per_mille) {
            std::thread::sleep(DELAY);
        }
        let duplicate = rng.chance(self.config.duplicate_per_mille);
        drop(rng);
        if duplicate {
            self.inner.send(worker, command.clone());
        }
        self.inner.send(worker, command);
    }

    fn recv_blocking(&self) -> Vec<(usize, WorkerReport<V>)> {
        self.inner.recv_blocking()
    }

    fn drain(&self) -> Vec<(usize, WorkerReport<V>)> {
        self.inner.drain()
    }

    fn comm_stats(&self) -> Arc<CommStats> {
        self.inner.comm_stats()
    }

    fn failure(&self) -> Option<TransportError> {
        self.inner.failure()
    }

    fn failures(&self) -> Vec<TransportError> {
        self.inner.failures()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn the_rng_is_a_pure_function_of_its_seed() {
        let a: Vec<u64> = {
            let mut r = DeterministicRng::new(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DeterministicRng::new(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "same seed, same schedule");
        let c: Vec<u64> = {
            let mut r = DeterministicRng::new(43);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c, "different seed, different schedule");
        // Zero seeds must not collapse to the all-zero fixed point.
        let mut z = DeterministicRng::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    /// A worker transport stub fed from / into channels.
    struct StubWorker {
        rx: Mutex<mpsc::Receiver<CoordCommand<f64>>>,
        sent: Mutex<Vec<WorkerReport<f64>>>,
    }

    impl WorkerTransport<f64> for StubWorker {
        fn send(&self, report: WorkerReport<f64>) {
            self.sent.lock().unwrap().push(report);
        }
        fn recv_blocking(&self) -> Vec<CoordCommand<f64>> {
            self.rx.lock().unwrap().try_iter().collect()
        }
    }

    #[test]
    fn kills_fire_at_the_exact_command_index_and_eat_the_fatal_command() {
        let (tx, rx) = mpsc::channel();
        for s in 1..=4usize {
            tx.send(CoordCommand::IncEval {
                superstep: s,
                updates: vec![(0u32, s as f64)],
            })
            .unwrap();
        }
        let killed = Arc::new(Mutex::new(false));
        let flag = Arc::clone(&killed);
        let chaos = ChaosWorkerTransport::new(
            StubWorker {
                rx: Mutex::new(rx),
                sent: Mutex::new(Vec::new()),
            },
            ChaosConfig {
                kill_at: Some(2),
                ..Default::default()
            },
            Box::new(move || *flag.lock().unwrap() = true),
        );
        // Four queued commands, kill at index 2: exactly the first two are
        // delivered and the kill callback has fired.
        let delivered = chaos.recv_blocking();
        assert_eq!(delivered.len(), 2);
        assert!(matches!(
            &delivered[1],
            CoordCommand::IncEval { superstep: 2, .. }
        ));
        assert!(*killed.lock().unwrap());
    }

    #[test]
    fn finish_commands_never_satisfy_the_kill_index() {
        let (tx, rx) = mpsc::channel();
        tx.send(CoordCommand::<f64>::Finish).unwrap();
        tx.send(CoordCommand::IncEval {
            superstep: 1,
            updates: vec![(0u32, 1.0)],
        })
        .unwrap();
        let killed = Arc::new(Mutex::new(false));
        let flag = Arc::clone(&killed);
        let chaos = ChaosWorkerTransport::new(
            StubWorker {
                rx: Mutex::new(rx),
                sent: Mutex::new(Vec::new()),
            },
            ChaosConfig {
                kill_at: Some(0),
                ..Default::default()
            },
            Box::new(move || *flag.lock().unwrap() = true),
        );
        // Kill index 0 must not fire on the Finish command — it fires on the
        // first *evaluation* command, and Finish (delivered before it) rides
        // through as a survivor.
        let delivered = chaos.recv_blocking();
        assert_eq!(delivered.len(), 1);
        assert!(matches!(&delivered[0], CoordCommand::Finish));
        assert!(*killed.lock().unwrap());
    }

    #[test]
    fn mutes_and_duplicates_follow_the_seed() {
        let report = || WorkerReport::Done {
            superstep: 1,
            changes: vec![(3u32, 1.5f64)],
            strays: vec![],
            checkpoint: None,
            eval_seconds: 0.0,
        };
        let count_sends = |config: ChaosConfig, sends: usize| {
            let (_tx, rx) = mpsc::channel::<CoordCommand<f64>>();
            let chaos = ChaosWorkerTransport::new(
                StubWorker {
                    rx: Mutex::new(rx),
                    sent: Mutex::new(Vec::new()),
                },
                config,
                Box::new(|| {}),
            );
            for _ in 0..sends {
                chaos.send(report());
            }
            let n = chaos.inner().sent.lock().unwrap().len();
            n
        };
        // Always-mute swallows everything; always-duplicate doubles
        // everything; and the same seed reproduces the same partial counts.
        assert_eq!(
            count_sends(
                ChaosConfig {
                    mute_per_mille: 1000,
                    ..Default::default()
                },
                50
            ),
            0
        );
        assert_eq!(
            count_sends(
                ChaosConfig {
                    duplicate_per_mille: 1000,
                    ..Default::default()
                },
                50
            ),
            100
        );
        let partial = ChaosConfig {
            seed: 7,
            mute_per_mille: 300,
            duplicate_per_mille: 300,
            ..Default::default()
        };
        let once = count_sends(partial, 200);
        assert_eq!(once, count_sends(partial, 200), "seeded ⇒ reproducible");
        assert!(once > 100 && once < 300, "faults actually fired: {once}");
    }
}
