//! The BSP fixpoint engine (coordinator + workers).
//!
//! [`GrapeEngine::run`] implements the workflow of Fig. 1 / Section 2.2:
//!
//! 1. **Handshake** — the coordinator assigns every distinct border vertex a
//!    stable `u32` slot id and ships each fragment its local border→slot
//!    mapping ([`CoordCommand::Init`]). All later traffic is slot-addressed.
//! 2. **PEval superstep** — every worker runs PEval on its fragment in
//!    parallel and reports its changed update parameters (as `(slot, value)`
//!    pairs) to the coordinator.
//! 3. **IncEval supersteps** — the coordinator folds the changed values into
//!    its flat slot table (using the program's aggregate function; no
//!    hashing per superstep), routes the results to every fragment that has
//!    the vertex on its border, and those workers run IncEval; they again
//!    report changed values.
//! 4. **Termination** — when a superstep produces no changed update
//!    parameters (every worker is inactive), the coordinator collects the
//!    partial results and Assemble combines them into `Q(G)`.
//!
//! Workers are OS threads — or, when the host has a single hardware thread
//! (or [`ExecutionMode::Inline`] is requested), the same workers driven
//! sequentially on the calling thread, which removes the per-superstep
//! futex-wake and preemption chains that dominate oversubscribed runs.
//! Either way the "network" traffic flows through
//! [`grape_comm::CommNetwork`] so every message and byte is accounted in the
//! run statistics, mirroring the communication columns of the paper's
//! tables. Report and command buffers circulate between the endpoints
//! (received report buffers become the next superstep's command buffers and
//! vice versa), so the steady-state superstep path allocates nothing.

use crate::context::PieContext;
use crate::converged::Seeded;
use crate::message::{CheckpointState, CoordCommand, WorkerReport};
use crate::par::{ThreadCount, ThreadPool};
use crate::program::PieProgram;
use crate::stats::{RunStats, SuperstepTrace};
use crate::transport::{
    self, CoordTransport, DrainableWorkerTransport, TransportError, TransportKind, WorkerTransport,
};
use grape_comm::CommStats;
use grape_graph::delta::MutationProfile;
use grape_graph::{CsrGraph, VertexId};
use grape_partition::{build_fragments, Fragment, PartitionAssignment};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One worker's superstep report as gathered by the coordinator:
/// `(worker id, changed border slots, stray updates, eval seconds)`.
type GatheredReport<V> = (usize, Vec<(u32, V)>, Vec<(VertexId, V)>, f64);

/// The coordinator's aggregation table: one stable slot per border vertex,
/// built once per run from the fragments' border lists.
///
/// Every superstep the coordinator folds the workers' slot-addressed
/// proposals straight into flat arrays — the global-id→slot `HashMap` exists
/// only while the table is built, so the per-superstep fold path performs
/// zero hashing — and echo suppression is a single bit test per
/// `(slot, worker)` instead of a linear `Vec::contains` scan.
struct SlotTable<V> {
    /// Slot -> fragments that have the vertex on their border.
    homes: Vec<Vec<usize>>,
    /// Folded value of each slot in the current superstep (`None` =
    /// untouched this superstep).
    value: Vec<Option<V>>,
    /// Folded value of each slot in any previous superstep, for the
    /// monotonicity check.
    last_value: Vec<Option<V>>,
    /// Packed per-slot worker bitmask: bit `f` of slot `s` set means worker
    /// `f` already holds the folded value of `s` (no echo needed).
    holders: Vec<u64>,
    /// 64-bit words per slot in `holders`.
    words_per_slot: usize,
    /// Slots touched in the current superstep, so clearing is O(touched).
    touched: Vec<u32>,
}

impl<V: Clone> SlotTable<V> {
    /// Builds the table from the borders of `fragments`, assigning each
    /// distinct border vertex a slot. Also returns, per fragment, the slot
    /// of each of its border vertices (aligned with
    /// `Fragment::border_vertices()`) — the mapping the handshake ships to
    /// the workers. This is the only place global ids are hashed.
    fn build<VD, ED>(
        fragments: &[grape_partition::Fragment<VD, ED>],
        n_workers: usize,
    ) -> (Self, Vec<Vec<u32>>)
    where
        VD: Clone,
        ED: Clone,
    {
        let mut slot_of: HashMap<VertexId, u32> = HashMap::new();
        let mut homes: Vec<Vec<usize>> = Vec::new();
        let mut fragment_slots: Vec<Vec<u32>> = Vec::with_capacity(fragments.len());
        for fragment in fragments {
            let borders = fragment.border_vertices();
            let mut local = Vec::with_capacity(borders.len());
            for &v in borders {
                let slot = *slot_of.entry(v).or_insert_with(|| {
                    homes.push(Vec::new());
                    (homes.len() - 1) as u32
                });
                homes[slot as usize].push(fragment.id);
                local.push(slot);
            }
            fragment_slots.push(local);
        }
        let num_slots = homes.len();
        let words_per_slot = n_workers.div_ceil(64).max(1);
        let table = Self {
            homes,
            value: vec![None; num_slots],
            last_value: vec![None; num_slots],
            holders: vec![0u64; num_slots * words_per_slot],
            words_per_slot,
            touched: Vec::new(),
        };
        (table, fragment_slots)
    }

    #[inline]
    fn holds(&self, slot: u32, worker: usize) -> bool {
        let base = slot as usize * self.words_per_slot;
        self.holders[base + worker / 64] & (1u64 << (worker % 64)) != 0
    }

    #[inline]
    fn set_holder(&mut self, slot: u32, worker: usize) {
        let base = slot as usize * self.words_per_slot;
        self.holders[base + worker / 64] |= 1u64 << (worker % 64);
    }

    #[inline]
    fn clear_holders(&mut self, slot: u32) {
        let base = slot as usize * self.words_per_slot;
        self.holders[base..base + self.words_per_slot].fill(0);
    }

    /// Resets the per-superstep state (folded values + holder bits) of every
    /// slot touched since the last call.
    fn begin_superstep(&mut self) {
        let touched = std::mem::take(&mut self.touched);
        for &slot in &touched {
            self.value[slot as usize] = None;
            self.clear_holders(slot);
        }
    }

    /// Folds `proposal` from `worker` into `slot` using `aggregate`. Slot
    /// ids were assigned by this table at build time, so this is a pair of
    /// indexed loads — no hashing.
    fn fold(&mut self, slot: u32, worker: usize, proposal: &V, aggregate: impl Fn(&V, &V) -> V)
    where
        V: PartialEq,
    {
        debug_assert!((slot as usize) < self.value.len(), "slot out of range");
        match &self.value[slot as usize] {
            None => {
                self.value[slot as usize] = Some(proposal.clone());
                self.touched.push(slot);
                self.set_holder(slot, worker);
            }
            Some(current) => {
                let folded = aggregate(current, proposal);
                // Any worker recorded as holding the previous fold is stale
                // the moment the folded value moves; only workers whose own
                // proposal equals the fold can skip the echo. This also
                // covers non-selective aggregates (sums, element-wise mins)
                // where the fold equals *neither* input: everyone gets the
                // message.
                if folded != *current {
                    self.clear_holders(slot);
                }
                if folded == *proposal {
                    self.set_holder(slot, worker);
                }
                self.value[slot as usize] = Some(folded);
            }
        }
    }
}

/// Worker-side slot→vertex translation, sized to the fragment rather than
/// the job: a dense table when the fragment's slots span a modest range, a
/// sorted list otherwise. Slot ids are assigned job-wide in fragment order,
/// so a late fragment in a large job may hold slots scattered across a huge
/// id space — a dense table indexed by global slot id would then be O(total
/// borders) per worker. The dense fast path (one indexed load) covers the
/// common small-k case; the sparse fallback is a binary search over O(local
/// border) memory.
enum SlotTranslation {
    /// `table[slot] = vertex`; unfilled entries are `VertexId::MAX` and are
    /// never routed here by the coordinator.
    Dense(Vec<VertexId>),
    /// `(slot, vertex)` sorted by slot.
    Sparse(Vec<(u32, VertexId)>),
}

impl SlotTranslation {
    /// How many dense entries we are willing to allocate per border vertex
    /// before switching to the sparse form.
    const MAX_DENSE_WASTE: usize = 8;

    fn build(border_vertices: &[VertexId], border_slots: &[u32]) -> Self {
        let slot_space = border_slots
            .iter()
            .map(|&s| s as usize + 1)
            .max()
            .unwrap_or(0);
        if slot_space <= border_slots.len().saturating_mul(Self::MAX_DENSE_WASTE) {
            let mut table = vec![VertexId::MAX; slot_space];
            for (&v, &s) in border_vertices.iter().zip(border_slots) {
                table[s as usize] = v;
            }
            SlotTranslation::Dense(table)
        } else {
            let mut pairs: Vec<(u32, VertexId)> = border_slots
                .iter()
                .copied()
                .zip(border_vertices.iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(s, _)| s);
            SlotTranslation::Sparse(pairs)
        }
    }

    /// The vertex carried by `slot`. The coordinator only routes this
    /// fragment's border slots here, so the lookup always hits.
    #[inline]
    fn vertex(&self, slot: u32) -> VertexId {
        match self {
            SlotTranslation::Dense(table) => table[slot as usize],
            SlotTranslation::Sparse(pairs) => {
                let i = pairs
                    .binary_search_by_key(&slot, |&(s, _)| s)
                    .expect("routed slot belongs to this fragment's border");
                pairs[i].1
            }
        }
    }
}

/// One worker's execution state, shared by the threaded and inline drivers
/// and the remote worker loop ([`run_worker`]): the program context, the
/// slot-translation table installed by the Init handshake, and the buffers
/// that circulate across supersteps. Transport-agnostic — commands go in,
/// reports come out, and the caller moves both across whatever fabric it
/// runs on.
struct WorkerRuntime<'a, P: PieProgram> {
    program: &'a P,
    query: &'a P::Query,
    fragment: &'a Fragment<P::VertexData, P::EdgeData>,
    ctx: PieContext<P::Value>,
    /// Slot -> local vertex id for this fragment's border slots, which is
    /// exactly the set the coordinator may route here.
    slot_translation: SlotTranslation,
    /// Translated incoming messages, reused across supersteps.
    messages: Vec<(VertexId, P::Value)>,
    /// The fragment's partial result; `Some` once PEval has run.
    partial: Option<P::Partial>,
    /// Checkpoint cadence: a [`CheckpointState`] is attached to the *first*
    /// report of every `checkpoint_every`-superstep window (so superstep 0
    /// always snapshots, and an idle superstep cannot silently skip a
    /// window). `0` disables checkpoints entirely.
    checkpoint_every: usize,
    /// The window (`superstep / checkpoint_every`) of the last report sent,
    /// used to detect the first report of a fresh window. A replacement
    /// worker starts at `None` and therefore re-checkpoints on its first
    /// accepted report, re-arming the coordinator's bounded command log.
    reported_window: Option<usize>,
}

/// What [`WorkerRuntime::handle`] asks the surrounding loop to do.
enum HandleOutcome<V> {
    /// Send this report to the coordinator.
    Reply(WorkerReport<V>),
    /// State was installed (a [`CoordCommand::Resume`] restore); nothing to
    /// send — the coordinator drives the next step.
    Silent,
    /// [`CoordCommand::Finish`]: stop and hand back the partial result.
    Stop,
}

impl<'a, P: PieProgram> WorkerRuntime<'a, P> {
    fn new(
        program: &'a P,
        query: &'a P::Query,
        fragment: &'a Fragment<P::VertexData, P::EdgeData>,
        pool: Arc<ThreadPool>,
    ) -> Self {
        let mut ctx = PieContext::new();
        ctx.set_pool(pool);
        Self {
            program,
            query,
            fragment,
            ctx,
            slot_translation: SlotTranslation::Dense(Vec::new()),
            messages: Vec::new(),
            partial: None,
            checkpoint_every: 0,
            reported_window: None,
        }
    }

    /// Installs the border→slot mapping (the Init/Resume handshake state).
    fn install_borders(&mut self, border_slots: &[u32]) {
        self.ctx
            .configure_borders(self.fragment.border_vertices(), border_slots);
        self.slot_translation =
            SlotTranslation::build(self.fragment.border_vertices(), border_slots);
    }

    /// Runs PEval and builds its superstep-0 report.
    fn run_peval(&mut self) -> WorkerReport<P::Value> {
        let t0 = Instant::now();
        let partial = self.program.peval(self.query, self.fragment, &mut self.ctx);
        let eval_seconds = t0.elapsed().as_secs_f64();
        self.partial = Some(partial);
        self.report(0, Vec::new(), eval_seconds)
    }

    /// Handles one coordinator command.
    fn handle(&mut self, command: CoordCommand<P::Value>) -> HandleOutcome<P::Value> {
        match command {
            CoordCommand::Init { border_slots } => {
                // Handshake: install the border→slot mapping, then run PEval.
                self.install_borders(&border_slots);
                HandleOutcome::Reply(self.run_peval())
            }
            CoordCommand::Resume {
                superstep: _,
                border_slots,
                checkpoint,
            } => {
                // Recovery handshake for a replacement worker: install the
                // lost worker's checkpointed state instead of recomputing it.
                self.install_borders(&border_slots);
                match checkpoint {
                    Some(cp) => {
                        let partial = self
                            .program
                            .restore_partial(&cp.partial)
                            .expect("coordinator only resumes programs that snapshot");
                        self.partial = Some(partial);
                        self.ctx.restore_border_values(cp.border);
                        HandleOutcome::Silent
                    }
                    // The lost worker died before its PEval report landed:
                    // nothing to restore, run PEval from scratch and report
                    // it like a fresh Init.
                    None => HandleOutcome::Reply(self.run_peval()),
                }
            }
            CoordCommand::IncEval {
                superstep,
                mut updates,
            } => {
                // Translate the routed slots back to the program's global-id
                // view (one indexed load each on the dense path).
                self.messages.clear();
                for (slot, value) in updates.drain(..) {
                    self.messages
                        .push((self.slot_translation.vertex(slot), value));
                }
                let t0 = Instant::now();
                let partial = self.partial.as_mut().expect("IncEval before PEval");
                self.program.inceval(
                    self.query,
                    self.fragment,
                    partial,
                    &self.messages,
                    &mut self.ctx,
                );
                let eval_seconds = t0.elapsed().as_secs_f64();
                // The drained command buffer becomes this report's payload:
                // buffers circulate instead of reallocating.
                HandleOutcome::Reply(self.report(superstep, updates, eval_seconds))
            }
            CoordCommand::Finish => HandleOutcome::Stop,
        }
    }

    /// Drains the context's dirty border slots into `changes` (a recycled
    /// buffer) and builds the superstep report, attaching a checkpoint on
    /// the cadence the run asked for. The checkpoint is taken *after* the
    /// drain, so it captures exactly the state the coordinator will believe
    /// this worker to be in once the report lands.
    fn report(
        &mut self,
        superstep: usize,
        mut changes: Vec<(u32, P::Value)>,
        eval_seconds: f64,
    ) -> WorkerReport<P::Value> {
        let mut strays = Vec::new();
        self.ctx.drain_dirty_into(&mut changes, &mut strays);
        // Cadence: snapshot on the first report of each
        // `checkpoint_every`-superstep window. The window is a pure function
        // of the superstep number, so recovered runs attach checkpoints at
        // the same supersteps as undisturbed ones.
        let snapshot_due = self.checkpoint_every > 0 && {
            let window = superstep / self.checkpoint_every;
            let due = self.reported_window != Some(window);
            self.reported_window = Some(window);
            due
        };
        let checkpoint = if snapshot_due {
            let partial = self.partial.as_ref().expect("report implies PEval ran");
            self.program
                .snapshot_partial(partial)
                .map(|bytes| CheckpointState {
                    partial: bytes,
                    border: self.ctx.snapshot_border_values(),
                })
        } else {
            None
        };
        WorkerReport::Done {
            superstep,
            changes,
            strays,
            checkpoint,
            eval_seconds,
        }
    }

    /// Takes the partial result after the run — `None` when the run was
    /// torn down before PEval ever produced one (e.g. a worker whose
    /// connection died at its Init command).
    fn into_partial(self) -> Option<P::Partial> {
        self.partial
    }
}

/// Drives one worker over `transport` until the coordinator sends
/// [`CoordCommand::Finish`] (or disconnects), returning the fragment's
/// partial result.
///
/// This is the complete worker side of the BSP protocol: the engine's
/// threaded driver runs it over in-process channels, and the `grape-worker`
/// binary runs the *same function* over a framed TCP / Unix-domain socket —
/// the PIE program cannot tell the difference.
///
/// `threads` is the size of the worker's intra-fragment thread pool
/// (1 = fully sequential evaluation, the historical behavior).
pub fn run_worker<P: PieProgram>(
    program: &P,
    query: &P::Query,
    fragment: &Fragment<P::VertexData, P::EdgeData>,
    transport: &impl WorkerTransport<P::Value>,
    threads: usize,
) -> P::Partial {
    run_worker_with(program, query, fragment, transport, threads, 0)
        .expect("every worker ran PEval")
}

/// [`run_worker`] with control over the checkpoint cadence: with
/// `checkpoint_every = k > 0` the first report of every k-superstep window
/// carries a [`CheckpointState`] (if the program supports snapshots), which
/// is what makes the coordinator's worker-loss recovery cheap — `k = 1`
/// snapshots every superstep, larger `k` amortizes the snapshot cost against
/// a bounded command replay. `0` disables checkpoints.
///
/// Returns `None` only when the connection was torn down before PEval ever
/// produced a partial — a worker killed at its Init command has no result,
/// and its replacement reports in its stead.
pub fn run_worker_with<P: PieProgram>(
    program: &P,
    query: &P::Query,
    fragment: &Fragment<P::VertexData, P::EdgeData>,
    transport: &impl WorkerTransport<P::Value>,
    threads: usize,
    checkpoint_every: usize,
) -> Option<P::Partial> {
    let pool = Arc::new(ThreadPool::new(threads));
    let mut worker = WorkerRuntime::new(program, query, fragment, pool);
    worker.checkpoint_every = checkpoint_every;
    loop {
        let batch = transport.recv_blocking();
        if batch.is_empty() {
            // Coordinator vanished; stop gracefully.
            return worker.into_partial();
        }
        for command in batch {
            match worker.handle(command) {
                HandleOutcome::Reply(report) => transport.send(report),
                HandleOutcome::Silent => {}
                HandleOutcome::Stop => return worker.into_partial(),
            }
        }
    }
}

/// How the engine executes its workers.
///
/// The BSP exchange is identical in every mode — same handshake, same
/// slot-addressed messages, same accounting, bit-identical results — only
/// the scheduling differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One OS thread per fragment when the host has more than one hardware
    /// thread and there is more than one fragment; inline otherwise. On a
    /// single hardware thread, thread-per-fragment is pure scheduling
    /// overhead (every superstep pays a chain of futex wake-ups and
    /// preemptions), so the engine drives the workers sequentially instead.
    #[default]
    Auto,
    /// Always spawn one OS thread per fragment.
    Threads,
    /// Always drive the workers sequentially on the calling thread.
    Inline,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Hard limit on supersteps; exceeded only by non-terminating (e.g.
    /// non-monotonic) programs.
    pub max_supersteps: usize,
    /// When set, every aggregated update-parameter transition is checked
    /// against [`PieProgram::monotonic`] and violations are counted in
    /// [`RunStats::monotonicity_violations`].
    pub check_monotonicity: bool,
    /// Worker scheduling (see [`ExecutionMode`]).
    pub execution: ExecutionMode,
    /// Message fabric between coordinator and workers (see
    /// [`TransportKind`]): typed in-process channels (estimated bytes) or
    /// framed byte channels round-tripping every message through the wire
    /// codec (actual bytes).
    pub transport: TransportKind,
    /// Size of each worker's intra-fragment thread pool (see
    /// [`ThreadCount`]). Results are bit-identical for every setting; only
    /// the wall time changes.
    pub threads_per_worker: ThreadCount,
    /// How long a stream-transport coordinator waits for the next report
    /// before declaring the silent workers lost
    /// ([`transport::DEFAULT_READ_TIMEOUT`] by default; `None` waits
    /// forever). Only stream transports enforce it — the in-process channel
    /// backends cannot lose workers.
    pub read_timeout: Option<Duration>,
    /// Checkpoint cadence for recoverable runs: workers attach a
    /// [`CheckpointState`] to the first report of every
    /// `checkpoint_every`-superstep window, and the coordinator replays the
    /// (bounded) log of commands sent since the last checkpoint when it
    /// restores a replacement. `1` snapshots every superstep, larger values
    /// amortize the snapshot cost against a longer replay, `0` disables
    /// checkpoints. Recovered runs are bit-identical for every cadence.
    pub checkpoint_every: usize,
    /// Shared-secret handshake token. When set, stream-transport workers
    /// must present the same token in their hello frame before the
    /// coordinator ships them a job; mismatched or missing tokens are
    /// rejected with a typed error. `None` accepts every connection.
    pub auth_token: Option<String>,
    /// The query's run id, stamped into [`RunStats::run_id`] and used as the
    /// starting wire epoch of the run: stream frames carry it in their
    /// header, so a service multiplexing queries over resident workers can
    /// fence each query's traffic by its own id (recovery still bumps the
    /// epoch per recovered worker, starting from this base). One-shot runs
    /// keep the default `0`.
    pub run_id: u32,
    /// When set, [`GrapeEngine::run`] snapshots every fragment's converged
    /// partial ([`PieProgram::snapshot_partial`]) right before Assemble and
    /// returns them in [`GrapeResult::converged`] — the raw material of a
    /// [`crate::converged::ConvergedState`] that can seed a later
    /// [`GrapeEngine::run_incremental`] after graph mutations. Off by
    /// default; programs without snapshot support yield `None` regardless.
    pub capture_converged: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_supersteps: 100_000,
            check_monotonicity: false,
            execution: ExecutionMode::Auto,
            transport: TransportKind::InProcess,
            threads_per_worker: ThreadCount::Auto,
            read_timeout: Some(transport::DEFAULT_READ_TIMEOUT),
            checkpoint_every: 0,
            auth_token: None,
            run_id: 0,
            capture_converged: false,
        }
    }
}

impl EngineConfig {
    /// A typed builder starting from the defaults — the preferred way to
    /// construct a configuration (the struct fields stay public for now, but
    /// new call sites should go through the builder).
    ///
    /// ```
    /// use grape_core::{EngineConfig, ExecutionMode};
    ///
    /// let config = EngineConfig::builder()
    ///     .execution(ExecutionMode::Inline)
    ///     .checkpoint_every(3)
    ///     .build();
    /// assert_eq!(config.checkpoint_every, 3);
    /// ```
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: EngineConfig::default(),
        }
    }
}

/// Typed builder for [`EngineConfig`], created by [`EngineConfig::builder`].
/// Every setter has the same name and semantics as the field it sets;
/// unset knobs keep their [`EngineConfig::default`] values.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets [`EngineConfig::max_supersteps`].
    pub fn max_supersteps(mut self, max_supersteps: usize) -> Self {
        self.config.max_supersteps = max_supersteps;
        self
    }

    /// Sets [`EngineConfig::check_monotonicity`].
    pub fn check_monotonicity(mut self, check: bool) -> Self {
        self.config.check_monotonicity = check;
        self
    }

    /// Sets [`EngineConfig::execution`].
    pub fn execution(mut self, execution: ExecutionMode) -> Self {
        self.config.execution = execution;
        self
    }

    /// Sets [`EngineConfig::transport`].
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.config.transport = transport;
        self
    }

    /// Sets [`EngineConfig::threads_per_worker`].
    pub fn threads_per_worker(mut self, threads: ThreadCount) -> Self {
        self.config.threads_per_worker = threads;
        self
    }

    /// Sets [`EngineConfig::read_timeout`].
    pub fn read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.config.read_timeout = timeout;
        self
    }

    /// Sets [`EngineConfig::checkpoint_every`].
    pub fn checkpoint_every(mut self, cadence: usize) -> Self {
        self.config.checkpoint_every = cadence;
        self
    }

    /// Sets [`EngineConfig::auth_token`].
    pub fn auth_token(mut self, token: impl Into<String>) -> Self {
        self.config.auth_token = Some(token.into());
        self
    }

    /// Sets [`EngineConfig::run_id`].
    pub fn run_id(mut self, run_id: u32) -> Self {
        self.config.run_id = run_id;
        self
    }

    /// Sets [`EngineConfig::capture_converged`].
    pub fn capture_converged(mut self, capture: bool) -> Self {
        self.config.capture_converged = capture;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// Errors produced by [`GrapeEngine::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The fragment list was empty.
    NoFragments,
    /// The superstep limit was reached before the fixpoint.
    SuperstepLimit(usize),
    /// A worker thread panicked (the payload carries the panic message).
    WorkerPanic(String),
    /// The transport lost contact with a worker (disconnect or read
    /// timeout); see [`TransportError`].
    Transport(TransportError),
    /// A worker was lost and recovery could not resume the run: respawning
    /// the replacement failed, or a single worker exhausted its per-worker
    /// crash-loop budget (replacements kept dying).
    RecoveryFailed(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::NoFragments => write!(f, "no fragments to run on"),
            RunError::SuperstepLimit(n) => {
                write!(
                    f,
                    "no fixpoint after {n} supersteps (non-monotonic program?)"
                )
            }
            RunError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            RunError::Transport(err) => write!(f, "transport failure: {err}"),
            RunError::RecoveryFailed(msg) => write!(f, "recovery failed: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Bookkeeping the coordinator keeps while a run is recoverable: everything
/// needed to rebuild a lost worker's world — its border→slot mapping, its
/// last accepted checkpoint, and the log of commands sent since that
/// checkpoint — plus the run epoch that fences stale traffic. Built by
/// [`GrapeEngine::run_coordinator_recoverable`].
struct RecoveryCtx<'a, V> {
    /// Per-fragment border→slot mapping (what Init shipped), re-shipped via
    /// [`CoordCommand::Resume`] to a replacement worker.
    fragment_slots: Vec<Vec<u32>>,
    /// Each worker's checkpoint from its last accepted checkpoint-bearing
    /// report.
    checkpoints: Vec<Option<CheckpointState<V>>>,
    /// Every evaluation command sent to each worker since its last accepted
    /// checkpoint, replayed in order to a replacement after its state is
    /// restored. Bounded by the checkpoint cadence: a fresh checkpoint
    /// clears the log, so it holds at most ~`checkpoint_every` entries (a
    /// program without snapshot support never checkpoints, and its log is
    /// its full lineage — replaying it from PEval is still deterministic).
    log: Vec<Vec<CoordCommand<V>>>,
    /// Per-worker recovery attempts, the crash-loop budget: a single worker
    /// may be recovered at most [`MAX_RECOVERIES`] times, with deterministic
    /// exponential backoff between repeated respawns of the same worker.
    attempts: Vec<usize>,
    /// Current run epoch; bumped on every recovery so frames from the dead
    /// connection are fenced at the transport.
    epoch: u32,
    /// How many recoveries this run performed in total (reported in
    /// [`RunStats::recoveries`]).
    recoveries: usize,
    /// Produces a replacement connection for `(worker, epoch)`: respawn or
    /// reconnect, re-ship the fragment, and swap the transport's endpoint
    /// (e.g. [`transport::FramedStreamCoord::replace_worker`]).
    recover: &'a mut dyn FnMut(usize, u32) -> Result<(), String>,
}

/// Per-worker crash-loop budget: one worker may be recovered at most this
/// many times per run before the coordinator gives up, so a bad host that
/// kills every replacement placed on it surfaces as a typed error instead of
/// an endless respawn loop. The budget is per worker — concurrent failures
/// across the fleet do not consume each other's.
const MAX_RECOVERIES: usize = 5;

/// Base delay of the deterministic exponential backoff between repeated
/// respawns of the *same* worker. The first recovery of a worker is
/// immediate; its n-th waits `BASE << min(n - 2, DOUBLINGS)` first.
const RESPAWN_BACKOFF_BASE: Duration = Duration::from_millis(20);

/// Cap on backoff doublings (maximum sleep = base << cap = 320ms).
const RESPAWN_BACKOFF_DOUBLINGS: u32 = 4;

/// The answer of a run plus its statistics.
#[derive(Debug)]
pub struct GrapeResult<O> {
    /// `Q(G)` as produced by Assemble.
    pub output: O,
    /// Timing / communication statistics.
    pub stats: RunStats,
    /// Per-fragment converged partial snapshots, captured right before
    /// Assemble when [`EngineConfig::capture_converged`] is set and the
    /// program supports [`PieProgram::snapshot_partial`]; `None` otherwise.
    pub converged: Option<Vec<Vec<u8>>>,
}

/// The parallel query engine: wraps a [`PieProgram`] and executes it over
/// fragmented graphs.
#[derive(Debug, Clone)]
pub struct GrapeEngine<P> {
    program: Arc<P>,
    config: EngineConfig,
}

impl<P: PieProgram> GrapeEngine<P> {
    /// Wraps a program with the default configuration.
    pub fn new(program: P) -> Self {
        Self {
            program: Arc::new(program),
            config: EngineConfig::default(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Access to the wrapped program.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Partitions `graph` with `assignment`, builds the fragments and runs
    /// the query.
    pub fn run_on_graph(
        &self,
        query: &P::Query,
        graph: &CsrGraph<P::VertexData, P::EdgeData>,
        assignment: &PartitionAssignment,
    ) -> Result<GrapeResult<P::Output>, RunError> {
        let fragments = build_fragments(graph, assignment);
        self.run(query, &fragments)
    }

    /// Runs the simultaneous fixpoint over prebuilt fragments.
    pub fn run(
        &self,
        query: &P::Query,
        fragments: &[Fragment<P::VertexData, P::EdgeData>],
    ) -> Result<GrapeResult<P::Output>, RunError> {
        let n = fragments.len();
        if n == 0 {
            return Err(RunError::NoFragments);
        }
        let started = Instant::now();

        // One set of communication counters shared by both directions of
        // whichever transport backend the config selects.
        let stats = Arc::new(CommStats::new());
        let run_result = match self.config.transport {
            TransportKind::InProcess => {
                let (coord, workers) = transport::typed_channel_pair(n, stats);
                self.drive(query, fragments, coord, workers)
            }
            TransportKind::Framed => {
                let (coord, workers) = transport::framed_channel_pair(n, stats);
                self.drive(query, fragments, coord, workers)
            }
        };

        let (partials, mut stats_out) = run_result?;
        let converged = if self.config.capture_converged {
            let mut snaps = Vec::with_capacity(partials.len());
            for partial in &partials {
                match self.program.snapshot_partial(partial) {
                    Some(bytes) => snaps.push(bytes),
                    None => {
                        snaps.clear();
                        break;
                    }
                }
            }
            (snaps.len() == partials.len()).then_some(snaps)
        } else {
            None
        };
        let output = self.program.assemble(partials);
        stats_out.run_id = self.config.run_id;
        stats_out.wall_time = started.elapsed();
        Ok(GrapeResult {
            output,
            stats: stats_out,
            converged,
        })
    }

    /// Runs the fixpoint *warm*: instead of a cold PEval, each fragment with
    /// a seed in `seeds` (its snapshot from a previous converged run on the
    /// pre-mutation graph, indexed by fragment id) is restored via
    /// [`PieProgram::seed_partial`] and re-evaluated only from the `dirty`
    /// vertices of the mutations applied since — see [`crate::converged`].
    ///
    /// Falls back to a cold [`GrapeEngine::run`] when the program rejects
    /// the mutation `profile` ([`PieProgram::incremental_eligible`]); a
    /// fragment whose seed is `None` (or whose `seed_partial` declines) runs
    /// the cold PEval individually. For eligible profiles the result is
    /// bit-identical to the cold run on the mutated fragments.
    pub fn run_incremental(
        &self,
        query: &P::Query,
        fragments: &[Fragment<P::VertexData, P::EdgeData>],
        seeds: Vec<Option<Vec<u8>>>,
        dirty: &[VertexId],
        profile: &MutationProfile,
    ) -> Result<GrapeResult<P::Output>, RunError> {
        if !self.program.incremental_eligible(profile) {
            return self.run(query, fragments);
        }
        let seeded = GrapeEngine {
            program: Arc::new(Seeded::new(
                Arc::clone(&self.program),
                seeds,
                dirty.to_vec(),
                *profile,
            )),
            config: self.config.clone(),
        };
        seeded.run(query, fragments)
    }

    /// Runs only the coordinator half of the fixpoint over an external
    /// transport whose workers live elsewhere (other processes or hosts, via
    /// [`transport::FramedStreamCoord`]). The fragments are used for the
    /// slot handshake and routing tables; evaluation happens wherever the
    /// workers run [`run_worker`] on their own fragment replicas.
    ///
    /// Returns the run statistics; partial results stay with the workers
    /// (shipping them home is a driver-level concern — see the
    /// `grape-worker` binary's digest protocol).
    pub fn run_coordinator(
        &self,
        fragments: &[Fragment<P::VertexData, P::EdgeData>],
        transport: &impl CoordTransport<P::Value>,
    ) -> Result<RunStats, RunError> {
        let n = fragments.len();
        if n == 0 {
            return Err(RunError::NoFragments);
        }
        let started = Instant::now();
        let (mut slots, fragment_slots): (SlotTable<P::Value>, Vec<Vec<u32>>) =
            SlotTable::build(fragments, n);
        for (f, border_slots) in fragment_slots.into_iter().enumerate() {
            transport.send(f, CoordCommand::Init { border_slots });
        }
        let program = Arc::clone(&self.program);
        let coordination = Self::coordinate(
            &program,
            &self.config,
            n,
            &mut slots,
            transport,
            false,
            None,
            || {
                let reports = transport.recv_blocking();
                if reports.is_empty() {
                    return Err(match transport.failure() {
                        Some(err) => RunError::Transport(err),
                        None => {
                            RunError::WorkerPanic("a worker disconnected before reporting".into())
                        }
                    });
                }
                Ok(reports)
            },
        );
        // Always release the workers, even on error.
        for f in 0..n {
            transport.send(f, CoordCommand::Finish);
        }
        let mut stats_out = coordination?;
        stats_out.num_workers = n;
        stats_out.program = program.name().to_string();
        stats_out.run_id = self.config.run_id;
        stats_out.wall_time = started.elapsed();
        Ok(stats_out)
    }

    /// [`GrapeEngine::run_coordinator`] with worker-loss recovery: workers
    /// attach checkpoints on the [`EngineConfig::checkpoint_every`] cadence,
    /// and when the transport loses workers the coordinator recovers the
    /// whole batch — for each victim it bumps the run epoch, asks `recover`
    /// for a replacement connection (respawn + fragment re-ship +
    /// [`transport::FramedStreamCoord::replace_worker`]), restores the lost
    /// worker's last checkpoint via [`CoordCommand::Resume`], replays the
    /// logged commands sent since that checkpoint in order, and continues.
    /// Replayed intermediate reports are deduplicated, so recovered runs are
    /// bit-identical to undisturbed ones for any cadence: same supersteps,
    /// same folded values, same final answer. A replacement dying mid-replay
    /// re-enters recovery through the same path; each worker has a
    /// crash-loop budget of [`MAX_RECOVERIES`] attempts with deterministic
    /// exponential backoff between repeated respawns.
    ///
    /// `recover` is called with `(worker, new_epoch)` and must leave the
    /// transport ready to ship commands to the replacement at that epoch.
    pub fn run_coordinator_recoverable(
        &self,
        fragments: &[Fragment<P::VertexData, P::EdgeData>],
        transport: &impl CoordTransport<P::Value>,
        recover: &mut dyn FnMut(usize, u32) -> Result<(), String>,
    ) -> Result<RunStats, RunError> {
        let n = fragments.len();
        if n == 0 {
            return Err(RunError::NoFragments);
        }
        let started = Instant::now();
        let (mut slots, fragment_slots): (SlotTable<P::Value>, Vec<Vec<u32>>) =
            SlotTable::build(fragments, n);
        for (f, border_slots) in fragment_slots.iter().enumerate() {
            transport.send(
                f,
                CoordCommand::Init {
                    border_slots: border_slots.clone(),
                },
            );
        }
        let mut rec = RecoveryCtx {
            fragment_slots,
            checkpoints: (0..n).map(|_| None).collect(),
            log: (0..n).map(|_| Vec::new()).collect(),
            attempts: vec![0; n],
            epoch: self.config.run_id,
            recoveries: 0,
            recover,
        };
        let program = Arc::clone(&self.program);
        let coordination = Self::coordinate(
            &program,
            &self.config,
            n,
            &mut slots,
            transport,
            false,
            Some(&mut rec),
            || {
                let reports = transport.recv_blocking();
                if reports.is_empty() {
                    return Err(match transport.failure() {
                        Some(err) => RunError::Transport(err),
                        None => {
                            RunError::WorkerPanic("a worker disconnected before reporting".into())
                        }
                    });
                }
                Ok(reports)
            },
        );
        // Always release the workers, even on error.
        for f in 0..n {
            transport.send(f, CoordCommand::Finish);
        }
        let mut stats_out = coordination?;
        stats_out.recoveries = rec.recoveries;
        stats_out.num_workers = n;
        stats_out.program = program.name().to_string();
        stats_out.run_id = self.config.run_id;
        stats_out.wall_time = started.elapsed();
        Ok(stats_out)
    }

    /// Handles a lost-worker transport error inside the gather loop:
    /// identifies the *whole* lost set (every failure the transport has
    /// recorded, so same-superstep losses recover as one batch), spins up
    /// replacements at bumped epochs, and re-seeds each with its checkpoint
    /// plus the logged commands sent since it.
    #[allow(clippy::too_many_arguments)]
    fn recover_lost_workers(
        rec: &mut RecoveryCtx<'_, P::Value>,
        err: &RunError,
        transport: &impl CoordTransport<P::Value>,
        superstep: usize,
        awaiting: &[bool],
        got: &[bool],
        n: usize,
    ) -> Result<(), RunError> {
        // Only worker loss is recoverable; everything else propagates.
        let RunError::Transport(TransportError::WorkerLost { .. }) = err else {
            return Err(err.clone());
        };
        // Drain every recorded failure so concurrent losses are handled in
        // one wave instead of one round trip through the gather loop each.
        let mut lost: Vec<(usize, String)> = Vec::new();
        let mut anonymous = false;
        for failure in transport.failures() {
            let TransportError::WorkerLost { worker, reason } = failure;
            match worker {
                Some(w) if !lost.iter().any(|(l, _)| *l == w) => lost.push((w, reason)),
                Some(_) => {}
                None => anonymous = true,
            }
        }
        if anonymous {
            // A read timeout fires without naming anyone: whoever still owes
            // this superstep a report is considered lost.
            for w in 0..n {
                if awaiting[w] && !got[w] && !lost.iter().any(|(l, _)| *l == w) {
                    lost.push((w, "no report within the read timeout".into()));
                }
            }
        }
        if lost.is_empty() {
            return Err(err.clone());
        }
        lost.sort_by_key(|&(w, _)| w);
        for (w, reason) in lost {
            rec.attempts[w] += 1;
            if rec.attempts[w] > MAX_RECOVERIES {
                return Err(RunError::RecoveryFailed(format!(
                    "worker {w} exhausted its crash-loop budget of {MAX_RECOVERIES} \
                     recoveries (lost again: {reason})"
                )));
            }
            // Deterministic exponential backoff between repeated respawns of
            // the same worker: its first recovery is immediate, a
            // crash-looping one waits 20ms, 40ms, ... capped at 320ms.
            if rec.attempts[w] > 1 {
                let doublings = (rec.attempts[w] as u32 - 2).min(RESPAWN_BACKOFF_DOUBLINGS);
                std::thread::sleep(RESPAWN_BACKOFF_BASE * (1u32 << doublings));
            }
            rec.epoch += 1;
            rec.recoveries += 1;
            eprintln!(
                "coordinator: recovering worker {w} at superstep {superstep} \
                 (epoch {}, attempt {}): {reason}",
                rec.epoch, rec.attempts[w]
            );
            (rec.recover)(w, rec.epoch).map_err(|e| {
                RunError::RecoveryFailed(format!("could not replace worker {w}: {e}"))
            })?;
            // Restore the last checkpoint, then replay every command sent
            // since it, in order. The replacement re-evaluates those
            // supersteps deterministically and the gather loop drops the
            // replayed intermediate reports as out-of-phase, so only the
            // live superstep's report is folded. With no checkpoint at all
            // (a superstep-0 death, or a program without snapshot support)
            // Resume itself triggers a fresh PEval and the log holds the
            // full lineage since superstep 0 — same replay, longer.
            transport.send(
                w,
                CoordCommand::Resume {
                    superstep,
                    border_slots: rec.fragment_slots[w].clone(),
                    checkpoint: rec.checkpoints[w].clone(),
                },
            );
            for command in rec.log[w].clone() {
                transport.send(w, command);
            }
        }
        Ok(())
    }

    /// Runs the full fixpoint (coordinator + local workers) over an
    /// in-process transport pair built by the caller.
    fn drive<CT, WT>(
        &self,
        query: &P::Query,
        fragments: &[Fragment<P::VertexData, P::EdgeData>],
        coord: CT,
        worker_transports: Vec<WT>,
    ) -> Result<(Vec<P::Partial>, RunStats), RunError>
    where
        CT: CoordTransport<P::Value>,
        WT: DrainableWorkerTransport<P::Value>,
    {
        let n = fragments.len();
        // Stable aggregation slots: one per border vertex, with its routing
        // targets. Built once; reused every superstep. `fragment_slots[f]`
        // is the border→slot mapping the handshake ships to worker `f`.
        let (mut slots, fragment_slots): (SlotTable<P::Value>, Vec<Vec<u32>>) =
            SlotTable::build(fragments, n);

        // One-time handshake: each worker learns the slot of every border
        // vertex before PEval, so all superstep traffic is slot-addressed.
        // Sent before the workers spawn — the command channel is ordered, so
        // Init is always the first command a worker sees.
        for (f, border_slots) in fragment_slots.into_iter().enumerate() {
            coord.send(f, CoordCommand::Init { border_slots });
        }

        let program = Arc::clone(&self.program);
        let config = self.config.clone();
        let inline = match config.execution {
            ExecutionMode::Inline => true,
            ExecutionMode::Threads => false,
            ExecutionMode::Auto => {
                n == 1
                    || std::thread::available_parallelism()
                        .map(|p| p.get() <= 1)
                        .unwrap_or(false)
            }
        };
        let threads = config.threads_per_worker.resolve(n, inline);

        if inline {
            // ---------------- inline driver ----------------
            // Every worker runs on this thread; the exchange still flows
            // through the same transport so the accounting and the message
            // protocol are identical to the threaded mode. The workers run
            // serialized, so they share one intra-fragment pool.
            let pool = Arc::new(ThreadPool::new(threads));
            let mut workers: Vec<WorkerRuntime<'_, P>> = fragments
                .iter()
                .map(|fragment| {
                    let mut w = WorkerRuntime::new(&*program, query, fragment, Arc::clone(&pool));
                    w.checkpoint_every = config.checkpoint_every;
                    w
                })
                .collect();
            let coordination =
                Self::coordinate(&program, &config, n, &mut slots, &coord, true, None, || {
                    // Run every worker with queued commands, then hand their
                    // reports to the coordinator.
                    for (worker, wt) in workers.iter_mut().zip(&worker_transports) {
                        for command in wt.drain() {
                            if let HandleOutcome::Reply(report) = worker.handle(command) {
                                wt.send(report);
                            }
                        }
                    }
                    let reports = coord.drain();
                    if reports.is_empty() {
                        return Err(RunError::WorkerPanic("no worker produced a report".into()));
                    }
                    Ok(reports)
                });
            coordination.map(|mut stats_out| {
                stats_out.num_workers = n;
                stats_out.program = program.name().to_string();
                let partials = workers
                    .into_iter()
                    .map(|w| w.into_partial().expect("every worker ran PEval"))
                    .collect();
                (partials, stats_out)
            })
        } else {
            std::thread::scope(|scope| {
                // ---------------- threaded driver ----------------
                let mut handles = Vec::with_capacity(n);
                let checkpoint_every = config.checkpoint_every;
                for (fragment, wt) in fragments.iter().zip(worker_transports) {
                    let program = Arc::clone(&program);
                    handles.push(scope.spawn(move || {
                        run_worker_with(&*program, query, fragment, &wt, threads, checkpoint_every)
                            .expect("every worker ran PEval")
                    }));
                }

                // ---------------- coordinator ----------------
                let coordination = Self::coordinate(
                    &program,
                    &config,
                    n,
                    &mut slots,
                    &coord,
                    false,
                    None,
                    || {
                        let reports = coord.recv_blocking();
                        if reports.is_empty() {
                            return Err(match coord.failure() {
                                Some(err) => RunError::Transport(err),
                                None => RunError::WorkerPanic(
                                    "a worker disconnected before reporting".into(),
                                ),
                            });
                        }
                        Ok(reports)
                    },
                );

                // Always release the workers, even on error, so the scope can
                // join them.
                for f in 0..n {
                    coord.send(f, CoordCommand::Finish);
                }
                let mut partials = Vec::with_capacity(n);
                let mut panic_message = None;
                for handle in handles {
                    match handle.join() {
                        Ok(partial) => partials.push(partial),
                        Err(payload) => {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "unknown panic".to_string());
                            panic_message = Some(msg);
                        }
                    }
                }
                if let Some(msg) = panic_message {
                    return Err(RunError::WorkerPanic(msg));
                }
                let mut stats_out = coordination?;
                stats_out.num_workers = n;
                stats_out.program = program.name().to_string();
                Ok((partials, stats_out))
            })
        }
    }

    /// The coordinator's superstep loop. Returns the (partially filled) run
    /// statistics once the fixpoint is reached.
    ///
    /// `pump` produces the next batch of worker reports: the threaded and
    /// remote drivers block on the transport, the inline driver runs the
    /// workers. `serialized` declares that the workers execute sequentially
    /// on the caller's thread, in which case the critical path through a
    /// superstep is the *sum* of the workers' evaluation times rather than
    /// their max.
    #[allow(clippy::too_many_arguments)]
    fn coordinate(
        program: &Arc<P>,
        config: &EngineConfig,
        n: usize,
        slots: &mut SlotTable<P::Value>,
        transport: &impl CoordTransport<P::Value>,
        serialized: bool,
        mut recovery: Option<&mut RecoveryCtx<'_, P::Value>>,
        mut pump: impl FnMut() -> Result<Vec<(usize, WorkerReport<P::Value>)>, RunError>,
    ) -> Result<RunStats, RunError> {
        let stats: Arc<CommStats> = transport.comm_stats();
        let mut run_stats = RunStats::default();
        // Last folded value of each non-border vertex a program proposed,
        // kept only for the monotonicity diagnostic (border vertices use the
        // slot table's `last_value`).
        let mut stray_last: HashMap<VertexId, P::Value> = HashMap::new();
        let mut pending = n;
        let mut superstep = 0usize;
        // Which workers the current superstep's gather is waiting on, and who
        // has already been counted — the dedup state recovery needs to drop
        // replayed duplicates and out-of-phase reports.
        let mut awaiting = vec![true; n];
        let mut got = vec![false; n];
        // Superstep-scoped buffers, reused across the whole run. Report
        // buffers received from the workers are recycled through `pool` into
        // the next superstep's command buffers, so the steady-state loop
        // allocates nothing.
        let mut reports: Vec<GatheredReport<P::Value>> = Vec::with_capacity(n);
        let mut pool: Vec<Vec<(u32, P::Value)>> = Vec::with_capacity(n);
        let mut outbox: Vec<Vec<(u32, P::Value)>> = (0..n).map(|_| Vec::new()).collect();

        loop {
            // Gather the reports of every worker that evaluated this superstep.
            while reports.len() < pending {
                let batch = match pump() {
                    Ok(batch) => batch,
                    Err(err) => {
                        let Some(rec) = recovery.as_deref_mut() else {
                            return Err(err);
                        };
                        Self::recover_lost_workers(
                            rec, &err, transport, superstep, &awaiting, &got, n,
                        )?;
                        continue;
                    }
                };
                for (from, report) in batch {
                    let WorkerReport::Done {
                        superstep: reported,
                        changes,
                        strays,
                        checkpoint,
                        eval_seconds,
                    } = report;
                    if let Some(rec) = recovery.as_deref_mut() {
                        // Recovery replays supersteps, so a report is only
                        // accepted when it answers the gather in progress:
                        // right superstep, from a worker we are waiting on,
                        // not yet counted. Anything else is an echo of work
                        // already folded (e.g. a replacement worker's replay
                        // racing a report the dead worker managed to flush).
                        if reported != superstep || !awaiting[from] || got[from] {
                            eprintln!(
                                "coordinator: dropping out-of-phase report from worker {from} \
                                 (superstep {reported}, gathering {superstep})"
                            );
                            continue;
                        }
                        if let Some(cp) = checkpoint {
                            // A fresh checkpoint supersedes the command log:
                            // everything sent up to this report is baked into
                            // the snapshot, so the replayable history resets.
                            // This is what bounds the log to the cadence.
                            rec.checkpoints[from] = Some(cp);
                            rec.log[from].clear();
                        }
                    }
                    got[from] = true;
                    reports.push((from, changes, strays, eval_seconds));
                }
            }

            // Fold the slot-addressed proposals into the per-border-vertex
            // slots — two indexed loads per changed value, no hashing. Each
            // slot keeps the aggregated value plus a worker bitmask of who
            // already holds it (those workers do not need an echo).
            //
            // Fold in worker order, not arrival order: concurrent transports
            // deliver reports in whatever order the wire produced them, and
            // order-sensitive aggregates (float sums, CF's averaging) must
            // still fold identically to the serialized reference.
            reports.sort_unstable_by_key(|&(from, ..)| from);
            slots.begin_superstep();
            let mut changed_parameters = 0usize;
            let mut max_eval = 0.0f64;
            let mut total_eval = 0.0f64;
            let active_workers = reports.len();
            // Proposals for vertices on no fragment's border cannot be
            // routed, but the monotonicity diagnostic still folds them here
            // so it keeps catching programs that update the wrong vertices.
            let mut stray: HashMap<VertexId, P::Value> = HashMap::new();
            for (from, mut changes, strays, eval_seconds) in reports.drain(..) {
                max_eval = max_eval.max(eval_seconds);
                total_eval += eval_seconds;
                changed_parameters += changes.len() + strays.len();
                for &(slot, ref value) in &changes {
                    slots.fold(slot, from, value, |a, b| program.aggregate(a, b));
                }
                // Recycle the report buffer into the command-buffer pool.
                changes.clear();
                pool.push(changes);
                if config.check_monotonicity {
                    for (v, value) in strays {
                        match stray.get_mut(&v) {
                            None => {
                                stray.insert(v, value);
                            }
                            Some(current) => *current = program.aggregate(current, &value),
                        }
                    }
                }
            }

            if config.check_monotonicity {
                for idx in 0..slots.touched.len() {
                    let slot = slots.touched[idx] as usize;
                    let value = slots.value[slot]
                        .as_ref()
                        .expect("touched slots carry values");
                    if let Some(old) = &slots.last_value[slot] {
                        if program.monotonic(old, value) == Some(false) {
                            run_stats.monotonicity_violations += 1;
                        }
                    }
                    slots.last_value[slot] = Some(value.clone());
                }
                for (v, value) in stray {
                    if let Some(old) = stray_last.get(&v) {
                        if program.monotonic(old, &value) == Some(false) {
                            run_stats.monotonicity_violations += 1;
                        }
                    }
                    stray_last.insert(v, value);
                }
            }

            // Close the books on this superstep. In serialized (inline)
            // execution the workers ran back to back on this thread, so the
            // superstep's critical path through evaluation is their summed
            // time.
            let critical_eval = if serialized { total_eval } else { max_eval };
            let comm = stats.end_superstep(superstep);
            let trace = SuperstepTrace {
                superstep,
                active_workers,
                max_eval_seconds: max_eval,
                total_eval_seconds: total_eval,
                changed_parameters,
                changed_slots: slots.touched.len(),
                published_updates: 0,
                messages: comm.messages,
                bytes: comm.bytes,
            };
            if superstep == 0 {
                run_stats.peval_seconds = critical_eval;
            } else {
                run_stats.inceval_seconds += critical_eval;
            }
            run_stats.history.push(trace);
            run_stats.supersteps = superstep + 1;

            // Fixpoint: no worker changed any update parameter.
            if changed_parameters == 0 {
                break;
            }
            if superstep + 1 >= config.max_supersteps {
                return Err(RunError::SuperstepLimit(config.max_supersteps));
            }

            // Route the aggregated values to every fragment that has the
            // vertex on its border, except fragments already holding the
            // aggregated value (one bit test per recipient). Walks only the
            // touched slots: O(changed), never a full-border republication.
            let mut published = 0usize;
            for &slot in &slots.touched {
                let value = slots.value[slot as usize]
                    .as_ref()
                    .expect("touched slots carry values");
                for &f in &slots.homes[slot as usize] {
                    if !slots.holds(slot, f) {
                        outbox[f].push((slot, value.clone()));
                        published += 1;
                    }
                }
            }
            run_stats
                .history
                .last_mut()
                .expect("trace just pushed")
                .published_updates = published;
            superstep += 1;
            pending = 0;
            got.iter_mut().for_each(|g| *g = false);
            for (f, buffer) in outbox.iter_mut().enumerate() {
                awaiting[f] = !buffer.is_empty();
                if !buffer.is_empty() {
                    let updates = std::mem::replace(buffer, pool.pop().unwrap_or_default());
                    let command = CoordCommand::IncEval { superstep, updates };
                    if let Some(rec) = recovery.as_deref_mut() {
                        // Log what is in flight: if this worker dies before
                        // its next checkpoint, its replacement restores the
                        // last checkpoint and replays this log in order.
                        rec.log[f].push(command.clone());
                    }
                    transport.send(f, command);
                    pending += 1;
                }
            }
            if pending == 0 {
                // Changes happened but every interested fragment already
                // holds the aggregated values: fixpoint.
                break;
            }
        }

        run_stats.messages = stats.messages();
        run_stats.bytes = stats.bytes();
        Ok(run_stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::generators::{barabasi_albert, road_network, RoadNetworkConfig};
    use grape_graph::GraphBuilder;
    use grape_partition::{BuiltinStrategy, HashPartitioner, Partitioner};

    /// Connected components by min-label propagation: the update parameter of
    /// a border vertex is the smallest vertex id known to be connected to it.
    struct MinLabelCc;

    impl PieProgram for MinLabelCc {
        type Query = ();
        type VertexData = ();
        type EdgeData = f64;
        type Value = u64;
        type Partial = HashMap<VertexId, u64>;
        type Output = HashMap<VertexId, u64>;

        fn peval(
            &self,
            _q: &(),
            fragment: &Fragment<(), f64>,
            ctx: &mut PieContext<u64>,
        ) -> Self::Partial {
            // Local label propagation to convergence (sequential CC on F_i).
            let mut label: HashMap<VertexId, u64> =
                fragment.graph.vertices().map(|v| (v, v)).collect();
            let mut changed = true;
            while changed {
                changed = false;
                for (s, d, _) in fragment.graph.edges() {
                    let ls = label[&s];
                    let ld = label[&d];
                    let m = ls.min(ld);
                    if ls != m {
                        label.insert(s, m);
                        changed = true;
                    }
                    if ld != m {
                        label.insert(d, m);
                        changed = true;
                    }
                }
            }
            for &b in fragment.border_vertices() {
                ctx.update(b, label[&b]);
            }
            label
        }

        fn inceval(
            &self,
            _q: &(),
            fragment: &Fragment<(), f64>,
            partial: &mut Self::Partial,
            messages: &[(VertexId, u64)],
            ctx: &mut PieContext<u64>,
        ) {
            let mut changed = false;
            for (v, incoming) in messages {
                if let Some(current) = partial.get_mut(v) {
                    if *incoming < *current {
                        *current = *incoming;
                        changed = true;
                    }
                }
            }
            while changed {
                changed = false;
                for (s, d, _) in fragment.graph.edges() {
                    let ls = partial[&s];
                    let ld = partial[&d];
                    let m = ls.min(ld);
                    if ls != m {
                        partial.insert(s, m);
                        changed = true;
                    }
                    if ld != m {
                        partial.insert(d, m);
                        changed = true;
                    }
                }
            }
            for &b in fragment.border_vertices() {
                let value = partial[&b];
                ctx.update(b, value);
            }
        }

        fn assemble(&self, partials: Vec<Self::Partial>) -> Self::Output {
            // Keep the smallest label seen for each vertex (mirrors may carry
            // stale larger labels).
            let mut out: HashMap<VertexId, u64> = HashMap::new();
            for partial in partials {
                for (v, label) in partial {
                    out.entry(v)
                        .and_modify(|l| *l = (*l).min(label))
                        .or_insert(label);
                }
            }
            out
        }

        fn aggregate(&self, a: &u64, b: &u64) -> u64 {
            *a.min(b)
        }

        fn monotonic(&self, old: &u64, new: &u64) -> Option<bool> {
            Some(new <= old)
        }

        fn name(&self) -> &str {
            "min-label-cc"
        }
    }

    fn reference_cc(graph: &CsrGraph<(), f64>) -> HashMap<VertexId, u64> {
        grape_graph::metrics::weakly_connected_components(graph)
    }

    #[test]
    fn cc_matches_reference_on_power_law_graph() {
        let g = barabasi_albert(500, 3, 21).unwrap();
        let assignment = HashPartitioner.partition(&g, 4);
        let engine = GrapeEngine::new(MinLabelCc).with_config(EngineConfig {
            check_monotonicity: true,
            ..Default::default()
        });
        let result = engine.run_on_graph(&(), &g, &assignment).unwrap();
        let expected = reference_cc(&g);
        for v in g.vertices() {
            assert_eq!(result.output[&v], expected[&v], "vertex {v}");
        }
        assert_eq!(result.stats.monotonicity_violations, 0);
        assert!(result.stats.supersteps >= 1);
        assert_eq!(result.stats.num_workers, 4);
        assert_eq!(result.stats.program, "min-label-cc");
    }

    #[test]
    fn cc_on_disconnected_graph_keeps_components_apart() {
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..10u64 {
            b.add_edge(v, (v + 1) % 10, 1.0);
        }
        for v in 100..105u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = HashPartitioner.partition(&g, 3);
        let result = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        for v in 0..10u64 {
            assert_eq!(result.output[&v], 0);
        }
        for v in 100..=105u64 {
            assert_eq!(result.output[&v], 100);
        }
    }

    #[test]
    fn single_fragment_needs_one_superstep() {
        let g = barabasi_albert(100, 2, 3).unwrap();
        let assignment = HashPartitioner.partition(&g, 1);
        let result = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        assert_eq!(result.stats.supersteps, 1, "no borders, PEval suffices");
        assert_eq!(result.stats.messages, result.stats.history[0].messages);
        assert!(result.output.values().all(|&l| l == 0));
    }

    #[test]
    fn more_workers_more_supersteps_on_chains() {
        // A long chain partitioned into many contiguous ranges needs label
        // propagation across every boundary: supersteps grow with k.
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..64u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let few = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &grape_partition::RangePartitioner.partition(&g, 2))
            .unwrap();
        let many = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &grape_partition::RangePartitioner.partition(&g, 8))
            .unwrap();
        assert!(many.stats.supersteps > few.stats.supersteps);
        assert!(many.stats.messages > few.stats.messages);
        // Both still compute the right answer.
        assert!(many.output.values().all(|&l| l == 0));
        assert!(few.output.values().all(|&l| l == 0));
    }

    #[test]
    fn empty_fragment_list_is_an_error() {
        let engine = GrapeEngine::new(MinLabelCc);
        let err = engine.run(&(), &[]).unwrap_err();
        assert_eq!(err, RunError::NoFragments);
        assert!(err.to_string().contains("no fragments"));
    }

    #[test]
    fn superstep_limit_is_enforced() {
        /// A deliberately non-monotonic program that flips a border value
        /// forever.
        struct Oscillator;
        impl PieProgram for Oscillator {
            type Query = ();
            type VertexData = ();
            type EdgeData = f64;
            type Value = u64;
            type Partial = u64;
            type Output = u64;
            fn peval(
                &self,
                _q: &(),
                fragment: &Fragment<(), f64>,
                ctx: &mut PieContext<u64>,
            ) -> u64 {
                for &b in fragment.border_vertices() {
                    ctx.update(b, fragment.id as u64);
                }
                0
            }
            fn inceval(
                &self,
                _q: &(),
                fragment: &Fragment<(), f64>,
                partial: &mut u64,
                _messages: &[(VertexId, u64)],
                ctx: &mut PieContext<u64>,
            ) {
                *partial += 1;
                for &b in fragment.border_vertices() {
                    // Alternate the value every superstep: never converges.
                    ctx.update(b, *partial % 2 + fragment.id as u64 * 10);
                }
            }
            fn assemble(&self, partials: Vec<u64>) -> u64 {
                partials.into_iter().sum()
            }
            fn aggregate(&self, a: &u64, b: &u64) -> u64 {
                *a.min(b)
            }
            fn monotonic(&self, old: &u64, new: &u64) -> Option<bool> {
                Some(new <= old)
            }
        }
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..16u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = grape_partition::RangePartitioner.partition(&g, 2);
        let engine = GrapeEngine::new(Oscillator).with_config(EngineConfig {
            max_supersteps: 10,
            check_monotonicity: true,
            ..Default::default()
        });
        let err = engine.run_on_graph(&(), &g, &assignment).unwrap_err();
        assert_eq!(err, RunError::SuperstepLimit(10));
    }

    /// A probe program for the coordinator's echo suppression: PEval proposes
    /// a per-fragment value for every border vertex and IncEval records every
    /// message that arrives (without proposing anything new, so the run
    /// terminates after one exchange).
    struct EchoProbe;

    impl PieProgram for EchoProbe {
        type Query = ();
        type VertexData = ();
        type EdgeData = f64;
        type Value = u64;
        /// Messages received by this fragment, in arrival order.
        type Partial = Vec<(VertexId, u64)>;
        /// The per-fragment message logs, in fragment order.
        type Output = Vec<Vec<(VertexId, u64)>>;

        fn peval(
            &self,
            _q: &(),
            fragment: &Fragment<(), f64>,
            ctx: &mut PieContext<u64>,
        ) -> Self::Partial {
            // Fragment 0 proposes 0, fragment 1 proposes 100, ...: the
            // aggregate (min) is always fragment 0's proposal.
            for &b in fragment.border_vertices() {
                ctx.update(b, fragment.id as u64 * 100);
            }
            Vec::new()
        }

        fn inceval(
            &self,
            _q: &(),
            _fragment: &Fragment<(), f64>,
            partial: &mut Self::Partial,
            messages: &[(VertexId, u64)],
            _ctx: &mut PieContext<u64>,
        ) {
            partial.extend_from_slice(messages);
        }

        fn assemble(&self, partials: Vec<Self::Partial>) -> Self::Output {
            partials
        }

        fn aggregate(&self, a: &u64, b: &u64) -> u64 {
            *a.min(b)
        }
    }

    #[test]
    fn echo_suppression_prevents_self_messages() {
        // Chain 0-1-2-3 split in two: border vertices {1, 2} on both sides.
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..3u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = grape_partition::RangePartitioner.partition(&g, 2);
        let result = GrapeEngine::new(EchoProbe)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        // Fragment 0 proposed the winning value 0 for both border vertices,
        // so it must receive no echo; fragment 1 receives the fold.
        assert!(
            result.output[0].is_empty(),
            "the proposer of the aggregated value got echoed its own message: {:?}",
            result.output[0]
        );
        assert_eq!(result.output[1], vec![(1, 0), (2, 0)]);
        assert_eq!(result.stats.supersteps, 2);
    }

    #[test]
    fn non_selective_aggregate_reaches_every_proposer() {
        /// A sum aggregate: the fold of two different proposals equals
        /// *neither* of them, so no proposer holds the folded value and
        /// every fragment must receive it (a stale holder bit here would
        /// leave one fragment with its own, wrong value).
        struct SumProbe;
        impl PieProgram for SumProbe {
            type Query = ();
            type VertexData = ();
            type EdgeData = f64;
            type Value = u64;
            type Partial = Vec<(VertexId, u64)>;
            type Output = Vec<Vec<(VertexId, u64)>>;
            fn peval(
                &self,
                _q: &(),
                fragment: &Fragment<(), f64>,
                ctx: &mut PieContext<u64>,
            ) -> Self::Partial {
                for &b in fragment.border_vertices() {
                    ctx.update(b, 10 + fragment.id as u64);
                }
                Vec::new()
            }
            fn inceval(
                &self,
                _q: &(),
                _fragment: &Fragment<(), f64>,
                partial: &mut Self::Partial,
                messages: &[(VertexId, u64)],
                _ctx: &mut PieContext<u64>,
            ) {
                partial.extend_from_slice(messages);
            }
            fn assemble(&self, partials: Vec<Self::Partial>) -> Self::Output {
                partials
            }
            fn aggregate(&self, a: &u64, b: &u64) -> u64 {
                *a + *b
            }
        }
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..3u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = grape_partition::RangePartitioner.partition(&g, 2);
        let result = GrapeEngine::new(SumProbe)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        // Proposals 10 and 11 fold to 21 for both border vertices {1, 2};
        // neither fragment holds 21, so both must be told.
        for (f, received) in result.output.iter().enumerate() {
            assert_eq!(
                received,
                &vec![(1, 21), (2, 21)],
                "fragment {f} must receive the folded sum"
            );
        }
    }

    #[test]
    fn monotonicity_check_sees_non_border_updates() {
        /// A program that (buggily) posts *increasing* values for a
        /// non-border inner vertex while driving normal decreasing border
        /// traffic: the stray updates can never be routed, but the
        /// monotonicity diagnostic must still flag them.
        struct StrayOscillator;
        impl StrayOscillator {
            fn stray_vertex(fragment: &Fragment<(), f64>) -> VertexId {
                fragment
                    .inner_vertices()
                    .iter()
                    .copied()
                    .find(|&v| fragment.mirrors_of(v).is_empty())
                    .expect("a non-border inner vertex exists")
            }
        }
        impl PieProgram for StrayOscillator {
            type Query = ();
            type VertexData = ();
            type EdgeData = f64;
            type Value = u64;
            type Partial = u64;
            type Output = u64;
            fn peval(
                &self,
                _q: &(),
                fragment: &Fragment<(), f64>,
                ctx: &mut PieContext<u64>,
            ) -> u64 {
                ctx.update(Self::stray_vertex(fragment), 100);
                for &b in fragment.border_vertices() {
                    ctx.update(b, 50 + fragment.id as u64);
                }
                0
            }
            fn inceval(
                &self,
                _q: &(),
                fragment: &Fragment<(), f64>,
                partial: &mut u64,
                _messages: &[(VertexId, u64)],
                ctx: &mut PieContext<u64>,
            ) {
                *partial += 1;
                if *partial > 3 {
                    return;
                }
                // Increasing: violates the min-order declared below.
                ctx.update(Self::stray_vertex(fragment), 100 + *partial);
                for &b in fragment.border_vertices() {
                    // Decreasing: monotone, keeps the exchange alive.
                    ctx.update(b, 50 - *partial);
                }
            }
            fn assemble(&self, partials: Vec<u64>) -> u64 {
                partials.into_iter().sum()
            }
            fn aggregate(&self, a: &u64, b: &u64) -> u64 {
                *a.min(b)
            }
            fn monotonic(&self, old: &u64, new: &u64) -> Option<bool> {
                Some(new <= old)
            }
        }
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..3u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = grape_partition::RangePartitioner.partition(&g, 2);
        let engine = GrapeEngine::new(StrayOscillator).with_config(EngineConfig {
            check_monotonicity: true,
            ..Default::default()
        });
        let result = engine.run_on_graph(&(), &g, &assignment).unwrap();
        assert!(
            result.stats.monotonicity_violations > 0,
            "increasing non-border updates must be flagged"
        );
    }

    #[test]
    fn agreeing_proposals_ship_no_messages() {
        /// Both fragments propose the same constant for their borders: every
        /// interested fragment already holds the folded value, so the run
        /// must reach its fixpoint after PEval with zero messages shipped.
        struct ConstantProbe;
        impl PieProgram for ConstantProbe {
            type Query = ();
            type VertexData = ();
            type EdgeData = f64;
            type Value = u64;
            type Partial = usize;
            type Output = usize;
            fn peval(
                &self,
                _q: &(),
                fragment: &Fragment<(), f64>,
                ctx: &mut PieContext<u64>,
            ) -> usize {
                for &b in fragment.border_vertices() {
                    ctx.update(b, 7);
                }
                0
            }
            fn inceval(
                &self,
                _q: &(),
                _f: &Fragment<(), f64>,
                partial: &mut usize,
                messages: &[(VertexId, u64)],
                _ctx: &mut PieContext<u64>,
            ) {
                *partial += messages.len();
            }
            fn assemble(&self, partials: Vec<usize>) -> usize {
                partials.into_iter().sum()
            }
            fn aggregate(&self, a: &u64, b: &u64) -> u64 {
                *a.min(b)
            }
        }
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..7u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = grape_partition::RangePartitioner.partition(&g, 2);
        let result = GrapeEngine::new(ConstantProbe)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        assert_eq!(result.output, 0, "no IncEval message should be delivered");
        assert_eq!(result.stats.supersteps, 1);
    }

    #[test]
    fn slot_translation_dense_and_sparse_agree() {
        // A compact slot range stays dense; a scattered one (a late fragment
        // of a big job) switches to the sorted form. Both translate the same.
        let vertices = [10, 20, 30];
        let compact = [2, 0, 1];
        let scattered = [900_000, 5, 400_000];
        let dense = SlotTranslation::build(&vertices, &compact);
        assert!(matches!(dense, SlotTranslation::Dense(_)));
        let sparse = SlotTranslation::build(&vertices, &scattered);
        assert!(matches!(sparse, SlotTranslation::Sparse(_)));
        for (i, &v) in vertices.iter().enumerate() {
            assert_eq!(dense.vertex(compact[i]), v);
            assert_eq!(sparse.vertex(scattered[i]), v);
        }
        // Sparse memory stays O(border), not O(slot space).
        if let SlotTranslation::Sparse(pairs) = &sparse {
            assert_eq!(pairs.len(), 3);
        }
    }

    #[test]
    fn threaded_and_inline_execution_agree() {
        // Both drivers run the identical BSP exchange; answers, superstep
        // counts and message totals must match bit for bit.
        let g = barabasi_albert(400, 3, 5).unwrap();
        let assignment = HashPartitioner.partition(&g, 4);
        let mut results = Vec::new();
        for execution in [ExecutionMode::Threads, ExecutionMode::Inline] {
            let engine = GrapeEngine::new(MinLabelCc).with_config(EngineConfig {
                execution,
                ..Default::default()
            });
            results.push(engine.run_on_graph(&(), &g, &assignment).unwrap());
        }
        let (threaded, inline) = (&results[0], &results[1]);
        for v in g.vertices() {
            assert_eq!(threaded.output[&v], inline.output[&v], "vertex {v}");
        }
        assert_eq!(threaded.stats.supersteps, inline.stats.supersteps);
        assert_eq!(threaded.stats.messages, inline.stats.messages);
        assert_eq!(threaded.stats.bytes, inline.stats.bytes);
        assert_eq!(threaded.stats.num_workers, inline.stats.num_workers);
    }

    #[test]
    fn inline_execution_reports_serialized_critical_path() {
        // In inline mode the per-superstep critical path through evaluation
        // is the summed worker time, never less than any single worker's.
        let g = barabasi_albert(300, 3, 9).unwrap();
        let assignment = HashPartitioner.partition(&g, 4);
        let engine = GrapeEngine::new(MinLabelCc).with_config(EngineConfig {
            execution: ExecutionMode::Inline,
            ..Default::default()
        });
        let result = engine.run_on_graph(&(), &g, &assignment).unwrap();
        for trace in &result.stats.history {
            assert!(trace.total_eval_seconds >= trace.max_eval_seconds);
        }
        let summed: f64 = result
            .stats
            .history
            .iter()
            .map(|t| t.total_eval_seconds)
            .sum();
        assert!(result.stats.compute_seconds() <= summed + 1e-9);
    }

    #[test]
    fn handshake_ships_one_init_per_worker() {
        // Chain 0-1-2-3 split in two: superstep 0 carries exactly the two
        // Init handshakes plus the two PEval reports.
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..3u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = grape_partition::RangePartitioner.partition(&g, 2);
        let result = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        assert_eq!(
            result.stats.history[0].messages, 4,
            "2 Init + 2 PEval reports"
        );
    }

    #[test]
    fn published_updates_are_bounded_by_changed_slots() {
        // On a chain every border vertex lives on exactly two fragments, so
        // a changed slot is shipped to at most one non-proposer: publication
        // is O(changed), never a full-border rebroadcast.
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..64u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = grape_partition::RangePartitioner.partition(&g, 8);
        let result = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        let history = &result.stats.history;
        assert!(history.len() > 2, "chains need several supersteps");
        for trace in history {
            assert!(
                trace.published_updates <= trace.changed_slots,
                "superstep {}: shipped {} for {} changed slots",
                trace.superstep,
                trace.published_updates,
                trace.changed_slots
            );
        }
        // The final superstep reaches the fixpoint and ships nothing.
        assert_eq!(history.last().unwrap().published_updates, 0);
        // Earlier supersteps actually route updates.
        assert!(history[0].published_updates > 0);
    }

    #[test]
    fn statistics_history_is_consistent() {
        let g = road_network(
            RoadNetworkConfig {
                width: 16,
                height: 16,
                ..Default::default()
            },
            4,
        )
        .unwrap();
        let assignment = BuiltinStrategy::MetisLike.partition(&g, 4);
        let result = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        let stats = &result.stats;
        assert_eq!(stats.history.len(), stats.supersteps);
        let history_messages: u64 = stats.history.iter().map(|t| t.messages).sum();
        assert_eq!(history_messages, stats.messages);
        assert!(stats.wall_time.as_secs_f64() > 0.0);
        assert!(stats.compute_seconds() >= stats.peval_seconds);
        // The first superstep involves every worker.
        assert_eq!(stats.history[0].active_workers, 4);
        assert!(!stats.summary().is_empty());
    }
}
