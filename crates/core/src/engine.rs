//! The BSP fixpoint engine (coordinator + workers).
//!
//! [`GrapeEngine::run`] implements the workflow of Fig. 1 / Section 2.2:
//!
//! 1. **PEval superstep** — every worker runs PEval on its fragment in
//!    parallel and reports its changed update parameters to the coordinator.
//! 2. **IncEval supersteps** — the coordinator aggregates the changed values
//!    per border vertex (using the program's aggregate function), routes the
//!    results to every fragment that has the vertex on its border, and those
//!    workers run IncEval; they again report changed values.
//! 3. **Termination** — when a superstep produces no changed update
//!    parameters (every worker is inactive), the coordinator collects the
//!    partial results and Assemble combines them into `Q(G)`.
//!
//! Workers are OS threads; "network" traffic flows through
//! [`grape_comm::CommNetwork`] so every message and byte is accounted in the
//! run statistics, mirroring the communication columns of the paper's
//! tables.

use crate::context::PieContext;
use crate::message::{CoordCommand, WorkerReport};
use crate::program::PieProgram;
use crate::stats::{RunStats, SuperstepTrace};
use grape_comm::{CommNetwork, CommStats, COORDINATOR};
use grape_graph::{CsrGraph, VertexId};
use grape_partition::{build_fragments, Fragment, PartitionAssignment};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// One worker's superstep report as gathered by the coordinator:
/// `(worker id, changed border values, eval seconds)`.
type GatheredReport<V> = (usize, Vec<(VertexId, V)>, f64);

/// The coordinator's aggregation table: one stable slot per border vertex,
/// built once per run from the fragments' border lists.
///
/// Every superstep the coordinator folds the workers' proposals into the
/// slots (instead of rebuilding a `HashMap<VertexId, (V, Vec<usize>)>`), and
/// echo suppression is a single bit test per `(slot, worker)` instead of a
/// linear `Vec::contains` scan.
struct SlotTable<V> {
    /// Global id -> slot. The only hashing left, hit once per changed value.
    slot_of: HashMap<VertexId, u32>,
    /// Slot -> global id.
    vertex: Vec<VertexId>,
    /// Slot -> fragments that have the vertex on their border.
    homes: Vec<Vec<usize>>,
    /// Folded value of each slot in the current superstep (`None` =
    /// untouched this superstep).
    value: Vec<Option<V>>,
    /// Folded value of each slot in any previous superstep, for the
    /// monotonicity check.
    last_value: Vec<Option<V>>,
    /// Packed per-slot worker bitmask: bit `f` of slot `s` set means worker
    /// `f` already holds the folded value of `s` (no echo needed).
    holders: Vec<u64>,
    /// 64-bit words per slot in `holders`.
    words_per_slot: usize,
    /// Slots touched in the current superstep, so clearing is O(touched).
    touched: Vec<u32>,
}

impl<V: Clone> SlotTable<V> {
    /// Builds the table from the borders of `fragments`.
    fn build<VD, ED>(fragments: &[grape_partition::Fragment<VD, ED>], n_workers: usize) -> Self
    where
        VD: Clone,
        ED: Clone,
    {
        let mut slot_of: HashMap<VertexId, u32> = HashMap::new();
        let mut vertex: Vec<VertexId> = Vec::new();
        let mut homes: Vec<Vec<usize>> = Vec::new();
        for fragment in fragments {
            for &v in fragment.border_vertices() {
                let slot = *slot_of.entry(v).or_insert_with(|| {
                    vertex.push(v);
                    homes.push(Vec::new());
                    (vertex.len() - 1) as u32
                });
                homes[slot as usize].push(fragment.id);
            }
        }
        let num_slots = vertex.len();
        let words_per_slot = n_workers.div_ceil(64).max(1);
        Self {
            slot_of,
            vertex,
            homes,
            value: vec![None; num_slots],
            last_value: vec![None; num_slots],
            holders: vec![0u64; num_slots * words_per_slot],
            words_per_slot,
            touched: Vec::new(),
        }
    }

    #[inline]
    fn holds(&self, slot: u32, worker: usize) -> bool {
        let base = slot as usize * self.words_per_slot;
        self.holders[base + worker / 64] & (1u64 << (worker % 64)) != 0
    }

    #[inline]
    fn set_holder(&mut self, slot: u32, worker: usize) {
        let base = slot as usize * self.words_per_slot;
        self.holders[base + worker / 64] |= 1u64 << (worker % 64);
    }

    #[inline]
    fn clear_holders(&mut self, slot: u32) {
        let base = slot as usize * self.words_per_slot;
        self.holders[base..base + self.words_per_slot].fill(0);
    }

    /// Resets the per-superstep state (folded values + holder bits) of every
    /// slot touched since the last call.
    fn begin_superstep(&mut self) {
        let touched = std::mem::take(&mut self.touched);
        for &slot in &touched {
            self.value[slot as usize] = None;
            self.clear_holders(slot);
        }
    }

    /// Folds `proposal` from `worker` into the slot of `v` using
    /// `aggregate`. Returns `false` when `v` is on no fragment's border:
    /// such values have nowhere to route and are dropped (the caller may
    /// still track them for the monotonicity diagnostic).
    fn fold(
        &mut self,
        v: VertexId,
        worker: usize,
        proposal: &V,
        aggregate: impl Fn(&V, &V) -> V,
    ) -> bool
    where
        V: PartialEq,
    {
        let Some(&slot) = self.slot_of.get(&v) else {
            return false;
        };
        match &self.value[slot as usize] {
            None => {
                self.value[slot as usize] = Some(proposal.clone());
                self.touched.push(slot);
                self.set_holder(slot, worker);
            }
            Some(current) => {
                let folded = aggregate(current, proposal);
                // Any worker recorded as holding the previous fold is stale
                // the moment the folded value moves; only workers whose own
                // proposal equals the fold can skip the echo. This also
                // covers non-selective aggregates (sums, element-wise mins)
                // where the fold equals *neither* input: everyone gets the
                // message.
                if folded != *current {
                    self.clear_holders(slot);
                }
                if folded == *proposal {
                    self.set_holder(slot, worker);
                }
                self.value[slot as usize] = Some(folded);
            }
        }
        true
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Hard limit on supersteps; exceeded only by non-terminating (e.g.
    /// non-monotonic) programs.
    pub max_supersteps: usize,
    /// When set, every aggregated update-parameter transition is checked
    /// against [`PieProgram::monotonic`] and violations are counted in
    /// [`RunStats::monotonicity_violations`].
    pub check_monotonicity: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_supersteps: 100_000,
            check_monotonicity: false,
        }
    }
}

/// Errors produced by [`GrapeEngine::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The fragment list was empty.
    NoFragments,
    /// The superstep limit was reached before the fixpoint.
    SuperstepLimit(usize),
    /// A worker thread panicked (the payload carries the panic message).
    WorkerPanic(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::NoFragments => write!(f, "no fragments to run on"),
            RunError::SuperstepLimit(n) => {
                write!(
                    f,
                    "no fixpoint after {n} supersteps (non-monotonic program?)"
                )
            }
            RunError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// The answer of a run plus its statistics.
#[derive(Debug)]
pub struct GrapeResult<O> {
    /// `Q(G)` as produced by Assemble.
    pub output: O,
    /// Timing / communication statistics.
    pub stats: RunStats,
}

/// The parallel query engine: wraps a [`PieProgram`] and executes it over
/// fragmented graphs.
#[derive(Debug, Clone)]
pub struct GrapeEngine<P> {
    program: Arc<P>,
    config: EngineConfig,
}

impl<P: PieProgram> GrapeEngine<P> {
    /// Wraps a program with the default configuration.
    pub fn new(program: P) -> Self {
        Self {
            program: Arc::new(program),
            config: EngineConfig::default(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Access to the wrapped program.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Partitions `graph` with `assignment`, builds the fragments and runs
    /// the query.
    pub fn run_on_graph(
        &self,
        query: &P::Query,
        graph: &CsrGraph<P::VertexData, P::EdgeData>,
        assignment: &PartitionAssignment,
    ) -> Result<GrapeResult<P::Output>, RunError> {
        let fragments = build_fragments(graph, assignment);
        self.run(query, &fragments)
    }

    /// Runs the simultaneous fixpoint over prebuilt fragments.
    pub fn run(
        &self,
        query: &P::Query,
        fragments: &[Fragment<P::VertexData, P::EdgeData>],
    ) -> Result<GrapeResult<P::Output>, RunError> {
        let n = fragments.len();
        if n == 0 {
            return Err(RunError::NoFragments);
        }
        let started = Instant::now();

        // Stable aggregation slots: one per border vertex, with its routing
        // targets. Built once; reused every superstep.
        let mut slots: SlotTable<P::Value> = SlotTable::build(fragments, n);

        // Two typed networks (worker -> coordinator reports, coordinator ->
        // worker commands) sharing one set of communication counters.
        let stats = Arc::new(CommStats::new());
        let up = CommNetwork::<WorkerReport<P::Value>>::with_stats(n, Arc::clone(&stats));
        let down = CommNetwork::<CoordCommand<P::Value>>::with_stats(n, Arc::clone(&stats));
        let (up_coord, up_workers) = up.split();
        let (down_coord, down_workers) = down.split();

        let program = Arc::clone(&self.program);
        let config = self.config;

        let run_result: Result<(Vec<P::Partial>, RunStats), RunError> =
            std::thread::scope(|scope| {
                // ---------------- workers ----------------
                let mut handles = Vec::with_capacity(n);
                for ((fragment, up_link), down_link) in
                    fragments.iter().zip(up_workers).zip(down_workers)
                {
                    let program = Arc::clone(&program);
                    handles.push(scope.spawn(move || {
                        let mut ctx = PieContext::<P::Value>::new();
                        let t0 = Instant::now();
                        let mut partial = program.peval(query, fragment, &mut ctx);
                        let eval_seconds = t0.elapsed().as_secs_f64();
                        let changes = ctx.take_dirty();
                        up_link.send(
                            COORDINATOR,
                            WorkerReport::Done {
                                superstep: 0,
                                changes,
                                eval_seconds,
                            },
                        );
                        loop {
                            let commands = down_link.recv_blocking();
                            if commands.is_empty() {
                                // Coordinator vanished; stop gracefully.
                                return partial;
                            }
                            for envelope in commands {
                                match envelope.payload {
                                    CoordCommand::IncEval {
                                        superstep,
                                        messages,
                                    } => {
                                        let t0 = Instant::now();
                                        program.inceval(
                                            query,
                                            fragment,
                                            &mut partial,
                                            &messages,
                                            &mut ctx,
                                        );
                                        let eval_seconds = t0.elapsed().as_secs_f64();
                                        let changes = ctx.take_dirty();
                                        up_link.send(
                                            COORDINATOR,
                                            WorkerReport::Done {
                                                superstep,
                                                changes,
                                                eval_seconds,
                                            },
                                        );
                                    }
                                    CoordCommand::Finish => {
                                        return partial;
                                    }
                                }
                            }
                        }
                    }));
                }

                // ---------------- coordinator ----------------
                let coordination = Self::coordinate(
                    &program,
                    &config,
                    n,
                    &mut slots,
                    &up_coord,
                    &down_coord,
                    &stats,
                );

                // Always release the workers, even on error, so the scope can
                // join them.
                for f in 0..n {
                    down_coord.send(f, CoordCommand::Finish);
                }
                let mut partials = Vec::with_capacity(n);
                let mut panic_message = None;
                for handle in handles {
                    match handle.join() {
                        Ok(partial) => partials.push(partial),
                        Err(payload) => {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "unknown panic".to_string());
                            panic_message = Some(msg);
                        }
                    }
                }
                if let Some(msg) = panic_message {
                    return Err(RunError::WorkerPanic(msg));
                }
                let mut stats_out = coordination?;
                stats_out.num_workers = n;
                stats_out.program = program.name().to_string();
                Ok((partials, stats_out))
            });

        let (partials, mut stats_out) = run_result?;
        let output = self.program.assemble(partials);
        stats_out.wall_time = started.elapsed();
        Ok(GrapeResult {
            output,
            stats: stats_out,
        })
    }

    /// The coordinator's superstep loop. Returns the (partially filled) run
    /// statistics once the fixpoint is reached.
    #[allow(clippy::too_many_arguments)]
    fn coordinate(
        program: &Arc<P>,
        config: &EngineConfig,
        n: usize,
        slots: &mut SlotTable<P::Value>,
        up_coord: &grape_comm::WorkerLink<WorkerReport<P::Value>>,
        down_coord: &grape_comm::WorkerLink<CoordCommand<P::Value>>,
        stats: &Arc<CommStats>,
    ) -> Result<RunStats, RunError> {
        let mut run_stats = RunStats::default();
        // Last folded value of each non-border vertex a program proposed,
        // kept only for the monotonicity diagnostic (border vertices use the
        // slot table's `last_value`).
        let mut stray_last: HashMap<VertexId, P::Value> = HashMap::new();
        let mut pending = n;
        let mut superstep = 0usize;

        loop {
            // Gather the reports of every worker that evaluated this superstep.
            let mut reports: Vec<GatheredReport<P::Value>> = Vec::new();
            while reports.len() < pending {
                let envelopes = up_coord.recv_blocking();
                if envelopes.is_empty() {
                    return Err(RunError::WorkerPanic(
                        "a worker disconnected before reporting".into(),
                    ));
                }
                for env in envelopes {
                    let WorkerReport::Done {
                        changes,
                        eval_seconds,
                        ..
                    } = env.payload;
                    reports.push((env.from, changes, eval_seconds));
                }
            }

            // Fold the proposals into the per-border-vertex slots. Each slot
            // keeps the aggregated value plus a worker bitmask of who already
            // holds it (those workers do not need an echo).
            slots.begin_superstep();
            let mut changed_parameters = 0usize;
            let mut max_eval = 0.0f64;
            let mut total_eval = 0.0f64;
            // Proposals for vertices on no fragment's border cannot be
            // routed, but the monotonicity diagnostic still folds them here
            // so it keeps catching programs that update the wrong vertices.
            let mut stray: HashMap<VertexId, P::Value> = HashMap::new();
            for (from, changes, eval_seconds) in &reports {
                max_eval = max_eval.max(*eval_seconds);
                total_eval += *eval_seconds;
                changed_parameters += changes.len();
                for (v, value) in changes {
                    let routed = slots.fold(*v, *from, value, |a, b| program.aggregate(a, b));
                    if !routed && config.check_monotonicity {
                        match stray.get_mut(v) {
                            None => {
                                stray.insert(*v, value.clone());
                            }
                            Some(current) => *current = program.aggregate(current, value),
                        }
                    }
                }
            }

            if config.check_monotonicity {
                for idx in 0..slots.touched.len() {
                    let slot = slots.touched[idx] as usize;
                    let value = slots.value[slot]
                        .as_ref()
                        .expect("touched slots carry values");
                    if let Some(old) = &slots.last_value[slot] {
                        if program.monotonic(old, value) == Some(false) {
                            run_stats.monotonicity_violations += 1;
                        }
                    }
                    slots.last_value[slot] = Some(value.clone());
                }
                for (v, value) in stray {
                    if let Some(old) = stray_last.get(&v) {
                        if program.monotonic(old, &value) == Some(false) {
                            run_stats.monotonicity_violations += 1;
                        }
                    }
                    stray_last.insert(v, value);
                }
            }

            // Close the books on this superstep.
            let comm = stats.end_superstep(superstep);
            let trace = SuperstepTrace {
                superstep,
                active_workers: reports.len(),
                max_eval_seconds: max_eval,
                total_eval_seconds: total_eval,
                changed_parameters,
                messages: comm.messages,
                bytes: comm.bytes,
            };
            if superstep == 0 {
                run_stats.peval_seconds = max_eval;
            } else {
                run_stats.inceval_seconds += max_eval;
            }
            run_stats.history.push(trace);
            run_stats.supersteps = superstep + 1;

            // Fixpoint: no worker changed any update parameter.
            if changed_parameters == 0 {
                break;
            }
            if superstep + 1 >= config.max_supersteps {
                return Err(RunError::SuperstepLimit(config.max_supersteps));
            }

            // Route the aggregated values to every fragment that has the
            // vertex on its border, except fragments already holding the
            // aggregated value (one bit test per recipient).
            let mut outbox: Vec<Vec<(VertexId, P::Value)>> = vec![Vec::new(); n];
            for &slot in &slots.touched {
                let v = slots.vertex[slot as usize];
                let value = slots.value[slot as usize]
                    .as_ref()
                    .expect("touched slots carry values");
                for &f in &slots.homes[slot as usize] {
                    if !slots.holds(slot, f) {
                        outbox[f].push((v, value.clone()));
                    }
                }
            }
            superstep += 1;
            pending = 0;
            for (f, messages) in outbox.into_iter().enumerate() {
                if !messages.is_empty() {
                    down_coord.send(
                        f,
                        CoordCommand::IncEval {
                            superstep,
                            messages,
                        },
                    );
                    pending += 1;
                }
            }
            if pending == 0 {
                // Changes happened but every interested fragment already
                // holds the aggregated values: fixpoint.
                break;
            }
        }

        run_stats.messages = stats.messages();
        run_stats.bytes = stats.bytes();
        Ok(run_stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::generators::{barabasi_albert, road_network, RoadNetworkConfig};
    use grape_graph::GraphBuilder;
    use grape_partition::{BuiltinStrategy, HashPartitioner, Partitioner};

    /// Connected components by min-label propagation: the update parameter of
    /// a border vertex is the smallest vertex id known to be connected to it.
    struct MinLabelCc;

    impl PieProgram for MinLabelCc {
        type Query = ();
        type VertexData = ();
        type EdgeData = f64;
        type Value = u64;
        type Partial = HashMap<VertexId, u64>;
        type Output = HashMap<VertexId, u64>;

        fn peval(
            &self,
            _q: &(),
            fragment: &Fragment<(), f64>,
            ctx: &mut PieContext<u64>,
        ) -> Self::Partial {
            // Local label propagation to convergence (sequential CC on F_i).
            let mut label: HashMap<VertexId, u64> =
                fragment.graph.vertices().map(|v| (v, v)).collect();
            let mut changed = true;
            while changed {
                changed = false;
                for (s, d, _) in fragment.graph.edges() {
                    let ls = label[&s];
                    let ld = label[&d];
                    let m = ls.min(ld);
                    if ls != m {
                        label.insert(s, m);
                        changed = true;
                    }
                    if ld != m {
                        label.insert(d, m);
                        changed = true;
                    }
                }
            }
            for &b in fragment.border_vertices() {
                ctx.update(b, label[&b]);
            }
            label
        }

        fn inceval(
            &self,
            _q: &(),
            fragment: &Fragment<(), f64>,
            partial: &mut Self::Partial,
            messages: &[(VertexId, u64)],
            ctx: &mut PieContext<u64>,
        ) {
            let mut changed = false;
            for (v, incoming) in messages {
                if let Some(current) = partial.get_mut(v) {
                    if *incoming < *current {
                        *current = *incoming;
                        changed = true;
                    }
                }
            }
            while changed {
                changed = false;
                for (s, d, _) in fragment.graph.edges() {
                    let ls = partial[&s];
                    let ld = partial[&d];
                    let m = ls.min(ld);
                    if ls != m {
                        partial.insert(s, m);
                        changed = true;
                    }
                    if ld != m {
                        partial.insert(d, m);
                        changed = true;
                    }
                }
            }
            for &b in fragment.border_vertices() {
                let value = partial[&b];
                ctx.update(b, value);
            }
        }

        fn assemble(&self, partials: Vec<Self::Partial>) -> Self::Output {
            // Keep the smallest label seen for each vertex (mirrors may carry
            // stale larger labels).
            let mut out: HashMap<VertexId, u64> = HashMap::new();
            for partial in partials {
                for (v, label) in partial {
                    out.entry(v)
                        .and_modify(|l| *l = (*l).min(label))
                        .or_insert(label);
                }
            }
            out
        }

        fn aggregate(&self, a: &u64, b: &u64) -> u64 {
            *a.min(b)
        }

        fn monotonic(&self, old: &u64, new: &u64) -> Option<bool> {
            Some(new <= old)
        }

        fn name(&self) -> &str {
            "min-label-cc"
        }
    }

    fn reference_cc(graph: &CsrGraph<(), f64>) -> HashMap<VertexId, u64> {
        grape_graph::metrics::weakly_connected_components(graph)
    }

    #[test]
    fn cc_matches_reference_on_power_law_graph() {
        let g = barabasi_albert(500, 3, 21).unwrap();
        let assignment = HashPartitioner.partition(&g, 4);
        let engine = GrapeEngine::new(MinLabelCc).with_config(EngineConfig {
            check_monotonicity: true,
            ..Default::default()
        });
        let result = engine.run_on_graph(&(), &g, &assignment).unwrap();
        let expected = reference_cc(&g);
        for v in g.vertices() {
            assert_eq!(result.output[&v], expected[&v], "vertex {v}");
        }
        assert_eq!(result.stats.monotonicity_violations, 0);
        assert!(result.stats.supersteps >= 1);
        assert_eq!(result.stats.num_workers, 4);
        assert_eq!(result.stats.program, "min-label-cc");
    }

    #[test]
    fn cc_on_disconnected_graph_keeps_components_apart() {
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..10u64 {
            b.add_edge(v, (v + 1) % 10, 1.0);
        }
        for v in 100..105u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = HashPartitioner.partition(&g, 3);
        let result = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        for v in 0..10u64 {
            assert_eq!(result.output[&v], 0);
        }
        for v in 100..=105u64 {
            assert_eq!(result.output[&v], 100);
        }
    }

    #[test]
    fn single_fragment_needs_one_superstep() {
        let g = barabasi_albert(100, 2, 3).unwrap();
        let assignment = HashPartitioner.partition(&g, 1);
        let result = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        assert_eq!(result.stats.supersteps, 1, "no borders, PEval suffices");
        assert_eq!(result.stats.messages, result.stats.history[0].messages);
        assert!(result.output.values().all(|&l| l == 0));
    }

    #[test]
    fn more_workers_more_supersteps_on_chains() {
        // A long chain partitioned into many contiguous ranges needs label
        // propagation across every boundary: supersteps grow with k.
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..64u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let few = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &grape_partition::RangePartitioner.partition(&g, 2))
            .unwrap();
        let many = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &grape_partition::RangePartitioner.partition(&g, 8))
            .unwrap();
        assert!(many.stats.supersteps > few.stats.supersteps);
        assert!(many.stats.messages > few.stats.messages);
        // Both still compute the right answer.
        assert!(many.output.values().all(|&l| l == 0));
        assert!(few.output.values().all(|&l| l == 0));
    }

    #[test]
    fn empty_fragment_list_is_an_error() {
        let engine = GrapeEngine::new(MinLabelCc);
        let err = engine.run(&(), &[]).unwrap_err();
        assert_eq!(err, RunError::NoFragments);
        assert!(err.to_string().contains("no fragments"));
    }

    #[test]
    fn superstep_limit_is_enforced() {
        /// A deliberately non-monotonic program that flips a border value
        /// forever.
        struct Oscillator;
        impl PieProgram for Oscillator {
            type Query = ();
            type VertexData = ();
            type EdgeData = f64;
            type Value = u64;
            type Partial = u64;
            type Output = u64;
            fn peval(
                &self,
                _q: &(),
                fragment: &Fragment<(), f64>,
                ctx: &mut PieContext<u64>,
            ) -> u64 {
                for &b in fragment.border_vertices() {
                    ctx.update(b, fragment.id as u64);
                }
                0
            }
            fn inceval(
                &self,
                _q: &(),
                fragment: &Fragment<(), f64>,
                partial: &mut u64,
                _messages: &[(VertexId, u64)],
                ctx: &mut PieContext<u64>,
            ) {
                *partial += 1;
                for &b in fragment.border_vertices() {
                    // Alternate the value every superstep: never converges.
                    ctx.update(b, *partial % 2 + fragment.id as u64 * 10);
                }
            }
            fn assemble(&self, partials: Vec<u64>) -> u64 {
                partials.into_iter().sum()
            }
            fn aggregate(&self, a: &u64, b: &u64) -> u64 {
                *a.min(b)
            }
            fn monotonic(&self, old: &u64, new: &u64) -> Option<bool> {
                Some(new <= old)
            }
        }
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..16u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = grape_partition::RangePartitioner.partition(&g, 2);
        let engine = GrapeEngine::new(Oscillator).with_config(EngineConfig {
            max_supersteps: 10,
            check_monotonicity: true,
        });
        let err = engine.run_on_graph(&(), &g, &assignment).unwrap_err();
        assert_eq!(err, RunError::SuperstepLimit(10));
    }

    /// A probe program for the coordinator's echo suppression: PEval proposes
    /// a per-fragment value for every border vertex and IncEval records every
    /// message that arrives (without proposing anything new, so the run
    /// terminates after one exchange).
    struct EchoProbe;

    impl PieProgram for EchoProbe {
        type Query = ();
        type VertexData = ();
        type EdgeData = f64;
        type Value = u64;
        /// Messages received by this fragment, in arrival order.
        type Partial = Vec<(VertexId, u64)>;
        /// The per-fragment message logs, in fragment order.
        type Output = Vec<Vec<(VertexId, u64)>>;

        fn peval(
            &self,
            _q: &(),
            fragment: &Fragment<(), f64>,
            ctx: &mut PieContext<u64>,
        ) -> Self::Partial {
            // Fragment 0 proposes 0, fragment 1 proposes 100, ...: the
            // aggregate (min) is always fragment 0's proposal.
            for &b in fragment.border_vertices() {
                ctx.update(b, fragment.id as u64 * 100);
            }
            Vec::new()
        }

        fn inceval(
            &self,
            _q: &(),
            _fragment: &Fragment<(), f64>,
            partial: &mut Self::Partial,
            messages: &[(VertexId, u64)],
            _ctx: &mut PieContext<u64>,
        ) {
            partial.extend_from_slice(messages);
        }

        fn assemble(&self, partials: Vec<Self::Partial>) -> Self::Output {
            partials
        }

        fn aggregate(&self, a: &u64, b: &u64) -> u64 {
            *a.min(b)
        }
    }

    #[test]
    fn echo_suppression_prevents_self_messages() {
        // Chain 0-1-2-3 split in two: border vertices {1, 2} on both sides.
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..3u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = grape_partition::RangePartitioner.partition(&g, 2);
        let result = GrapeEngine::new(EchoProbe)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        // Fragment 0 proposed the winning value 0 for both border vertices,
        // so it must receive no echo; fragment 1 receives the fold.
        assert!(
            result.output[0].is_empty(),
            "the proposer of the aggregated value got echoed its own message: {:?}",
            result.output[0]
        );
        assert_eq!(result.output[1], vec![(1, 0), (2, 0)]);
        assert_eq!(result.stats.supersteps, 2);
    }

    #[test]
    fn non_selective_aggregate_reaches_every_proposer() {
        /// A sum aggregate: the fold of two different proposals equals
        /// *neither* of them, so no proposer holds the folded value and
        /// every fragment must receive it (a stale holder bit here would
        /// leave one fragment with its own, wrong value).
        struct SumProbe;
        impl PieProgram for SumProbe {
            type Query = ();
            type VertexData = ();
            type EdgeData = f64;
            type Value = u64;
            type Partial = Vec<(VertexId, u64)>;
            type Output = Vec<Vec<(VertexId, u64)>>;
            fn peval(
                &self,
                _q: &(),
                fragment: &Fragment<(), f64>,
                ctx: &mut PieContext<u64>,
            ) -> Self::Partial {
                for &b in fragment.border_vertices() {
                    ctx.update(b, 10 + fragment.id as u64);
                }
                Vec::new()
            }
            fn inceval(
                &self,
                _q: &(),
                _fragment: &Fragment<(), f64>,
                partial: &mut Self::Partial,
                messages: &[(VertexId, u64)],
                _ctx: &mut PieContext<u64>,
            ) {
                partial.extend_from_slice(messages);
            }
            fn assemble(&self, partials: Vec<Self::Partial>) -> Self::Output {
                partials
            }
            fn aggregate(&self, a: &u64, b: &u64) -> u64 {
                *a + *b
            }
        }
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..3u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = grape_partition::RangePartitioner.partition(&g, 2);
        let result = GrapeEngine::new(SumProbe)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        // Proposals 10 and 11 fold to 21 for both border vertices {1, 2};
        // neither fragment holds 21, so both must be told.
        for (f, received) in result.output.iter().enumerate() {
            assert_eq!(
                received,
                &vec![(1, 21), (2, 21)],
                "fragment {f} must receive the folded sum"
            );
        }
    }

    #[test]
    fn monotonicity_check_sees_non_border_updates() {
        /// A program that (buggily) posts *increasing* values for a
        /// non-border inner vertex while driving normal decreasing border
        /// traffic: the stray updates can never be routed, but the
        /// monotonicity diagnostic must still flag them.
        struct StrayOscillator;
        impl StrayOscillator {
            fn stray_vertex(fragment: &Fragment<(), f64>) -> VertexId {
                fragment
                    .inner_vertices()
                    .iter()
                    .copied()
                    .find(|&v| fragment.mirrors_of(v).is_empty())
                    .expect("a non-border inner vertex exists")
            }
        }
        impl PieProgram for StrayOscillator {
            type Query = ();
            type VertexData = ();
            type EdgeData = f64;
            type Value = u64;
            type Partial = u64;
            type Output = u64;
            fn peval(
                &self,
                _q: &(),
                fragment: &Fragment<(), f64>,
                ctx: &mut PieContext<u64>,
            ) -> u64 {
                ctx.update(Self::stray_vertex(fragment), 100);
                for &b in fragment.border_vertices() {
                    ctx.update(b, 50 + fragment.id as u64);
                }
                0
            }
            fn inceval(
                &self,
                _q: &(),
                fragment: &Fragment<(), f64>,
                partial: &mut u64,
                _messages: &[(VertexId, u64)],
                ctx: &mut PieContext<u64>,
            ) {
                *partial += 1;
                if *partial > 3 {
                    return;
                }
                // Increasing: violates the min-order declared below.
                ctx.update(Self::stray_vertex(fragment), 100 + *partial);
                for &b in fragment.border_vertices() {
                    // Decreasing: monotone, keeps the exchange alive.
                    ctx.update(b, 50 - *partial);
                }
            }
            fn assemble(&self, partials: Vec<u64>) -> u64 {
                partials.into_iter().sum()
            }
            fn aggregate(&self, a: &u64, b: &u64) -> u64 {
                *a.min(b)
            }
            fn monotonic(&self, old: &u64, new: &u64) -> Option<bool> {
                Some(new <= old)
            }
        }
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..3u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = grape_partition::RangePartitioner.partition(&g, 2);
        let engine = GrapeEngine::new(StrayOscillator).with_config(EngineConfig {
            check_monotonicity: true,
            ..Default::default()
        });
        let result = engine.run_on_graph(&(), &g, &assignment).unwrap();
        assert!(
            result.stats.monotonicity_violations > 0,
            "increasing non-border updates must be flagged"
        );
    }

    #[test]
    fn agreeing_proposals_ship_no_messages() {
        /// Both fragments propose the same constant for their borders: every
        /// interested fragment already holds the folded value, so the run
        /// must reach its fixpoint after PEval with zero messages shipped.
        struct ConstantProbe;
        impl PieProgram for ConstantProbe {
            type Query = ();
            type VertexData = ();
            type EdgeData = f64;
            type Value = u64;
            type Partial = usize;
            type Output = usize;
            fn peval(
                &self,
                _q: &(),
                fragment: &Fragment<(), f64>,
                ctx: &mut PieContext<u64>,
            ) -> usize {
                for &b in fragment.border_vertices() {
                    ctx.update(b, 7);
                }
                0
            }
            fn inceval(
                &self,
                _q: &(),
                _f: &Fragment<(), f64>,
                partial: &mut usize,
                messages: &[(VertexId, u64)],
                _ctx: &mut PieContext<u64>,
            ) {
                *partial += messages.len();
            }
            fn assemble(&self, partials: Vec<usize>) -> usize {
                partials.into_iter().sum()
            }
            fn aggregate(&self, a: &u64, b: &u64) -> u64 {
                *a.min(b)
            }
        }
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..7u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = grape_partition::RangePartitioner.partition(&g, 2);
        let result = GrapeEngine::new(ConstantProbe)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        assert_eq!(result.output, 0, "no IncEval message should be delivered");
        assert_eq!(result.stats.supersteps, 1);
    }

    #[test]
    fn statistics_history_is_consistent() {
        let g = road_network(
            RoadNetworkConfig {
                width: 16,
                height: 16,
                ..Default::default()
            },
            4,
        )
        .unwrap();
        let assignment = BuiltinStrategy::MetisLike.partition(&g, 4);
        let result = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        let stats = &result.stats;
        assert_eq!(stats.history.len(), stats.supersteps);
        let history_messages: u64 = stats.history.iter().map(|t| t.messages).sum();
        assert_eq!(history_messages, stats.messages);
        assert!(stats.wall_time.as_secs_f64() > 0.0);
        assert!(stats.compute_seconds() >= stats.peval_seconds);
        // The first superstep involves every worker.
        assert_eq!(stats.history[0].active_workers, 4);
        assert!(!stats.summary().is_empty());
    }
}
