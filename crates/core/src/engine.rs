//! The BSP fixpoint engine (coordinator + workers).
//!
//! [`GrapeEngine::run`] implements the workflow of Fig. 1 / Section 2.2:
//!
//! 1. **PEval superstep** — every worker runs PEval on its fragment in
//!    parallel and reports its changed update parameters to the coordinator.
//! 2. **IncEval supersteps** — the coordinator aggregates the changed values
//!    per border vertex (using the program's aggregate function), routes the
//!    results to every fragment that has the vertex on its border, and those
//!    workers run IncEval; they again report changed values.
//! 3. **Termination** — when a superstep produces no changed update
//!    parameters (every worker is inactive), the coordinator collects the
//!    partial results and Assemble combines them into `Q(G)`.
//!
//! Workers are OS threads; "network" traffic flows through
//! [`grape_comm::CommNetwork`] so every message and byte is accounted in the
//! run statistics, mirroring the communication columns of the paper's
//! tables.

use crate::context::PieContext;
use crate::message::{CoordCommand, WorkerReport};
use crate::program::PieProgram;
use crate::stats::{RunStats, SuperstepTrace};
use grape_comm::{CommNetwork, CommStats, COORDINATOR};
use grape_graph::{CsrGraph, VertexId};
use grape_partition::{build_fragments, Fragment, PartitionAssignment};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// One worker's superstep report as gathered by the coordinator:
/// `(worker id, changed border values, eval seconds)`.
type GatheredReport<V> = (usize, Vec<(VertexId, V)>, f64);

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Hard limit on supersteps; exceeded only by non-terminating (e.g.
    /// non-monotonic) programs.
    pub max_supersteps: usize,
    /// When set, every aggregated update-parameter transition is checked
    /// against [`PieProgram::monotonic`] and violations are counted in
    /// [`RunStats::monotonicity_violations`].
    pub check_monotonicity: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_supersteps: 100_000,
            check_monotonicity: false,
        }
    }
}

/// Errors produced by [`GrapeEngine::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The fragment list was empty.
    NoFragments,
    /// The superstep limit was reached before the fixpoint.
    SuperstepLimit(usize),
    /// A worker thread panicked (the payload carries the panic message).
    WorkerPanic(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::NoFragments => write!(f, "no fragments to run on"),
            RunError::SuperstepLimit(n) => {
                write!(
                    f,
                    "no fixpoint after {n} supersteps (non-monotonic program?)"
                )
            }
            RunError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// The answer of a run plus its statistics.
#[derive(Debug)]
pub struct GrapeResult<O> {
    /// `Q(G)` as produced by Assemble.
    pub output: O,
    /// Timing / communication statistics.
    pub stats: RunStats,
}

/// The parallel query engine: wraps a [`PieProgram`] and executes it over
/// fragmented graphs.
#[derive(Debug, Clone)]
pub struct GrapeEngine<P> {
    program: Arc<P>,
    config: EngineConfig,
}

impl<P: PieProgram> GrapeEngine<P> {
    /// Wraps a program with the default configuration.
    pub fn new(program: P) -> Self {
        Self {
            program: Arc::new(program),
            config: EngineConfig::default(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Access to the wrapped program.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Partitions `graph` with `assignment`, builds the fragments and runs
    /// the query.
    pub fn run_on_graph(
        &self,
        query: &P::Query,
        graph: &CsrGraph<P::VertexData, P::EdgeData>,
        assignment: &PartitionAssignment,
    ) -> Result<GrapeResult<P::Output>, RunError> {
        let fragments = build_fragments(graph, assignment);
        self.run(query, &fragments)
    }

    /// Runs the simultaneous fixpoint over prebuilt fragments.
    pub fn run(
        &self,
        query: &P::Query,
        fragments: &[Fragment<P::VertexData, P::EdgeData>],
    ) -> Result<GrapeResult<P::Output>, RunError> {
        let n = fragments.len();
        if n == 0 {
            return Err(RunError::NoFragments);
        }
        let started = Instant::now();

        // Routing table: vertex -> fragments where it is a border vertex.
        let mut border_homes: HashMap<VertexId, Vec<usize>> = HashMap::new();
        for fragment in fragments {
            for v in fragment.border_vertices() {
                border_homes.entry(v).or_default().push(fragment.id);
            }
        }

        // Two typed networks (worker -> coordinator reports, coordinator ->
        // worker commands) sharing one set of communication counters.
        let stats = Arc::new(CommStats::new());
        let up = CommNetwork::<WorkerReport<P::Value>>::with_stats(n, Arc::clone(&stats));
        let down = CommNetwork::<CoordCommand<P::Value>>::with_stats(n, Arc::clone(&stats));
        let (up_coord, up_workers) = up.split();
        let (down_coord, down_workers) = down.split();

        let program = Arc::clone(&self.program);
        let config = self.config;

        let run_result: Result<(Vec<P::Partial>, RunStats), RunError> =
            std::thread::scope(|scope| {
                // ---------------- workers ----------------
                let mut handles = Vec::with_capacity(n);
                for ((fragment, up_link), down_link) in
                    fragments.iter().zip(up_workers).zip(down_workers)
                {
                    let program = Arc::clone(&program);
                    handles.push(scope.spawn(move || {
                        let mut ctx = PieContext::<P::Value>::new();
                        let t0 = Instant::now();
                        let mut partial = program.peval(query, fragment, &mut ctx);
                        let eval_seconds = t0.elapsed().as_secs_f64();
                        let changes = ctx.take_dirty();
                        up_link.send(
                            COORDINATOR,
                            WorkerReport::Done {
                                superstep: 0,
                                changes,
                                eval_seconds,
                            },
                        );
                        loop {
                            let commands = down_link.recv_blocking();
                            if commands.is_empty() {
                                // Coordinator vanished; stop gracefully.
                                return partial;
                            }
                            for envelope in commands {
                                match envelope.payload {
                                    CoordCommand::IncEval {
                                        superstep,
                                        messages,
                                    } => {
                                        let t0 = Instant::now();
                                        program.inceval(
                                            query,
                                            fragment,
                                            &mut partial,
                                            &messages,
                                            &mut ctx,
                                        );
                                        let eval_seconds = t0.elapsed().as_secs_f64();
                                        let changes = ctx.take_dirty();
                                        up_link.send(
                                            COORDINATOR,
                                            WorkerReport::Done {
                                                superstep,
                                                changes,
                                                eval_seconds,
                                            },
                                        );
                                    }
                                    CoordCommand::Finish => {
                                        return partial;
                                    }
                                }
                            }
                        }
                    }));
                }

                // ---------------- coordinator ----------------
                let coordination = Self::coordinate(
                    &program,
                    &config,
                    n,
                    &border_homes,
                    &up_coord,
                    &down_coord,
                    &stats,
                );

                // Always release the workers, even on error, so the scope can
                // join them.
                for f in 0..n {
                    down_coord.send(f, CoordCommand::Finish);
                }
                let mut partials = Vec::with_capacity(n);
                let mut panic_message = None;
                for handle in handles {
                    match handle.join() {
                        Ok(partial) => partials.push(partial),
                        Err(payload) => {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "unknown panic".to_string());
                            panic_message = Some(msg);
                        }
                    }
                }
                if let Some(msg) = panic_message {
                    return Err(RunError::WorkerPanic(msg));
                }
                let mut stats_out = coordination?;
                stats_out.num_workers = n;
                stats_out.program = program.name().to_string();
                Ok((partials, stats_out))
            });

        let (partials, mut stats_out) = run_result?;
        let output = self.program.assemble(partials);
        stats_out.wall_time = started.elapsed();
        Ok(GrapeResult {
            output,
            stats: stats_out,
        })
    }

    /// The coordinator's superstep loop. Returns the (partially filled) run
    /// statistics once the fixpoint is reached.
    #[allow(clippy::too_many_arguments)]
    fn coordinate(
        program: &Arc<P>,
        config: &EngineConfig,
        n: usize,
        border_homes: &HashMap<VertexId, Vec<usize>>,
        up_coord: &grape_comm::WorkerLink<WorkerReport<P::Value>>,
        down_coord: &grape_comm::WorkerLink<CoordCommand<P::Value>>,
        stats: &Arc<CommStats>,
    ) -> Result<RunStats, RunError> {
        let mut run_stats = RunStats::default();
        // Last aggregated value per vertex, for the monotonicity check.
        let mut last_value: HashMap<VertexId, P::Value> = HashMap::new();
        let mut pending = n;
        let mut superstep = 0usize;

        loop {
            // Gather the reports of every worker that evaluated this superstep.
            let mut reports: Vec<GatheredReport<P::Value>> = Vec::new();
            while reports.len() < pending {
                let envelopes = up_coord.recv_blocking();
                if envelopes.is_empty() {
                    return Err(RunError::WorkerPanic(
                        "a worker disconnected before reporting".into(),
                    ));
                }
                for env in envelopes {
                    let WorkerReport::Done {
                        changes,
                        eval_seconds,
                        ..
                    } = env.payload;
                    reports.push((env.from, changes, eval_seconds));
                }
            }

            // Aggregate the proposals per border vertex.
            // For each vertex keep the folded value and the workers whose
            // proposal already equals it (they do not need an echo).
            let mut aggregated: HashMap<VertexId, (P::Value, Vec<usize>)> = HashMap::new();
            let mut changed_parameters = 0usize;
            let mut max_eval = 0.0f64;
            let mut total_eval = 0.0f64;
            for (from, changes, eval_seconds) in &reports {
                max_eval = max_eval.max(*eval_seconds);
                total_eval += *eval_seconds;
                changed_parameters += changes.len();
                for (v, value) in changes {
                    match aggregated.get_mut(v) {
                        None => {
                            aggregated.insert(*v, (value.clone(), vec![*from]));
                        }
                        Some((current, holders)) => {
                            let folded = program.aggregate(current, value);
                            if folded == *value && folded != *current {
                                // The new proposal wins outright.
                                holders.clear();
                                holders.push(*from);
                            } else if folded == *current && folded == *value {
                                holders.push(*from);
                            }
                            *current = folded;
                        }
                    }
                }
            }

            if config.check_monotonicity {
                for (v, (value, _)) in &aggregated {
                    if let Some(old) = last_value.get(v) {
                        if program.monotonic(old, value) == Some(false) {
                            run_stats.monotonicity_violations += 1;
                        }
                    }
                    last_value.insert(*v, value.clone());
                }
            }

            // Close the books on this superstep.
            let comm = stats.end_superstep(superstep);
            let trace = SuperstepTrace {
                superstep,
                active_workers: reports.len(),
                max_eval_seconds: max_eval,
                total_eval_seconds: total_eval,
                changed_parameters,
                messages: comm.messages,
                bytes: comm.bytes,
            };
            if superstep == 0 {
                run_stats.peval_seconds = max_eval;
            } else {
                run_stats.inceval_seconds += max_eval;
            }
            run_stats.history.push(trace);
            run_stats.supersteps = superstep + 1;

            // Fixpoint: no worker changed any update parameter.
            if changed_parameters == 0 {
                break;
            }
            if superstep + 1 >= config.max_supersteps {
                return Err(RunError::SuperstepLimit(config.max_supersteps));
            }

            // Route the aggregated values to every fragment that has the
            // vertex on its border, except fragments already holding the
            // aggregated value.
            let mut outbox: Vec<Vec<(VertexId, P::Value)>> = vec![Vec::new(); n];
            for (v, (value, holders)) in aggregated {
                if let Some(homes) = border_homes.get(&v) {
                    for &f in homes {
                        if !holders.contains(&f) {
                            outbox[f].push((v, value.clone()));
                        }
                    }
                }
            }
            superstep += 1;
            pending = 0;
            for (f, messages) in outbox.into_iter().enumerate() {
                if !messages.is_empty() {
                    down_coord.send(
                        f,
                        CoordCommand::IncEval {
                            superstep,
                            messages,
                        },
                    );
                    pending += 1;
                }
            }
            if pending == 0 {
                // Changes happened but every interested fragment already
                // holds the aggregated values: fixpoint.
                break;
            }
        }

        run_stats.messages = stats.messages();
        run_stats.bytes = stats.bytes();
        Ok(run_stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::generators::{barabasi_albert, road_network, RoadNetworkConfig};
    use grape_graph::GraphBuilder;
    use grape_partition::{BuiltinStrategy, HashPartitioner, Partitioner};

    /// Connected components by min-label propagation: the update parameter of
    /// a border vertex is the smallest vertex id known to be connected to it.
    struct MinLabelCc;

    impl PieProgram for MinLabelCc {
        type Query = ();
        type VertexData = ();
        type EdgeData = f64;
        type Value = u64;
        type Partial = HashMap<VertexId, u64>;
        type Output = HashMap<VertexId, u64>;

        fn peval(
            &self,
            _q: &(),
            fragment: &Fragment<(), f64>,
            ctx: &mut PieContext<u64>,
        ) -> Self::Partial {
            // Local label propagation to convergence (sequential CC on F_i).
            let mut label: HashMap<VertexId, u64> =
                fragment.graph.vertices().map(|v| (v, v)).collect();
            let mut changed = true;
            while changed {
                changed = false;
                for (s, d, _) in fragment.graph.edges() {
                    let ls = label[&s];
                    let ld = label[&d];
                    let m = ls.min(ld);
                    if ls != m {
                        label.insert(s, m);
                        changed = true;
                    }
                    if ld != m {
                        label.insert(d, m);
                        changed = true;
                    }
                }
            }
            for &b in &fragment.border_vertices() {
                ctx.update(b, label[&b]);
            }
            label
        }

        fn inceval(
            &self,
            _q: &(),
            fragment: &Fragment<(), f64>,
            partial: &mut Self::Partial,
            messages: &[(VertexId, u64)],
            ctx: &mut PieContext<u64>,
        ) {
            let mut changed = false;
            for (v, incoming) in messages {
                if let Some(current) = partial.get_mut(v) {
                    if *incoming < *current {
                        *current = *incoming;
                        changed = true;
                    }
                }
            }
            while changed {
                changed = false;
                for (s, d, _) in fragment.graph.edges() {
                    let ls = partial[&s];
                    let ld = partial[&d];
                    let m = ls.min(ld);
                    if ls != m {
                        partial.insert(s, m);
                        changed = true;
                    }
                    if ld != m {
                        partial.insert(d, m);
                        changed = true;
                    }
                }
            }
            for &b in &fragment.border_vertices() {
                let value = partial[&b];
                ctx.update(b, value);
            }
        }

        fn assemble(&self, partials: Vec<Self::Partial>) -> Self::Output {
            // Keep the smallest label seen for each vertex (mirrors may carry
            // stale larger labels).
            let mut out: HashMap<VertexId, u64> = HashMap::new();
            for partial in partials {
                for (v, label) in partial {
                    out.entry(v)
                        .and_modify(|l| *l = (*l).min(label))
                        .or_insert(label);
                }
            }
            out
        }

        fn aggregate(&self, a: &u64, b: &u64) -> u64 {
            *a.min(b)
        }

        fn monotonic(&self, old: &u64, new: &u64) -> Option<bool> {
            Some(new <= old)
        }

        fn name(&self) -> &str {
            "min-label-cc"
        }
    }

    fn reference_cc(graph: &CsrGraph<(), f64>) -> HashMap<VertexId, u64> {
        grape_graph::metrics::weakly_connected_components(graph)
    }

    #[test]
    fn cc_matches_reference_on_power_law_graph() {
        let g = barabasi_albert(500, 3, 21).unwrap();
        let assignment = HashPartitioner.partition(&g, 4);
        let engine = GrapeEngine::new(MinLabelCc).with_config(EngineConfig {
            check_monotonicity: true,
            ..Default::default()
        });
        let result = engine.run_on_graph(&(), &g, &assignment).unwrap();
        let expected = reference_cc(&g);
        for v in g.vertices() {
            assert_eq!(result.output[&v], expected[&v], "vertex {v}");
        }
        assert_eq!(result.stats.monotonicity_violations, 0);
        assert!(result.stats.supersteps >= 1);
        assert_eq!(result.stats.num_workers, 4);
        assert_eq!(result.stats.program, "min-label-cc");
    }

    #[test]
    fn cc_on_disconnected_graph_keeps_components_apart() {
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..10u64 {
            b.add_edge(v, (v + 1) % 10, 1.0);
        }
        for v in 100..105u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = HashPartitioner.partition(&g, 3);
        let result = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        for v in 0..10u64 {
            assert_eq!(result.output[&v], 0);
        }
        for v in 100..=105u64 {
            assert_eq!(result.output[&v], 100);
        }
    }

    #[test]
    fn single_fragment_needs_one_superstep() {
        let g = barabasi_albert(100, 2, 3).unwrap();
        let assignment = HashPartitioner.partition(&g, 1);
        let result = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        assert_eq!(result.stats.supersteps, 1, "no borders, PEval suffices");
        assert_eq!(result.stats.messages, result.stats.history[0].messages);
        assert!(result.output.values().all(|&l| l == 0));
    }

    #[test]
    fn more_workers_more_supersteps_on_chains() {
        // A long chain partitioned into many contiguous ranges needs label
        // propagation across every boundary: supersteps grow with k.
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..64u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let few = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &grape_partition::RangePartitioner.partition(&g, 2))
            .unwrap();
        let many = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &grape_partition::RangePartitioner.partition(&g, 8))
            .unwrap();
        assert!(many.stats.supersteps > few.stats.supersteps);
        assert!(many.stats.messages > few.stats.messages);
        // Both still compute the right answer.
        assert!(many.output.values().all(|&l| l == 0));
        assert!(few.output.values().all(|&l| l == 0));
    }

    #[test]
    fn empty_fragment_list_is_an_error() {
        let engine = GrapeEngine::new(MinLabelCc);
        let err = engine.run(&(), &[]).unwrap_err();
        assert_eq!(err, RunError::NoFragments);
        assert!(err.to_string().contains("no fragments"));
    }

    #[test]
    fn superstep_limit_is_enforced() {
        /// A deliberately non-monotonic program that flips a border value
        /// forever.
        struct Oscillator;
        impl PieProgram for Oscillator {
            type Query = ();
            type VertexData = ();
            type EdgeData = f64;
            type Value = u64;
            type Partial = u64;
            type Output = u64;
            fn peval(
                &self,
                _q: &(),
                fragment: &Fragment<(), f64>,
                ctx: &mut PieContext<u64>,
            ) -> u64 {
                for &b in &fragment.border_vertices() {
                    ctx.update(b, fragment.id as u64);
                }
                0
            }
            fn inceval(
                &self,
                _q: &(),
                fragment: &Fragment<(), f64>,
                partial: &mut u64,
                _messages: &[(VertexId, u64)],
                ctx: &mut PieContext<u64>,
            ) {
                *partial += 1;
                for &b in &fragment.border_vertices() {
                    // Alternate the value every superstep: never converges.
                    ctx.update(b, *partial % 2 + fragment.id as u64 * 10);
                }
            }
            fn assemble(&self, partials: Vec<u64>) -> u64 {
                partials.into_iter().sum()
            }
            fn aggregate(&self, a: &u64, b: &u64) -> u64 {
                *a.min(b)
            }
            fn monotonic(&self, old: &u64, new: &u64) -> Option<bool> {
                Some(new <= old)
            }
        }
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..16u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = grape_partition::RangePartitioner.partition(&g, 2);
        let engine = GrapeEngine::new(Oscillator).with_config(EngineConfig {
            max_supersteps: 10,
            check_monotonicity: true,
        });
        let err = engine.run_on_graph(&(), &g, &assignment).unwrap_err();
        assert_eq!(err, RunError::SuperstepLimit(10));
    }

    #[test]
    fn statistics_history_is_consistent() {
        let g = road_network(
            RoadNetworkConfig {
                width: 16,
                height: 16,
                ..Default::default()
            },
            4,
        )
        .unwrap();
        let assignment = BuiltinStrategy::MetisLike.partition(&g, 4);
        let result = GrapeEngine::new(MinLabelCc)
            .run_on_graph(&(), &g, &assignment)
            .unwrap();
        let stats = &result.stats;
        assert_eq!(stats.history.len(), stats.supersteps);
        let history_messages: u64 = stats.history.iter().map(|t| t.messages).sum();
        assert_eq!(history_messages, stats.messages);
        assert!(stats.wall_time.as_secs_f64() > 0.0);
        assert!(stats.compute_seconds() >= stats.peval_seconds);
        // The first superstep involves every worker.
        assert_eq!(stats.history[0].active_workers, 4);
        assert!(!stats.summary().is_empty());
    }
}
