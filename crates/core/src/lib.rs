//! # grape-core
//!
//! The heart of GRAPE-RS: the **PIE programming model** (PEval + IncEval +
//! Assemble) and the **BSP fixpoint engine** that parallelizes it, following
//! Section 2 of *GRAPE: Parallelizing Sequential Graph Computations*
//! (PVLDB 2017).
//!
//! ## Programming model
//!
//! A query class `Q` is registered by implementing [`PieProgram`]:
//!
//! * [`PieProgram::peval`] — any sequential algorithm for `Q`, run on each
//!   fragment in parallel. It *declares update parameters* by writing values
//!   for border vertices into the [`PieContext`].
//! * [`PieProgram::inceval`] — a sequential incremental algorithm for `Q`
//!   that treats arriving border values as updates and refreshes the partial
//!   result.
//! * [`PieProgram::assemble`] — combines the partial results.
//! * [`PieProgram::aggregate`] — the conflict-resolution function (`min` for
//!   SSSP/CC, set union for keyword search, …) applied by the coordinator
//!   when several workers propose values for the same border vertex.
//!
//! ## Parallel model
//!
//! [`GrapeEngine::run`] executes the simultaneous fixpoint of Section 2.2:
//! superstep 0 runs PEval on every fragment; each subsequent superstep routes
//! changed update parameters through the coordinator (which applies the
//! aggregate function) and runs IncEval on the fragments that received
//! changes; when no update parameter changes anywhere, Assemble produces
//! `Q(G)`. Under the monotonicity condition of the Assurance Theorem the
//! fixpoint is reached in finitely many supersteps; the engine can optionally
//! verify that condition at run time ([`EngineConfig::check_monotonicity`]).

#![warn(missing_docs)]

pub mod chaos;
pub mod context;
pub mod converged;
pub mod engine;
pub mod message;
pub mod par;
pub mod program;
pub mod scratch;
pub mod ship;
pub mod stats;
pub mod transport;

pub use chaos::{ChaosConfig, ChaosCoordTransport, ChaosWorkerTransport, DeterministicRng};
pub use context::PieContext;
pub use converged::{ConvergedState, DeltaLog, Seeded};
pub use engine::{
    run_worker, EngineConfig, EngineConfigBuilder, ExecutionMode, GrapeEngine, GrapeResult,
    RunError,
};
pub use message::VertexValue;
pub use par::{ThreadCount, ThreadPool};
pub use program::PieProgram;
pub use scratch::ScratchPool;
pub use ship::{
    decode_fragment, decode_fragment_parts, encode_fragment, encode_fragment_epoch,
    encode_fragment_parts, TAG_FRAGMENT,
};
pub use stats::{RunStats, SuperstepTrace};
pub use transport::{CoordTransport, TransportError, TransportKind, WorkerTransport};

// Re-exports used by almost every PIE program.
pub use grape_comm::{MessageSize, Wire, WireError, WireReader};
pub use grape_graph::delta::MutationProfile;
pub use grape_graph::VertexId;
pub use grape_partition::{
    build_fragments, Fragment, FragmentId, FragmentParts, PartitionAssignment,
};
