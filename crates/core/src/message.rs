//! Messages exchanged between the coordinator and the workers.
//!
//! Since PR 3 the superstep traffic is **slot-addressed**: at run start the
//! coordinator assigns every distinct border vertex a stable `u32` slot id
//! and ships each fragment its local border→slot mapping in a one-time
//! [`CoordCommand::Init`] handshake. All subsequent reports and routed
//! updates identify border vertices by slot (`(u32, V)` pairs), which both
//! halves the id bytes on the wire (`u32` vs `u64`) and lets both endpoints
//! fold updates into flat arrays with no hashing per superstep.

use grape_comm::wire::{self, Wire, WireError, WireReader, HEADER_LEN};
use grape_comm::MessageSize;
use grape_graph::VertexId;

/// Frame tag of [`CoordCommand::Init`].
pub const TAG_INIT: u8 = 0x01;
/// Frame tag of [`CoordCommand::IncEval`].
pub const TAG_INCEVAL: u8 = 0x02;
/// Frame tag of [`CoordCommand::Finish`].
pub const TAG_FINISH: u8 = 0x03;
/// Frame tag of [`CoordCommand::Resume`].
pub const TAG_RESUME: u8 = 0x04;
/// Frame tag of [`WorkerReport::Done`].
pub const TAG_REPORT: u8 = 0x10;

/// A worker-side checkpoint: everything a replacement worker needs to take
/// over a fragment at a superstep boundary.
///
/// Captured right after a report is drained, so it is exactly the state the
/// coordinator believes the worker to be in: re-running the next `IncEval`
/// against a restored checkpoint reproduces the lost worker's report byte
/// for byte.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState<V> {
    /// The program's serialized partial result
    /// ([`crate::PieProgram::snapshot_partial`]).
    pub partial: Vec<u8>,
    /// The context's border values (last published value per border
    /// position), used for dirty-suppression on the next publication pass.
    pub border: Vec<Option<V>>,
}

impl<V: MessageSize> MessageSize for CheckpointState<V> {
    fn size_bytes(&self) -> usize {
        self.partial.size_bytes() + self.border.size_bytes()
    }
}

impl<V: Wire> Wire for CheckpointState<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.partial.encode(out);
        self.border.encode(out);
    }
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CheckpointState {
            partial: Vec::<u8>::decode(reader)?,
            border: Vec::<Option<V>>::decode(reader)?,
        })
    }
}

/// A `(vertex, value)` pair: one changed update parameter, addressed by
/// global vertex id. Used at the program-facing API boundary and for stray
/// (unroutable) updates.
pub type VertexValue<V> = (VertexId, V);

/// A `(slot, value)` pair: one changed update parameter, addressed by the
/// coordinator-assigned border slot. The wire format of superstep traffic.
pub type SlotValue<V> = (u32, V);

/// Message from a worker to the coordinator at the end of a superstep.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerReport<V> {
    /// The worker finished its PEval / IncEval call.
    Done {
        /// Superstep the report belongs to.
        superstep: usize,
        /// Border slots whose value changed during the call.
        changes: Vec<SlotValue<V>>,
        /// Updates to vertices outside this fragment's border (no slot, so
        /// unroutable). Empty for correct programs; carried so the
        /// coordinator's monotonicity diagnostic still sees them.
        strays: Vec<VertexValue<V>>,
        /// Post-superstep checkpoint of the worker's local state, attached
        /// when the job runs with checkpointing enabled. `None` otherwise.
        checkpoint: Option<CheckpointState<V>>,
        /// Wall-clock seconds the evaluation took on this worker.
        eval_seconds: f64,
    },
}

impl<V: MessageSize> MessageSize for WorkerReport<V> {
    fn size_bytes(&self) -> usize {
        match self {
            // superstep (8) + length-prefixed slot/value and stray vectors +
            // the optional checkpoint; the timing is bookkeeping a real
            // deployment would not ship, so it is not charged.
            WorkerReport::Done {
                changes,
                strays,
                checkpoint,
                ..
            } => 8 + changes.size_bytes() + strays.size_bytes() + checkpoint.size_bytes(),
        }
    }
}

impl<V: Wire> WorkerReport<V> {
    /// Bytes a framed report occupies beyond its [`MessageSize`] estimate:
    /// the frame header plus the `eval_seconds` bookkeeping field (shipped on
    /// the wire, but deliberately not charged by the estimate).
    pub const WIRE_OVERHEAD: usize = HEADER_LEN + 8;

    /// Appends this report as one complete epoch-0 frame to `out`.
    pub fn encode_frame(&self, out: &mut Vec<u8>) {
        self.encode_frame_epoch(0, out);
    }

    /// Appends this report as one complete frame stamped with `epoch`, so a
    /// coordinator that bumped the run epoch during recovery can fence it.
    pub fn encode_frame_epoch(&self, epoch: u32, out: &mut Vec<u8>) {
        match self {
            WorkerReport::Done {
                superstep,
                changes,
                strays,
                checkpoint,
                eval_seconds,
            } => wire::encode_frame_with_epoch(TAG_REPORT, epoch, out, |out| {
                superstep.encode(out);
                changes.encode(out);
                strays.encode(out);
                checkpoint.encode(out);
                eval_seconds.encode(out);
            }),
        }
    }

    /// Splits one framed report off the front of `buf`, returning it with
    /// the number of bytes consumed. The payload must decode exactly —
    /// trailing garbage inside the frame is a [`WireError::TrailingBytes`].
    pub fn decode_frame(buf: &[u8]) -> Result<(Self, usize), WireError> {
        let (tag, body, consumed) = wire::decode_frame(buf)?;
        Ok((Self::decode_body(tag, body)?, consumed))
    }

    /// Decodes a report from an already-unframed `(tag, body)` pair, as
    /// produced by [`wire::decode_frame`] / [`wire::read_frame_io`].
    pub fn decode_body(tag: u8, body: &[u8]) -> Result<Self, WireError> {
        if tag != TAG_REPORT {
            return Err(WireError::BadTag { found: tag });
        }
        let mut reader = WireReader::new(body);
        let superstep = usize::decode(&mut reader)?;
        let changes = Vec::<SlotValue<V>>::decode(&mut reader)?;
        let strays = Vec::<VertexValue<V>>::decode(&mut reader)?;
        let checkpoint = Option::<CheckpointState<V>>::decode(&mut reader)?;
        let eval_seconds = f64::decode(&mut reader)?;
        reader.finish()?;
        Ok(WorkerReport::Done {
            superstep,
            changes,
            strays,
            checkpoint,
            eval_seconds,
        })
    }
}

/// Message from the coordinator to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordCommand<V> {
    /// One-time handshake sent before PEval: the slot id of each of the
    /// fragment's border vertices, aligned with
    /// `Fragment::border_vertices()`. Every later report and routed update
    /// is expressed in these slots.
    Init {
        /// `border_slots[i]` is the slot of the fragment's `i`-th border
        /// vertex (ascending vertex-id order, the fragment's own border
        /// order).
        border_slots: Vec<u32>,
    },
    /// Run IncEval with these aggregated border values.
    IncEval {
        /// Superstep being started.
        superstep: usize,
        /// Aggregated `(slot, value)` updates relevant to this fragment.
        updates: Vec<SlotValue<V>>,
    },
    /// Recovery handshake for a replacement worker: like [`Init`] it ships
    /// the border→slot mapping, but instead of running PEval the worker
    /// restores the checkpointed state and waits for the next command (the
    /// coordinator replays the in-flight superstep's `IncEval`, or sends
    /// `Finish`). No report is produced.
    ///
    /// [`Init`]: CoordCommand::Init
    Resume {
        /// Superstep the checkpoint was taken after; the next `IncEval`
        /// carries `superstep + 1`.
        superstep: usize,
        /// Border→slot mapping, exactly as in [`CoordCommand::Init`].
        border_slots: Vec<u32>,
        /// The lost worker's last checkpoint. `None` only when the worker
        /// died before its PEval report landed — the replacement then runs
        /// PEval from scratch instead of restoring.
        checkpoint: Option<CheckpointState<V>>,
    },
    /// Fixpoint reached: stop and hand back the partial result.
    Finish,
}

impl<V: MessageSize> MessageSize for CoordCommand<V> {
    fn size_bytes(&self) -> usize {
        match self {
            CoordCommand::Init { border_slots } => border_slots.size_bytes(),
            CoordCommand::IncEval { updates, .. } => 8 + updates.size_bytes(),
            CoordCommand::Resume {
                border_slots,
                checkpoint,
                ..
            } => 8 + border_slots.size_bytes() + checkpoint.size_bytes(),
            CoordCommand::Finish => 1,
        }
    }
}

impl<V: Wire> CoordCommand<V> {
    /// Bytes a framed command occupies beyond its [`MessageSize`] estimate:
    /// exactly the frame header (command payloads encode to their estimated
    /// size, byte for byte).
    pub const WIRE_OVERHEAD: usize = HEADER_LEN;

    /// Appends this command as one complete epoch-0 frame to `out`.
    pub fn encode_frame(&self, out: &mut Vec<u8>) {
        self.encode_frame_epoch(0, out);
    }

    /// Appends this command as one complete frame stamped with `epoch`;
    /// workers fence commands whose epoch differs from their connection's.
    pub fn encode_frame_epoch(&self, epoch: u32, out: &mut Vec<u8>) {
        match self {
            CoordCommand::Init { border_slots } => {
                wire::encode_frame_epoch(TAG_INIT, epoch, border_slots, out)
            }
            CoordCommand::IncEval { superstep, updates } => {
                wire::encode_frame_with_epoch(TAG_INCEVAL, epoch, out, |out| {
                    superstep.encode(out);
                    updates.encode(out);
                })
            }
            CoordCommand::Resume {
                superstep,
                border_slots,
                checkpoint,
            } => wire::encode_frame_with_epoch(TAG_RESUME, epoch, out, |out| {
                superstep.encode(out);
                border_slots.encode(out);
                checkpoint.encode(out);
            }),
            // A one-byte body, so the framed payload length equals the
            // MessageSize estimate of 1.
            CoordCommand::Finish => wire::encode_frame_epoch(TAG_FINISH, epoch, &0u8, out),
        }
    }

    /// Splits one framed command off the front of `buf`, returning it with
    /// the number of bytes consumed. Unknown tags are a
    /// [`WireError::BadTag`]; partial input is a [`WireError::Truncated`];
    /// leftover payload bytes are a [`WireError::TrailingBytes`].
    pub fn decode_frame(buf: &[u8]) -> Result<(Self, usize), WireError> {
        let (tag, body, consumed) = wire::decode_frame(buf)?;
        Ok((Self::decode_body(tag, body)?, consumed))
    }

    /// Decodes a command from an already-unframed `(tag, body)` pair, as
    /// produced by [`wire::decode_frame`] / [`wire::read_frame_io`].
    pub fn decode_body(tag: u8, body: &[u8]) -> Result<Self, WireError> {
        let mut reader = WireReader::new(body);
        let command = match tag {
            TAG_INIT => CoordCommand::Init {
                border_slots: Vec::<u32>::decode(&mut reader)?,
            },
            TAG_INCEVAL => CoordCommand::IncEval {
                superstep: usize::decode(&mut reader)?,
                updates: Vec::<SlotValue<V>>::decode(&mut reader)?,
            },
            TAG_RESUME => CoordCommand::Resume {
                superstep: usize::decode(&mut reader)?,
                border_slots: Vec::<u32>::decode(&mut reader)?,
                checkpoint: Option::<CheckpointState<V>>::decode(&mut reader)?,
            },
            TAG_FINISH => {
                reader.u8()?;
                CoordCommand::Finish
            }
            other => return Err(WireError::BadTag { found: other }),
        };
        reader.finish()?;
        Ok(command)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_size_counts_changes_and_strays() {
        // 8 (superstep) + 4 (changes length) + 2 × (4 + 8) + 4 (strays
        // length) + 1 (absent checkpoint): slot ids cost 4 bytes where
        // vertex ids cost 8.
        let r: WorkerReport<f64> = WorkerReport::Done {
            superstep: 3,
            changes: vec![(1, 1.0), (2, 2.0)],
            strays: vec![],
            checkpoint: None,
            eval_seconds: 0.5,
        };
        assert_eq!(r.size_bytes(), 8 + 4 + 2 * 12 + 4 + 1);
        // Strays are vertex-addressed: 8 + 8 per entry.
        let s: WorkerReport<f64> = WorkerReport::Done {
            superstep: 3,
            changes: vec![],
            strays: vec![(9, 1.0)],
            checkpoint: None,
            eval_seconds: 0.5,
        };
        assert_eq!(s.size_bytes(), 8 + 4 + 4 + 16 + 1);
        // A present checkpoint charges its flag byte plus both vectors:
        // 1 (Some) + 4 + 2 (partial bytes) + 4 + (1 + 8) + 1 (border).
        let c: WorkerReport<f64> = WorkerReport::Done {
            superstep: 3,
            changes: vec![],
            strays: vec![],
            checkpoint: Some(CheckpointState {
                partial: vec![0xaa, 0xbb],
                border: vec![Some(1.5), None],
            }),
            eval_seconds: 0.5,
        };
        assert_eq!(c.size_bytes(), 8 + 4 + 4 + (1 + 4 + 2 + 4 + 9 + 1));
    }

    #[test]
    fn command_sizes() {
        let c: CoordCommand<u64> = CoordCommand::IncEval {
            superstep: 1,
            updates: vec![(1, 9)],
        };
        assert_eq!(c.size_bytes(), 8 + 4 + (4 + 8));
        let i: CoordCommand<u64> = CoordCommand::Init {
            border_slots: vec![0, 1, 2],
        };
        assert_eq!(i.size_bytes(), 4 + 3 * 4);
        let f: CoordCommand<u64> = CoordCommand::Finish;
        assert_eq!(f.size_bytes(), 1);
        // Resume = superstep (8) + border_slots (4 + 2×4) + checkpoint
        // (1 Some + 4 + 1 partial + 4 + 9 border).
        let r: CoordCommand<u64> = CoordCommand::Resume {
            superstep: 2,
            border_slots: vec![0, 1],
            checkpoint: Some(CheckpointState {
                partial: vec![7],
                border: vec![Some(9)],
            }),
        };
        assert_eq!(r.size_bytes(), 8 + (4 + 8) + (1 + 4 + 1 + 4 + 9));
    }

    #[test]
    fn command_frames_roundtrip_bit_identically() {
        let commands: Vec<CoordCommand<f64>> = vec![
            CoordCommand::Init {
                border_slots: vec![3, 1, 4, 1, 5],
            },
            CoordCommand::IncEval {
                superstep: 42,
                updates: vec![(7, 2.5), (9, f64::INFINITY)],
            },
            CoordCommand::Resume {
                superstep: 5,
                border_slots: vec![2, 7, 1],
                checkpoint: Some(CheckpointState {
                    partial: vec![1, 2, 3, 4],
                    border: vec![None, Some(0.5), Some(f64::NEG_INFINITY)],
                }),
            },
            CoordCommand::Resume {
                superstep: 0,
                border_slots: vec![],
                checkpoint: None,
            },
            CoordCommand::Finish,
        ];
        for command in &commands {
            let mut frame = Vec::new();
            command.encode_frame(&mut frame);
            // Framed size = estimate + header, exactly.
            assert_eq!(
                frame.len(),
                command.size_bytes() + CoordCommand::<f64>::WIRE_OVERHEAD
            );
            let (back, consumed) = CoordCommand::<f64>::decode_frame(&frame).unwrap();
            assert_eq!(&back, command);
            assert_eq!(consumed, frame.len());
        }
        // Frames are self-delimiting: a concatenated stream splits cleanly.
        let mut stream = Vec::new();
        for command in &commands {
            command.encode_frame(&mut stream);
        }
        let mut offset = 0;
        for command in &commands {
            let (back, consumed) = CoordCommand::<f64>::decode_frame(&stream[offset..]).unwrap();
            assert_eq!(&back, command);
            offset += consumed;
        }
        assert_eq!(offset, stream.len());
    }

    #[test]
    fn report_frames_roundtrip_and_charge_exact_overhead() {
        let report: WorkerReport<f64> = WorkerReport::Done {
            superstep: 3,
            changes: vec![(1, 1.0), (2, f64::NEG_INFINITY)],
            strays: vec![(77, 0.25)],
            checkpoint: Some(CheckpointState {
                partial: vec![9, 8, 7],
                border: vec![Some(2.25), None, Some(0.0)],
            }),
            eval_seconds: 0.125,
        };
        let mut frame = Vec::new();
        report.encode_frame(&mut frame);
        // Framed size = estimate + header + the uncharged eval_seconds field.
        assert_eq!(
            frame.len(),
            report.size_bytes() + WorkerReport::<f64>::WIRE_OVERHEAD
        );
        let (back, consumed) = WorkerReport::<f64>::decode_frame(&frame).unwrap();
        assert_eq!(back, report);
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn decoding_rejects_wrong_tags_and_garbage() {
        let mut report_frame = Vec::new();
        WorkerReport::<f64>::Done {
            superstep: 0,
            changes: vec![],
            strays: vec![],
            checkpoint: None,
            eval_seconds: 0.0,
        }
        .encode_frame(&mut report_frame);
        // A report frame is not a command.
        assert!(matches!(
            CoordCommand::<f64>::decode_frame(&report_frame),
            Err(WireError::BadTag { found: TAG_REPORT })
        ));
        // Truncation anywhere in the frame is detected.
        let err = WorkerReport::<f64>::decode_frame(&report_frame[..report_frame.len() - 1]);
        assert!(matches!(err, Err(WireError::Truncated { .. })));
        // Garbage appended *inside* the declared payload is trailing bytes.
        let mut inflated = Vec::new();
        CoordCommand::<f64>::Finish.encode_frame(&mut inflated);
        let len = u32::from_le_bytes(inflated[8..12].try_into().unwrap());
        inflated.push(0xab);
        inflated[8..12].copy_from_slice(&(len + 1).to_le_bytes());
        assert!(matches!(
            CoordCommand::<f64>::decode_frame(&inflated),
            Err(WireError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn slot_addressing_is_smaller_than_vertex_addressing() {
        // The PR 2 wire shape was (u64 id, value); the slot shape is
        // (u32 slot, value). For f64 values that is 12 vs 16 bytes per
        // changed parameter.
        let slot: Vec<SlotValue<f64>> = vec![(7, 1.5)];
        let vertex: Vec<VertexValue<f64>> = vec![(7, 1.5)];
        assert_eq!(slot.size_bytes() + 4, vertex.size_bytes());
    }
}
