//! Messages exchanged between the coordinator and the workers.

use grape_comm::MessageSize;
use grape_graph::VertexId;

/// A `(vertex, value)` pair: one changed update parameter.
pub type VertexValue<V> = (VertexId, V);

/// Message from a worker to the coordinator at the end of a superstep.
#[derive(Debug, Clone)]
pub enum WorkerReport<V> {
    /// The worker finished its PEval / IncEval call.
    Done {
        /// Superstep the report belongs to.
        superstep: usize,
        /// Update parameters whose value changed during the call.
        changes: Vec<VertexValue<V>>,
        /// Wall-clock seconds the evaluation took on this worker.
        eval_seconds: f64,
    },
}

impl<V: MessageSize> MessageSize for WorkerReport<V> {
    fn size_bytes(&self) -> usize {
        match self {
            // superstep (8) + vector of (id, value) + timing is bookkeeping
            // that a real deployment would not ship, so it is not charged.
            WorkerReport::Done { changes, .. } => {
                8 + changes
                    .iter()
                    .map(|(v, val)| v.size_bytes() + val.size_bytes())
                    .sum::<usize>()
            }
        }
    }
}

/// Message from the coordinator to a worker.
#[derive(Debug, Clone)]
pub enum CoordCommand<V> {
    /// Run IncEval with these aggregated border values.
    IncEval {
        /// Superstep being started.
        superstep: usize,
        /// Aggregated `(vertex, value)` updates relevant to this fragment.
        messages: Vec<VertexValue<V>>,
    },
    /// Fixpoint reached: stop and hand back the partial result.
    Finish,
}

impl<V: MessageSize> MessageSize for CoordCommand<V> {
    fn size_bytes(&self) -> usize {
        match self {
            CoordCommand::IncEval { messages, .. } => {
                8 + messages
                    .iter()
                    .map(|(v, val)| v.size_bytes() + val.size_bytes())
                    .sum::<usize>()
            }
            CoordCommand::Finish => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_size_counts_changes() {
        let r: WorkerReport<f64> = WorkerReport::Done {
            superstep: 3,
            changes: vec![(1, 1.0), (2, 2.0)],
            eval_seconds: 0.5,
        };
        assert_eq!(r.size_bytes(), 8 + 2 * 16);
    }

    #[test]
    fn command_sizes() {
        let c: CoordCommand<u64> = CoordCommand::IncEval {
            superstep: 1,
            messages: vec![(1, 9)],
        };
        assert_eq!(c.size_bytes(), 8 + 16);
        let f: CoordCommand<u64> = CoordCommand::Finish;
        assert_eq!(f.size_bytes(), 1);
    }
}
