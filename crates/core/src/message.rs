//! Messages exchanged between the coordinator and the workers.
//!
//! Since PR 3 the superstep traffic is **slot-addressed**: at run start the
//! coordinator assigns every distinct border vertex a stable `u32` slot id
//! and ships each fragment its local border→slot mapping in a one-time
//! [`CoordCommand::Init`] handshake. All subsequent reports and routed
//! updates identify border vertices by slot (`(u32, V)` pairs), which both
//! halves the id bytes on the wire (`u32` vs `u64`) and lets both endpoints
//! fold updates into flat arrays with no hashing per superstep.

use grape_comm::MessageSize;
use grape_graph::VertexId;

/// A `(vertex, value)` pair: one changed update parameter, addressed by
/// global vertex id. Used at the program-facing API boundary and for stray
/// (unroutable) updates.
pub type VertexValue<V> = (VertexId, V);

/// A `(slot, value)` pair: one changed update parameter, addressed by the
/// coordinator-assigned border slot. The wire format of superstep traffic.
pub type SlotValue<V> = (u32, V);

/// Message from a worker to the coordinator at the end of a superstep.
#[derive(Debug, Clone)]
pub enum WorkerReport<V> {
    /// The worker finished its PEval / IncEval call.
    Done {
        /// Superstep the report belongs to.
        superstep: usize,
        /// Border slots whose value changed during the call.
        changes: Vec<SlotValue<V>>,
        /// Updates to vertices outside this fragment's border (no slot, so
        /// unroutable). Empty for correct programs; carried so the
        /// coordinator's monotonicity diagnostic still sees them.
        strays: Vec<VertexValue<V>>,
        /// Wall-clock seconds the evaluation took on this worker.
        eval_seconds: f64,
    },
}

impl<V: MessageSize> MessageSize for WorkerReport<V> {
    fn size_bytes(&self) -> usize {
        match self {
            // superstep (8) + length-prefixed slot/value and stray vectors;
            // the timing is bookkeeping a real deployment would not ship, so
            // it is not charged.
            WorkerReport::Done {
                changes, strays, ..
            } => 8 + changes.size_bytes() + strays.size_bytes(),
        }
    }
}

/// Message from the coordinator to a worker.
#[derive(Debug, Clone)]
pub enum CoordCommand<V> {
    /// One-time handshake sent before PEval: the slot id of each of the
    /// fragment's border vertices, aligned with
    /// `Fragment::border_vertices()`. Every later report and routed update
    /// is expressed in these slots.
    Init {
        /// `border_slots[i]` is the slot of the fragment's `i`-th border
        /// vertex (ascending vertex-id order, the fragment's own border
        /// order).
        border_slots: Vec<u32>,
    },
    /// Run IncEval with these aggregated border values.
    IncEval {
        /// Superstep being started.
        superstep: usize,
        /// Aggregated `(slot, value)` updates relevant to this fragment.
        updates: Vec<SlotValue<V>>,
    },
    /// Fixpoint reached: stop and hand back the partial result.
    Finish,
}

impl<V: MessageSize> MessageSize for CoordCommand<V> {
    fn size_bytes(&self) -> usize {
        match self {
            CoordCommand::Init { border_slots } => border_slots.size_bytes(),
            CoordCommand::IncEval { updates, .. } => 8 + updates.size_bytes(),
            CoordCommand::Finish => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_size_counts_changes_and_strays() {
        // 8 (superstep) + 4 (changes length) + 2 × (4 + 8) + 4 (strays
        // length): slot ids cost 4 bytes where vertex ids cost 8.
        let r: WorkerReport<f64> = WorkerReport::Done {
            superstep: 3,
            changes: vec![(1, 1.0), (2, 2.0)],
            strays: vec![],
            eval_seconds: 0.5,
        };
        assert_eq!(r.size_bytes(), 8 + 4 + 2 * 12 + 4);
        // Strays are vertex-addressed: 8 + 8 per entry.
        let s: WorkerReport<f64> = WorkerReport::Done {
            superstep: 3,
            changes: vec![],
            strays: vec![(9, 1.0)],
            eval_seconds: 0.5,
        };
        assert_eq!(s.size_bytes(), 8 + 4 + 4 + 16);
    }

    #[test]
    fn command_sizes() {
        let c: CoordCommand<u64> = CoordCommand::IncEval {
            superstep: 1,
            updates: vec![(1, 9)],
        };
        assert_eq!(c.size_bytes(), 8 + 4 + (4 + 8));
        let i: CoordCommand<u64> = CoordCommand::Init {
            border_slots: vec![0, 1, 2],
        };
        assert_eq!(i.size_bytes(), 4 + 3 * 4);
        let f: CoordCommand<u64> = CoordCommand::Finish;
        assert_eq!(f.size_bytes(), 1);
    }

    #[test]
    fn slot_addressing_is_smaller_than_vertex_addressing() {
        // The PR 2 wire shape was (u64 id, value); the slot shape is
        // (u32 slot, value). For f64 values that is 12 vs 16 bytes per
        // changed parameter.
        let slot: Vec<SlotValue<f64>> = vec![(7, 1.5)];
        let vertex: Vec<VertexValue<f64>> = vec![(7, 1.5)];
        assert_eq!(slot.size_bytes() + 4, vertex.size_bytes());
    }
}
