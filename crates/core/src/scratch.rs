//! Per-query scratch-buffer recycling for resident sessions.
//!
//! One-shot runs could lean on process teardown to reclaim encode buffers; a
//! resident service cannot — its workers serve an unbounded query stream, so
//! scratch state must be recycled *and provably clean* between queries. A
//! [`ScratchPool`] keys recycled byte buffers by query id (the run id of the
//! query that used them) and asserts on every acquire that a recycled buffer
//! comes back empty: a dirty buffer means some code path released scratch
//! without resetting it, exactly the class of cross-query leak that would
//! corrupt a later query's frames.

use std::collections::HashMap;
use std::sync::Mutex;

/// A pool of recycled byte buffers, keyed by query (run) id.
///
/// The discipline is deliberate:
///
/// * [`ScratchPool::release`] stores the buffer **verbatim** — it does not
///   clear it for the caller. Resetting scratch is the releasing code path's
///   job, which keeps the pool an effective leak detector instead of a
///   blanket absolution.
/// * [`ScratchPool::acquire`] `debug_assert!`s that every recycled buffer is
///   empty, so a forgotten reset fails loudly in debug/test builds instead
///   of silently prefixing the next query's bytes with the last query's.
/// * [`ScratchPool::retire`] drops a finished query's buffers so a resident
///   process does not accumulate scratch for every query it ever served.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<HashMap<u32, Vec<Vec<u8>>>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a buffer for `query_id`: a recycled one when available
    /// (asserting it was released clean), a fresh one otherwise.
    pub fn acquire(&self, query_id: u32) -> Vec<u8> {
        let mut free = self.free.lock().unwrap();
        match free.get_mut(&query_id).and_then(Vec::pop) {
            Some(buf) => {
                debug_assert!(
                    buf.is_empty(),
                    "scratch leak: buffer for query {query_id} recycled with {} stale bytes",
                    buf.len()
                );
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns `buf` to `query_id`'s free list, verbatim. Callers must clear
    /// the buffer first (keeping its capacity); [`ScratchPool::acquire`]
    /// asserts on that.
    pub fn release(&self, query_id: u32, buf: Vec<u8>) {
        self.free
            .lock()
            .unwrap()
            .entry(query_id)
            .or_default()
            .push(buf);
    }

    /// Drops every buffer held for `query_id` (the query finished).
    pub fn retire(&self, query_id: u32) {
        self.free.lock().unwrap().remove(&query_id);
    }

    /// Buffers currently pooled for `query_id`.
    pub fn pooled(&self, query_id: u32) -> usize {
        self.free.lock().unwrap().get(&query_id).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_capacity_per_query() {
        let pool = ScratchPool::new();
        let mut buf = pool.acquire(7);
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let cap = buf.capacity();
        buf.clear();
        pool.release(7, buf);
        assert_eq!(pool.pooled(7), 1);

        // Another query's id never sees query 7's buffers.
        assert_eq!(pool.acquire(8).capacity(), 0);

        let recycled = pool.acquire(7);
        assert_eq!(recycled.capacity(), cap);
        assert!(recycled.is_empty());
        assert_eq!(pool.pooled(7), 0);
    }

    #[test]
    fn retire_drops_a_querys_buffers() {
        let pool = ScratchPool::new();
        pool.release(3, Vec::with_capacity(64));
        pool.release(3, Vec::with_capacity(64));
        assert_eq!(pool.pooled(3), 2);
        pool.retire(3);
        assert_eq!(pool.pooled(3), 0);
        assert_eq!(pool.acquire(3).capacity(), 0);
    }

    #[test]
    #[should_panic(expected = "scratch leak")]
    #[cfg(debug_assertions)]
    fn dirty_release_is_caught_on_acquire() {
        let pool = ScratchPool::new();
        pool.release(1, vec![0xde, 0xad]);
        let _ = pool.acquire(1);
    }
}
