//! Communication accounting.
//!
//! Every send through the [`crate::CommNetwork`] (and every logical message
//! the baseline engines ship) is recorded here. The counters reproduce the
//! two communication columns the paper reports: total message count (the
//! LiveJournal partition experiment reports 7.5 M vs 40 M messages) and
//! total volume in MB (Table 1 reports 0.05 MB for GRAPE vs 10^5 MB for the
//! vertex-centric systems).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-superstep communication snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuperstepStats {
    /// Superstep index (0 = PEval round in the PIE engine).
    pub superstep: usize,
    /// Messages sent during the superstep.
    pub messages: u64,
    /// Bytes sent during the superstep.
    pub bytes: u64,
}

/// Thread-safe communication counters shared by all workers of a job.
#[derive(Debug, Default)]
pub struct CommStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    history: Mutex<Vec<SuperstepStats>>,
}

impl CommStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `messages` logical messages totalling `bytes` bytes.
    pub fn record(&self, messages: u64, bytes: u64) {
        self.messages.fetch_add(messages, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Total messages recorded so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total bytes recorded so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total volume in megabytes (10^6 bytes, as the paper reports MB).
    pub fn megabytes(&self) -> f64 {
        self.bytes() as f64 / 1_000_000.0
    }

    /// Closes the current superstep: records a history entry containing the
    /// traffic since the previous snapshot and returns it.
    pub fn end_superstep(&self, superstep: usize) -> SuperstepStats {
        let mut history = self.history.lock();
        let (prev_m, prev_b) = history
            .iter()
            .fold((0u64, 0u64), |(m, b), s| (m + s.messages, b + s.bytes));
        let entry = SuperstepStats {
            superstep,
            messages: self.messages().saturating_sub(prev_m),
            bytes: self.bytes().saturating_sub(prev_b),
        };
        history.push(entry);
        entry
    }

    /// The per-superstep history recorded by [`CommStats::end_superstep`].
    pub fn history(&self) -> Vec<SuperstepStats> {
        self.history.lock().clone()
    }

    /// Resets all counters and the history.
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.history.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_accumulates() {
        let s = CommStats::new();
        s.record(3, 24);
        s.record(2, 16);
        assert_eq!(s.messages(), 5);
        assert_eq!(s.bytes(), 40);
        assert!((s.megabytes() - 40e-6).abs() < 1e-12);
    }

    #[test]
    fn superstep_history_tracks_deltas() {
        let s = CommStats::new();
        s.record(10, 100);
        let first = s.end_superstep(0);
        assert_eq!(first.messages, 10);
        assert_eq!(first.bytes, 100);
        s.record(5, 50);
        let second = s.end_superstep(1);
        assert_eq!(second.messages, 5);
        assert_eq!(second.bytes, 50);
        let h = s.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].superstep, 0);
        assert_eq!(h[1].superstep, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let s = CommStats::new();
        s.record(1, 1);
        s.end_superstep(0);
        s.reset();
        assert_eq!(s.messages(), 0);
        assert_eq!(s.bytes(), 0);
        assert!(s.history().is_empty());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let s = Arc::new(CommStats::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    s.record(1, 8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.messages(), 8_000);
        assert_eq!(s.bytes(), 64_000);
    }
}
