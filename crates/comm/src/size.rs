//! Estimating the wire size of messages.
//!
//! The real GRAPE prototype ships update parameters over MPI; the
//! communication volumes it reports are serialized bytes. Our in-process
//! simulation never serializes, so [`MessageSize`] provides a deterministic
//! estimate of what the serialized size would be. The estimates use the
//! natural fixed-width encoding (8 bytes for ids/doubles/integers, length +
//! payload for strings and vectors), which is what a compact MPI encoding of
//! the same data would occupy.

use bytes::Bytes;

/// Estimated serialized size of a message, in bytes.
pub trait MessageSize {
    /// Number of bytes this value would occupy on the wire.
    fn size_bytes(&self) -> usize;
}

macro_rules! fixed_size {
    ($($t:ty => $n:expr),* $(,)?) => {
        $(impl MessageSize for $t {
            fn size_bytes(&self) -> usize { $n }
        })*
    };
}

fixed_size!(
    u8 => 1,
    u16 => 2,
    u32 => 4,
    u64 => 8,
    usize => 8,
    i8 => 1,
    i16 => 2,
    i32 => 4,
    i64 => 8,
    isize => 8,
    f32 => 4,
    f64 => 8,
    bool => 1,
    () => 0,
);

impl MessageSize for String {
    fn size_bytes(&self) -> usize {
        4 + self.len()
    }
}

impl MessageSize for &str {
    fn size_bytes(&self) -> usize {
        4 + self.len()
    }
}

impl MessageSize for Bytes {
    fn size_bytes(&self) -> usize {
        4 + self.len()
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn size_bytes(&self) -> usize {
        1 + self.as_ref().map(|v| v.size_bytes()).unwrap_or(0)
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn size_bytes(&self) -> usize {
        4 + self.iter().map(MessageSize::size_bytes).sum::<usize>()
    }
}

impl<T: MessageSize> MessageSize for Box<T> {
    fn size_bytes(&self) -> usize {
        self.as_ref().size_bytes()
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes()
    }
}

impl<A: MessageSize, B: MessageSize, C: MessageSize> MessageSize for (A, B, C) {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes() + self.2.size_bytes()
    }
}

impl<A: MessageSize, B: MessageSize, C: MessageSize, D: MessageSize> MessageSize for (A, B, C, D) {
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes() + self.2.size_bytes() + self.3.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(1u8.size_bytes(), 1);
        assert_eq!(1u64.size_bytes(), 8);
        assert_eq!(1.5f64.size_bytes(), 8);
        assert_eq!(true.size_bytes(), 1);
        assert_eq!(().size_bytes(), 0);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u64, 2.0f64).size_bytes(), 16);
        assert_eq!((1u64, 2.0f64, 3u32).size_bytes(), 20);
        let v: Vec<(u64, f64)> = vec![(1, 1.0), (2, 2.0)];
        assert_eq!(v.size_bytes(), 4 + 2 * 16);
        assert_eq!(Some(7u64).size_bytes(), 9);
        assert_eq!(Option::<u64>::None.size_bytes(), 1);
    }

    #[test]
    fn string_and_bytes_sizes() {
        assert_eq!("abc".size_bytes(), 7);
        assert_eq!(String::from("abcd").size_bytes(), 8);
        assert_eq!(Bytes::from_static(b"xy").size_bytes(), 6);
        assert_eq!(Box::new(3u64).size_bytes(), 8);
    }

    #[test]
    fn empty_vec_has_header_only() {
        let v: Vec<u64> = vec![];
        assert_eq!(v.size_bytes(), 4);
    }
}
