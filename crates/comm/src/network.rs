//! All-to-all in-process "network" between workers and the coordinator.
//!
//! [`CommNetwork::new(n)`] creates `n` worker endpoints plus one coordinator
//! endpoint (address [`COORDINATOR`]). Each endpoint is a [`WorkerLink`] that
//! can be moved into its worker thread. Sends are unbounded and never block;
//! receives drain whatever has arrived, which matches BSP semantics where a
//! superstep boundary separates sending from receiving.
//!
//! Every send is counted in the shared [`CommStats`] **except** messages a
//! worker sends to itself — in a real deployment those never reach the
//! network, and counting them would inflate the communication columns of the
//! reproduced tables.

use crate::size::MessageSize;
use crate::stats::CommStats;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;

/// The address of the coordinator endpoint (`P_0` in the paper).
pub const COORDINATOR: usize = usize::MAX;

/// An addressed message in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<T> {
    /// Sender address (worker index or [`COORDINATOR`]).
    pub from: usize,
    /// Payload.
    pub payload: T,
}

/// One endpoint of the network, owned by a worker thread (or the coordinator).
#[derive(Debug)]
pub struct WorkerLink<T> {
    id: usize,
    to_workers: Vec<Sender<Envelope<T>>>,
    to_coordinator: Sender<Envelope<T>>,
    inbox: Receiver<Envelope<T>>,
    stats: Arc<CommStats>,
}

impl<T: MessageSize> WorkerLink<T> {
    /// This endpoint's address.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of worker endpoints in the network (excluding the coordinator).
    pub fn num_workers(&self) -> usize {
        self.to_workers.len()
    }

    /// Shared communication counters.
    pub fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    /// Sends `payload` to worker `to` (or to [`COORDINATOR`]).
    ///
    /// Returns `false` if the destination does not exist or its endpoint has
    /// been dropped; the latter only happens during shutdown.
    pub fn send(&self, to: usize, payload: T) -> bool {
        let size = payload.size_bytes() as u64;
        let envelope = Envelope {
            from: self.id,
            payload,
        };
        let tx = if to == COORDINATOR {
            &self.to_coordinator
        } else {
            match self.to_workers.get(to) {
                Some(tx) => tx,
                None => return false,
            }
        };
        if to != self.id {
            // Self-sends stay local; everything else is "network" traffic.
            // Recorded *before* the channel hand-off: the receiver may drain
            // the message and close its superstep accounting window right
            // away, and a record issued after the hand-off could land in the
            // next window. (A send to an endpoint dropped during shutdown is
            // still counted; by then nobody reads the counters.)
            self.stats.record(1, size);
        }
        tx.send(envelope).is_ok()
    }

    /// Drains every message that has arrived so far.
    pub fn drain(&self) -> Vec<Envelope<T>> {
        let mut out = Vec::new();
        while let Ok(env) = self.inbox.try_recv() {
            out.push(env);
        }
        out
    }

    /// Blocks until at least one message arrives, then drains the rest.
    ///
    /// Returns an empty vector if every sender has disconnected.
    pub fn recv_blocking(&self) -> Vec<Envelope<T>> {
        match self.inbox.recv() {
            Ok(first) => {
                let mut out = vec![first];
                out.extend(self.drain());
                out
            }
            Err(_) => Vec::new(),
        }
    }

    /// Like [`WorkerLink::recv_blocking`], but gives up after `timeout`.
    ///
    /// Returns `None` on timeout — the caller decides whether that means a
    /// lost peer or just a slow superstep — and `Some(vec![])` if every
    /// sender has disconnected.
    pub fn recv_blocking_timeout(&self, timeout: std::time::Duration) -> Option<Vec<Envelope<T>>> {
        use crossbeam::channel::RecvTimeoutError;
        match self.inbox.recv_timeout(timeout) {
            Ok(first) => {
                let mut out = vec![first];
                out.extend(self.drain());
                Some(out)
            }
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Vec::new()),
        }
    }
}

/// Builder of the all-to-all network.
#[derive(Debug)]
pub struct CommNetwork<T> {
    workers: Vec<WorkerLink<T>>,
    coordinator: WorkerLink<T>,
}

impl<T: MessageSize> CommNetwork<T> {
    /// Creates a network with `n` worker endpoints and one coordinator.
    pub fn new(n: usize) -> Self {
        Self::with_stats(n, Arc::new(CommStats::new()))
    }

    /// Creates a network that records into an existing [`CommStats`].
    pub fn with_stats(n: usize, stats: Arc<CommStats>) -> Self {
        let mut worker_senders = Vec::with_capacity(n);
        let mut worker_receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            worker_senders.push(tx);
            worker_receivers.push(rx);
        }
        let (coord_tx, coord_rx) = unbounded();

        let workers = worker_receivers
            .into_iter()
            .enumerate()
            .map(|(id, inbox)| WorkerLink {
                id,
                to_workers: worker_senders.clone(),
                to_coordinator: coord_tx.clone(),
                inbox,
                stats: Arc::clone(&stats),
            })
            .collect();
        let coordinator = WorkerLink {
            id: COORDINATOR,
            to_workers: worker_senders,
            to_coordinator: coord_tx,
            inbox: coord_rx,
            stats,
        };
        Self {
            workers,
            coordinator,
        }
    }

    /// Splits the network into the coordinator endpoint and the worker
    /// endpoints (to be moved into their threads).
    pub fn split(self) -> (WorkerLink<T>, Vec<WorkerLink<T>>) {
        (self.coordinator, self.workers)
    }

    /// Shared communication counters.
    pub fn stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.coordinator.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_can_message_each_other() {
        let net = CommNetwork::<(u64, f64)>::new(2);
        let stats = net.stats();
        let (coord, mut workers) = net.split();
        let w1 = workers.pop().unwrap();
        let w0 = workers.pop().unwrap();
        assert!(w0.send(1, (42, 1.5)));
        let got = w1.recv_blocking();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].from, 0);
        assert_eq!(got[0].payload, (42, 1.5));
        assert_eq!(stats.messages(), 1);
        assert_eq!(stats.bytes(), 16);
        drop(coord);
    }

    #[test]
    fn coordinator_round_trip() {
        let net = CommNetwork::<u64>::new(3);
        let (coord, workers) = net.split();
        for w in &workers {
            assert!(w.send(COORDINATOR, w.id() as u64));
        }
        let got = coord.drain();
        assert_eq!(got.len(), 3);
        // Coordinator replies to each worker.
        for env in &got {
            assert!(coord.send(env.from, env.payload + 100));
        }
        for w in &workers {
            let msgs = w.recv_blocking();
            assert_eq!(msgs.len(), 1);
            assert_eq!(msgs[0].payload, w.id() as u64 + 100);
            assert_eq!(msgs[0].from, COORDINATOR);
        }
    }

    #[test]
    fn self_sends_are_not_counted_as_traffic() {
        let net = CommNetwork::<u64>::new(2);
        let stats = net.stats();
        let (_coord, workers) = net.split();
        assert!(workers[0].send(0, 7));
        assert_eq!(workers[0].drain().len(), 1);
        assert_eq!(stats.messages(), 0, "local delivery is free");
        assert!(workers[0].send(1, 7));
        assert_eq!(stats.messages(), 1);
    }

    #[test]
    fn send_to_missing_worker_fails() {
        let net = CommNetwork::<u64>::new(1);
        let (_coord, workers) = net.split();
        assert!(!workers[0].send(5, 1));
    }

    #[test]
    fn drain_on_empty_inbox_is_empty() {
        let net = CommNetwork::<u64>::new(1);
        let (_coord, workers) = net.split();
        assert!(workers[0].drain().is_empty());
    }

    #[test]
    fn recv_blocking_timeout_distinguishes_slow_from_gone() {
        use std::time::{Duration, Instant};
        let net = CommNetwork::<u64>::new(1);
        let (coord, workers) = net.split();
        // Nothing sent yet: a short timeout elapses and reports None.
        let start = Instant::now();
        assert!(workers[0]
            .recv_blocking_timeout(Duration::from_millis(50))
            .is_none());
        assert!(start.elapsed() >= Duration::from_millis(50));
        // A delivered message is returned well before the deadline.
        assert!(coord.send(0, 9));
        assert_eq!(
            workers[0]
                .recv_blocking_timeout(Duration::from_secs(5))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn cross_thread_usage() {
        let net = CommNetwork::<(u64, u64)>::new(4);
        let stats = net.stats();
        let (coord, workers) = net.split();
        let handles: Vec<_> = workers
            .into_iter()
            .map(|w| {
                std::thread::spawn(move || {
                    // Each worker sends one message to every other worker and
                    // reports to the coordinator. The link is returned so the
                    // endpoint stays alive until every thread has finished
                    // sending (as it would in a real BSP job).
                    for peer in 0..w.num_workers() {
                        if peer != w.id() {
                            w.send(peer, (w.id() as u64, peer as u64));
                        }
                    }
                    w.send(COORDINATOR, (w.id() as u64, 0));
                    w
                })
            })
            .collect();
        let _links: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let at_coord = coord.drain();
        assert_eq!(at_coord.len(), 4);
        // 4 workers × 3 peers + 4 coordinator reports = 16 counted sends.
        assert_eq!(stats.messages(), 16);
    }
}
