//! # grape-comm
//!
//! The communication substrate of GRAPE-RS — the stand-in for the paper's
//! *MPI Controller* (MPICH2). Workers in this reproduction are threads in
//! one process, so "message passing" is implemented with crossbeam channels;
//! what matters for reproducing the paper's experiments is that every message
//! and every byte that *would* have crossed the network is **accounted**:
//! Table 1 reports communication volume in MB, and the partition-strategy
//! experiment reports message counts.
//!
//! The crate provides:
//!
//! * [`MessageSize`] — a trait estimating the serialized size of a message,
//!   implemented for the primitive and composite types the engines exchange.
//! * [`CommStats`] — lock-free counters of messages / bytes plus a
//!   per-superstep history.
//! * [`CommNetwork`] / [`WorkerLink`] — an all-to-all network of `n` worker
//!   endpoints plus one coordinator endpoint, with counted sends.
//! * [`wire`] — the framed wire protocol: a little-endian, length-prefixed
//!   codec ([`Wire`], [`wire::encode_frame`]) that turns every
//!   coordinator↔worker message into self-delimiting byte frames, so workers
//!   can run in other OS processes and the byte accounting can report
//!   *actual* rather than estimated wire bytes.

#![warn(missing_docs)]

pub mod network;
pub mod size;
pub mod stats;
pub mod wire;

pub use network::{CommNetwork, Envelope, WorkerLink, COORDINATOR};
pub use size::MessageSize;
pub use stats::{CommStats, SuperstepStats};
pub use wire::{Frame, Wire, WireError, WireReader};
