//! The framed wire protocol: a little-endian, length-prefixed codec for
//! everything that crosses the coordinator↔worker boundary.
//!
//! The in-process backends move typed values through channels and only
//! *estimate* their serialized size ([`crate::MessageSize`]). This module is
//! the real thing: every message can be encoded into a self-delimiting
//! **frame** and decoded back, so workers can live in other OS processes (or
//! hosts) and the byte accounting can report *actual* wire bytes instead of
//! estimates.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       2     magic  b"GW"
//! 2       1     protocol version (currently 2)
//! 3       1     message tag (assigned by the message layer)
//! 4       4     run epoch, u32 little-endian (0 outside recovery)
//! 8       4     payload length, u32 little-endian
//! 12      len   payload
//! ```
//!
//! The **epoch** field is what makes worker-loss recovery safe: the
//! coordinator bumps its run epoch every time it replaces a lost worker, and
//! frames written by a stale connection (an earlier epoch) are fenced —
//! dropped and counted instead of folded into the run. Senders that never
//! participate in recovery simply write epoch 0.
//!
//! The 12-byte header is [`HEADER_LEN`]. Payload encodings are defined by the
//! [`Wire`] trait and deliberately mirror the [`crate::MessageSize`]
//! estimates byte for byte: fixed-width little-endian integers and floats,
//! and `u32` length prefixes for vectors and strings. Decoding is zero-copy
//! where the type system allows it — [`decode_frame`] hands back a borrowed
//! payload slice, and [`WireReader`] reads primitives straight out of that
//! slice without intermediate buffers.
//!
//! Truncated input, bad magic/version, unknown tags and trailing garbage all
//! surface as typed [`WireError`]s; nothing panics on malformed bytes.

use crate::size::MessageSize;
use std::fmt;
use std::io::{self, Read, Write};

/// First two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"GW";

/// Protocol version byte shipped in every frame header. Version 2 added the
/// 4-byte run-epoch field used to fence stale frames during recovery.
pub const VERSION: u8 = 2;

/// Frame tag of the worker→coordinator session greeting. The hello frame is
/// the very first thing a connecting worker sends; its payload is the
/// worker's `Option<String>` auth token, which the coordinator validates
/// against its configured token before shipping the job. Defined here, next
/// to the protocol constants, because it is session establishment rather
/// than BSP traffic.
pub const TAG_HELLO: u8 = 0x05;

/// Frame tag of a client→service **graph load** request: the payload names a
/// graph id, the payload family and one fragment index, and the next frame on
/// the connection is the fragment itself. The service keeps the decoded
/// fragment resident, so later queries against the same graph id never re-ship
/// graph bytes.
pub const TAG_LOAD: u8 = 0x30;

/// Frame tag of the service→client **load acknowledgement**: the graph id the
/// fragment was stored under. Sent once per [`TAG_LOAD`] request.
pub const TAG_LOADED: u8 = 0x31;

/// Frame tag of a client→service **query submission** against a resident
/// graph. The frame's epoch field carries the query's *run id*, which fences
/// the whole BSP exchange of that query: every frame of the run is stamped
/// with it, and recovery bumps it exactly like the one-shot epoch path.
pub const TAG_QUERY: u8 = 0x32;

/// Frame tag of the service→client **query result**: the fragment's result
/// digest plus its snapshot-encoded partial result, from which the client
/// reassembles the full typed answer.
pub const TAG_RESULT: u8 = 0x33;

/// Frame tag of a client→service **graph update**: a resolved mutation batch
/// targeting one resident fragment, versioned so retries are idempotent. The
/// frame's epoch carries the target version (mod 2^32) as a fence.
pub const TAG_UPDATE: u8 = 0x34;

/// Frame tag of the service→client **update acknowledgement**: the graph id
/// and the fragment's version after applying (or idempotently skipping) the
/// batch. Sent once per [`TAG_UPDATE`] request.
pub const TAG_UPDATED: u8 = 0x35;

/// Size of the frame header: magic (2) + version (1) + tag (1) + epoch (4) +
/// length (4).
pub const HEADER_LEN: usize = 12;

/// Errors produced while decoding wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a complete value / frame was read.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The frame did not start with [`MAGIC`].
    BadMagic {
        /// The two bytes found instead.
        found: [u8; 2],
    },
    /// The frame carried an unsupported protocol version.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// The message layer did not recognize the frame's tag.
    BadTag {
        /// The tag byte found.
        found: u8,
    },
    /// A payload decoded cleanly but left unconsumed bytes behind.
    TrailingBytes {
        /// Number of leftover bytes.
        count: usize,
    },
    /// The frame carried a run epoch other than the one the receiver is
    /// fencing on — a stale frame from a connection that was replaced.
    StaleEpoch {
        /// The epoch the receiver expected.
        expected: u32,
        /// The epoch found in the frame header.
        found: u32,
    },
    /// The bytes violated a value-level invariant (bad bool, invalid UTF-8,
    /// …).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated wire data: needed {needed} bytes, have {have}")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?} (expected {MAGIC:02x?})")
            }
            WireError::BadVersion { found } => {
                write!(f, "unsupported wire version {found} (expected {VERSION})")
            }
            WireError::BadTag { found } => write!(f, "unknown message tag {found:#04x}"),
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete payload")
            }
            WireError::StaleEpoch { expected, found } => {
                write!(f, "stale frame epoch {found} (fencing on epoch {expected})")
            }
            WireError::Malformed(what) => write!(f, "malformed wire value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over borrowed wire bytes. All reads are little-endian and
/// bounds-checked; slices come straight out of the underlying buffer.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Borrows the next `n` bytes (zero-copy).
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `f32` (bit pattern preserved exactly).
    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `f64` (bit pattern preserved exactly).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Asserts every byte was consumed; [`WireError::TrailingBytes`]
    /// otherwise. Message decoders call this so trailing garbage is an error
    /// rather than silently ignored.
    pub fn finish(self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }
}

/// A value with a canonical little-endian wire encoding.
///
/// The encodings are chosen so that, for every type also implementing
/// [`MessageSize`], `encode` appends exactly `size_bytes()` bytes — the
/// estimated and the framed payload sizes agree (frame headers and
/// uncharged bookkeeping fields are accounted separately by the message
/// layer).
pub trait Wire: Sized {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes a value from `reader`, consuming exactly the encoded bytes.
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Convenience: the encoding as a fresh vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

macro_rules! wire_int {
    ($($t:ty => $read:ident / $wide:ty),* $(,)?) => {
        $(impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&(*self as $wide).to_le_bytes());
            }
            fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(reader.$read()? as $t)
            }
        })*
    };
}

wire_int!(
    u8 => u8 / u8,
    u16 => u16 / u16,
    u32 => u32 / u32,
    u64 => u64 / u64,
    i8 => u8 / u8,
    i16 => u16 / u16,
    i32 => u32 / u32,
    i64 => u64 / u64,
);

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        usize::try_from(reader.u64()?).map_err(|_| WireError::Malformed("usize overflow"))
    }
}

impl Wire for isize {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as i64).to_le_bytes());
    }
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        isize::try_from(reader.u64()? as i64).map_err(|_| WireError::Malformed("isize overflow"))
    }
}

impl Wire for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        reader.f32()
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        reader.f64()
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool byte must be 0 or 1")),
        }
    }
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = reader.u32()? as usize;
        let bytes = reader.bytes(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError::Malformed("string is not valid UTF-8"))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(reader)?)),
            _ => Err(WireError::Malformed("option byte must be 0 or 1")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for item in self {
            item.encode(out);
        }
    }
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = reader.u32()? as usize;
        // A corrupted length must not drive a huge allocation: every element
        // consumes at least one byte only for non-() types, so cap the
        // pre-allocation by what the buffer could possibly hold.
        let mut out = Vec::with_capacity(len.min(reader.remaining().max(16)));
        for _ in 0..len {
            out.push(T::decode(reader)?);
        }
        Ok(out)
    }
}

macro_rules! wire_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {
        $(impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
            fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(reader)?,)+))
            }
        })+
    };
}

wire_tuple!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// One fully encoded frame (header + payload), as moved through byte
/// channels by the framed in-process transport.
///
/// Its [`MessageSize`] is **exact** — the number of bytes in the frame — so
/// accounting on the framed path reports actual wire bytes, not estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame(pub Vec<u8>);

impl MessageSize for Frame {
    fn size_bytes(&self) -> usize {
        self.0.len()
    }
}

/// Appends a complete epoch-0 frame carrying `value` under `tag` to `out`.
pub fn encode_frame<T: Wire>(tag: u8, value: &T, out: &mut Vec<u8>) {
    encode_frame_with(tag, out, |out| value.encode(out));
}

/// Appends a complete frame carrying `value` under `tag`, stamped with
/// `epoch`, to `out`.
pub fn encode_frame_epoch<T: Wire>(tag: u8, epoch: u32, value: &T, out: &mut Vec<u8>) {
    encode_frame_with_epoch(tag, epoch, out, |out| value.encode(out));
}

/// Appends a complete epoch-0 frame under `tag` to `out`, with the payload
/// written by `payload` — for multi-field messages that encode without
/// building an intermediate value.
pub fn encode_frame_with(tag: u8, out: &mut Vec<u8>, payload: impl FnOnce(&mut Vec<u8>)) {
    encode_frame_with_epoch(tag, 0, out, payload);
}

/// Appends a complete frame under `tag`, stamped with `epoch`, to `out`,
/// with the payload written by `payload`.
pub fn encode_frame_with_epoch(
    tag: u8,
    epoch: u32,
    out: &mut Vec<u8>,
    payload: impl FnOnce(&mut Vec<u8>),
) {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(tag);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // length, patched below
    let payload_start = out.len();
    payload(out);
    let payload_len = (out.len() - payload_start) as u32;
    out[start + 8..start + 12].copy_from_slice(&payload_len.to_le_bytes());
}

/// Splits one frame off the front of `buf`, discarding its epoch.
///
/// Returns `(tag, payload, total_frame_len)`; the payload is a zero-copy
/// slice into `buf`. Fails with [`WireError::Truncated`] when fewer bytes
/// than a whole frame are available, and with
/// [`WireError::BadMagic`] / [`WireError::BadVersion`] on corrupt headers.
pub fn decode_frame(buf: &[u8]) -> Result<(u8, &[u8], usize), WireError> {
    let (tag, _epoch, payload, total) = decode_frame_epoch(buf)?;
    Ok((tag, payload, total))
}

/// Splits one frame off the front of `buf`, surfacing its epoch.
///
/// Returns `(tag, epoch, payload, total_frame_len)`. Epoch validation is the
/// caller's job (see [`check_epoch`]): the framing layer cannot know which
/// epoch a connection is fencing on.
pub fn decode_frame_epoch(buf: &[u8]) -> Result<(u8, u32, &[u8], usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            have: buf.len(),
        });
    }
    if buf[0..2] != MAGIC {
        return Err(WireError::BadMagic {
            found: [buf[0], buf[1]],
        });
    }
    if buf[2] != VERSION {
        return Err(WireError::BadVersion { found: buf[2] });
    }
    let tag = buf[3];
    let epoch = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let payload_len = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    let total = HEADER_LEN + payload_len;
    if buf.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            have: buf.len(),
        });
    }
    Ok((tag, epoch, &buf[HEADER_LEN..total], total))
}

/// Rejects a frame whose epoch is not the one being fenced on.
pub fn check_epoch(expected: u32, found: u32) -> Result<(), WireError> {
    if expected == found {
        Ok(())
    } else {
        Err(WireError::StaleEpoch { expected, found })
    }
}

/// Writes one epoch-0 frame carrying `value` under `tag` to `w`. Returns the
/// number of bytes written (header + payload), for byte accounting.
pub fn write_frame_io<T: Wire>(w: &mut impl Write, tag: u8, value: &T) -> io::Result<usize> {
    write_frame_io_epoch(w, tag, 0, value)
}

/// Writes one frame carrying `value` under `tag`, stamped with `epoch`, to
/// `w`. Returns the number of bytes written.
pub fn write_frame_io_epoch<T: Wire>(
    w: &mut impl Write,
    tag: u8,
    epoch: u32,
    value: &T,
) -> io::Result<usize> {
    let mut frame = Vec::new();
    encode_frame_epoch(tag, epoch, value, &mut frame);
    w.write_all(&frame)?;
    Ok(frame.len())
}

/// Reads one frame from `r` (blocking), discarding its epoch.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary — the peer closed
/// the connection between messages. A corrupt header or an EOF mid-frame is
/// an `io::Error` of kind `InvalidData` / `UnexpectedEof`.
pub fn read_frame_io(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    Ok(read_frame_io_epoch(r)?.map(|(tag, _epoch, payload)| (tag, payload)))
}

/// Reads one frame from `r` (blocking), surfacing its epoch so the caller
/// can fence stale frames.
pub fn read_frame_io_epoch(r: &mut impl Read) -> io::Result<Option<(u8, u32, Vec<u8>)>> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish "no more frames" from "died mid-frame": a clean EOF before
    // the first header byte is a graceful shutdown.
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-header",
            ));
        }
        filled += n;
    }
    if header[0..2] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::BadMagic {
                found: [header[0], header[1]],
            },
        ));
    }
    if header[2] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::BadVersion { found: header[2] },
        ));
    }
    let tag = header[3];
    let epoch = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let payload_len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
    // The declared length is peer-controlled: grow the buffer as bytes
    // actually arrive (take + read_to_end grows geometrically) instead of
    // allocating up to 4 GiB up front on a corrupt or hostile header.
    let mut payload = Vec::new();
    let read = r.take(payload_len as u64).read_to_end(&mut payload)?;
    if read < payload_len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-payload",
        ));
    }
    Ok(Some((tag, epoch, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.encode_to_vec();
        let mut reader = WireReader::new(&bytes);
        let back = T::decode(&mut reader).expect("decode");
        reader.finish().expect("fully consumed");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u16::MAX);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX - 1);
        roundtrip(usize::MAX);
        roundtrip(-5i32);
        roundtrip(1.5f32);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(true);
        roundtrip(());
        roundtrip(String::from("héllo wire"));
        roundtrip(Some((3u32, 2.5f64)));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![(1u32, 1.0f64), (2, f64::INFINITY)]);
        roundtrip((1u64, String::from("x"), 2u64, String::from("y")));
    }

    #[test]
    fn nan_bits_survive_the_roundtrip() {
        let weird = f64::from_bits(0x7ff8_0000_0000_1234);
        let bytes = weird.encode_to_vec();
        let mut reader = WireReader::new(&bytes);
        let back = f64::decode(&mut reader).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits(), "bit-exact, even for NaN");
    }

    #[test]
    fn encodings_match_message_size_estimates() {
        // The whole point of the codec: for every exchanged type the framed
        // payload length equals the MessageSize estimate.
        let samples: Vec<(Vec<u8>, usize)> = vec![
            (7u32.encode_to_vec(), 7u32.size_bytes()),
            (7u64.encode_to_vec(), 7u64.size_bytes()),
            (1.5f64.encode_to_vec(), 1.5f64.size_bytes()),
            (
                String::from("abc").encode_to_vec(),
                String::from("abc").size_bytes(),
            ),
            (
                vec![(1u32, 2.0f64); 3].encode_to_vec(),
                vec![(1u32, 2.0f64); 3].size_bytes(),
            ),
            (Some(9u64).encode_to_vec(), Some(9u64).size_bytes()),
        ];
        for (encoded, estimated) in samples {
            assert_eq!(encoded.len(), estimated);
        }
    }

    #[test]
    fn encoding_is_little_endian() {
        assert_eq!(0x0102_0304u32.encode_to_vec(), [0x04, 0x03, 0x02, 0x01]);
        assert_eq!(258u16.encode_to_vec(), [0x02, 0x01]);
    }

    #[test]
    fn frame_roundtrip_and_layout() {
        let payload = vec![(5u32, 2.5f64)];
        let mut frame = Vec::new();
        encode_frame(0x42, &payload, &mut frame);
        assert_eq!(frame.len(), HEADER_LEN + payload.size_bytes());
        assert_eq!(&frame[0..2], &MAGIC);
        assert_eq!(frame[2], VERSION);
        assert_eq!(frame[3], 0x42);
        assert_eq!(&frame[4..8], &[0u8; 4], "epoch 0 outside recovery");
        let (tag, body, consumed) = decode_frame(&frame).unwrap();
        assert_eq!(tag, 0x42);
        assert_eq!(consumed, frame.len());
        let mut reader = WireReader::new(body);
        assert_eq!(Vec::<(u32, f64)>::decode(&mut reader).unwrap(), payload);
        reader.finish().unwrap();
    }

    #[test]
    fn epochs_ride_the_header_and_fence_stale_frames() {
        let mut frame = Vec::new();
        encode_frame_epoch(0x07, 3, &9u64, &mut frame);
        assert_eq!(
            u32::from_le_bytes(frame[4..8].try_into().unwrap()),
            3,
            "little-endian epoch at bytes 4..8"
        );
        let (tag, epoch, body, consumed) = decode_frame_epoch(&frame).unwrap();
        assert_eq!((tag, epoch, consumed), (0x07, 3, frame.len()));
        let mut reader = WireReader::new(body);
        assert_eq!(u64::decode(&mut reader).unwrap(), 9);
        // The epoch-agnostic decoder sees the same frame.
        let (tag, _, consumed) = decode_frame(&frame).unwrap();
        assert_eq!((tag, consumed), (0x07, frame.len()));
        // The fence: matching epochs pass, anything else is typed.
        assert_eq!(check_epoch(3, 3), Ok(()));
        assert_eq!(
            check_epoch(3, 2),
            Err(WireError::StaleEpoch {
                expected: 3,
                found: 2
            })
        );
    }

    #[test]
    fn io_frames_carry_epochs() {
        let mut stream = Vec::new();
        write_frame_io_epoch(&mut stream, 1, 7, &5u32).unwrap();
        let mut cursor = io::Cursor::new(stream);
        let (tag, epoch, body) = read_frame_io_epoch(&mut cursor).unwrap().unwrap();
        assert_eq!((tag, epoch), (1, 7));
        let mut reader = WireReader::new(&body);
        assert_eq!(u32::decode(&mut reader).unwrap(), 5);
        assert!(read_frame_io_epoch(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let mut frame = Vec::new();
        encode_frame(1, &vec![1u64, 2, 3], &mut frame);
        for cut in 0..frame.len() {
            let err = decode_frame(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
        assert!(decode_frame(&frame).is_ok());
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        let mut frame = Vec::new();
        encode_frame(1, &7u64, &mut frame);
        let mut bad_magic = frame.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_frame(&bad_magic),
            Err(WireError::BadMagic { .. })
        ));
        let mut bad_version = frame.clone();
        bad_version[2] = 99;
        assert!(matches!(
            decode_frame(&bad_version),
            Err(WireError::BadVersion { found: 99 })
        ));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = 7u32.encode_to_vec();
        bytes.push(0xff);
        let mut reader = WireReader::new(&bytes);
        u32::decode(&mut reader).unwrap();
        assert_eq!(reader.finish(), Err(WireError::TrailingBytes { count: 1 }));
    }

    #[test]
    fn malformed_values_are_rejected() {
        let mut reader = WireReader::new(&[2u8]);
        assert!(matches!(
            bool::decode(&mut reader),
            Err(WireError::Malformed(_))
        ));
        // A string length promising more bytes than exist.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(b"short");
        let mut reader = WireReader::new(&bytes);
        assert!(matches!(
            String::decode(&mut reader),
            Err(WireError::Truncated { .. })
        ));
        // Invalid UTF-8.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut reader = WireReader::new(&bytes);
        assert!(matches!(
            String::decode(&mut reader),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn corrupt_vec_length_does_not_overallocate() {
        // Length claims u32::MAX elements; the decoder must fail fast with a
        // bounded allocation instead of reserving gigabytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        let mut reader = WireReader::new(&bytes);
        assert!(Vec::<u64>::decode(&mut reader).is_err());
    }

    #[test]
    fn io_frames_roundtrip_over_a_byte_stream() {
        let mut stream = Vec::new();
        let a = vec![(1u32, 1.5f64)];
        let b = String::from("second frame");
        let wrote_a = write_frame_io(&mut stream, 1, &a).unwrap();
        let wrote_b = write_frame_io(&mut stream, 2, &b).unwrap();
        assert_eq!(wrote_a, HEADER_LEN + a.size_bytes());
        assert_eq!(wrote_b, HEADER_LEN + b.size_bytes());

        let mut cursor = io::Cursor::new(stream);
        let (tag, body) = read_frame_io(&mut cursor).unwrap().unwrap();
        assert_eq!(tag, 1);
        let mut reader = WireReader::new(&body);
        assert_eq!(Vec::<(u32, f64)>::decode(&mut reader).unwrap(), a);
        let (tag, body) = read_frame_io(&mut cursor).unwrap().unwrap();
        assert_eq!(tag, 2);
        let mut reader = WireReader::new(&body);
        assert_eq!(String::decode(&mut reader).unwrap(), b);
        // Clean EOF at the frame boundary.
        assert!(read_frame_io(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn io_read_rejects_mid_frame_eof_and_bad_headers() {
        let mut stream = Vec::new();
        write_frame_io(&mut stream, 1, &7u64).unwrap();
        let cut = stream.len() - 3;
        let mut cursor = io::Cursor::new(&stream[..cut]);
        let err = read_frame_io(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let mut garbage = io::Cursor::new(b"NOTAFRAMEATALL".to_vec());
        let err = read_frame_io(&mut garbage).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn frame_newtype_accounts_exact_bytes() {
        let mut bytes = Vec::new();
        encode_frame(3, &vec![1u32, 2, 3], &mut bytes);
        let frame = Frame(bytes);
        assert_eq!(frame.size_bytes(), frame.0.len());
    }
}
