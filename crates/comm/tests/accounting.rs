//! Message-accounting invariants of the comm bus.
//!
//! Two layers are checked:
//!
//! 1. **Bus-level:** bytes and message counts recorded by [`CommStats`]
//!    match, exactly, the [`MessageSize`] estimates of the payloads pushed
//!    through [`CommNetwork`], with self-sends excluded and the superstep
//!    history summing back to the totals.
//! 2. **Engine-level:** for a small SSSP run through the real PIE engine,
//!    the totals the run reports (`RunStats::{messages, bytes}`) agree with
//!    the per-superstep history — i.e. what the bus counted is what `stats`
//!    reports.
//!
//! (`grape-core`/`grape-algo` are dev-dependencies: they depend on this
//! crate, and cargo permits dev-dependency cycles.)

use grape_comm::{CommNetwork, CommStats, MessageSize, COORDINATOR};
use std::sync::Arc;

#[test]
fn bus_counts_match_message_size_estimates() {
    let stats = Arc::new(CommStats::new());
    let net = CommNetwork::<Vec<(u64, f64)>>::with_stats(3, Arc::clone(&stats));
    let (coord, workers) = net.split();

    // Superstep 0: worker 0 → worker 1 (2 entries), worker 2 → coordinator
    // (1 entry), worker 1 → itself (uncounted self-send).
    let p01 = vec![(1u64, 0.5f64), (2, 1.5)];
    let p2c = vec![(9u64, 3.0f64)];
    let expected0 = (p01.size_bytes() + p2c.size_bytes()) as u64;
    assert!(workers[0].send(1, p01));
    assert!(workers[2].send(COORDINATOR, p2c));
    assert!(workers[1].send(1, vec![(7, 7.0)]));
    let s0 = stats.end_superstep(0);
    assert_eq!(s0.messages, 2, "self-sends are not network traffic");
    assert_eq!(s0.bytes, expected0);

    // Superstep 1: coordinator broadcasts one entry to every worker.
    let reply = vec![(0u64, 0.25f64)];
    let expected1 = 3 * reply.size_bytes() as u64;
    for w in 0..3 {
        assert!(coord.send(w, reply.clone()));
    }
    let s1 = stats.end_superstep(1);
    assert_eq!(s1.messages, 3);
    assert_eq!(s1.bytes, expected1);

    // Totals equal the sum of the history, and the payloads all arrived.
    assert_eq!(stats.messages(), 5);
    assert_eq!(stats.bytes(), expected0 + expected1);
    let history = stats.history();
    assert_eq!(
        history.iter().map(|s| s.messages).sum::<u64>(),
        stats.messages()
    );
    assert_eq!(history.iter().map(|s| s.bytes).sum::<u64>(), stats.bytes());
    assert_eq!(workers[1].drain().len(), 3);
    assert_eq!(coord.drain().len(), 1);
}

#[test]
fn bus_counts_match_slot_addressed_engine_messages() {
    use grape_core::message::{CoordCommand, WorkerReport};

    // Push the engine's actual slot-addressed wire types through the bus and
    // check the recorded bytes equal their MessageSize estimates: slot ids
    // cost 4 bytes where the PR 2 vertex-id format cost 8.
    let stats = Arc::new(CommStats::new());
    let net = CommNetwork::<CoordCommand<f64>>::with_stats(2, Arc::clone(&stats));
    let (coord, workers) = net.split();

    let init: CoordCommand<f64> = CoordCommand::Init {
        border_slots: vec![0, 1, 2],
    };
    let inceval: CoordCommand<f64> = CoordCommand::IncEval {
        superstep: 1,
        updates: vec![(0, 1.5), (2, 2.5)],
    };
    let finish: CoordCommand<f64> = CoordCommand::Finish;
    let expected = (init.size_bytes() + inceval.size_bytes() + finish.size_bytes()) as u64;
    assert_eq!(init.size_bytes(), 4 + 3 * 4, "length prefix + 3 u32 slots");
    assert_eq!(
        inceval.size_bytes(),
        8 + 4 + 2 * (4 + 8),
        "superstep + length prefix + (u32 slot, f64 value) pairs"
    );
    assert!(coord.send(0, init));
    assert!(coord.send(1, inceval));
    assert!(coord.send(0, finish));
    assert_eq!(stats.messages(), 3);
    assert_eq!(stats.bytes(), expected);
    assert_eq!(workers[0].drain().len(), 2);
    assert_eq!(workers[1].drain().len(), 1);

    let stats = Arc::new(CommStats::new());
    let net = CommNetwork::<WorkerReport<f64>>::with_stats(1, Arc::clone(&stats));
    let (coord, workers) = net.split();
    let report: WorkerReport<f64> = WorkerReport::Done {
        superstep: 2,
        changes: vec![(7, 0.5)],
        strays: vec![(99, 1.0)],
        checkpoint: None,
        eval_seconds: 0.1,
    };
    let expected = report.size_bytes() as u64;
    assert_eq!(
        expected,
        8 + 4 + 12 + 4 + 16 + 1,
        "superstep + slot changes + vertex-addressed strays + absent checkpoint"
    );
    assert!(workers[0].send(COORDINATOR, report));
    assert_eq!(stats.bytes(), expected);
    assert_eq!(coord.drain().len(), 1);
}

#[test]
fn framed_encoding_matches_the_estimates_for_slot_messages() {
    use grape_comm::wire::{Wire, HEADER_LEN};
    use grape_core::message::{CoordCommand, WorkerReport};

    // The satellite invariant: for `(u32 slot, f64 value)` traffic — the
    // bulk of every superstep — the MessageSize *estimate* equals the
    // *actual* encoded payload length, byte for byte.
    for len in [0usize, 1, 2, 17, 256] {
        let slots: Vec<(u32, f64)> = (0..len).map(|i| (i as u32, i as f64 * 0.5)).collect();
        assert_eq!(
            slots.encode_to_vec().len(),
            slots.size_bytes(),
            "estimate != encoded bytes for {len} slots"
        );
    }

    // Whole messages carry a fixed, documented overhead on top: the 8-byte
    // frame header, plus (for reports) the eval_seconds bookkeeping field
    // the estimate deliberately does not charge.
    let command: CoordCommand<f64> = CoordCommand::IncEval {
        superstep: 3,
        updates: vec![(0, 1.5), (7, 2.5), (9, f64::INFINITY)],
    };
    let mut frame = Vec::new();
    command.encode_frame(&mut frame);
    assert_eq!(frame.len(), command.size_bytes() + HEADER_LEN);
    assert_eq!(CoordCommand::<f64>::WIRE_OVERHEAD, HEADER_LEN);

    let report: WorkerReport<f64> = WorkerReport::Done {
        superstep: 3,
        changes: vec![(0, 1.5), (7, 2.5)],
        strays: vec![(42, 0.25)],
        checkpoint: None,
        eval_seconds: 0.125,
    };
    let mut frame = Vec::new();
    report.encode_frame(&mut frame);
    assert_eq!(frame.len(), report.size_bytes() + HEADER_LEN + 8);
    assert_eq!(WorkerReport::<f64>::WIRE_OVERHEAD, HEADER_LEN + 8);
}

#[test]
fn framed_engine_bytes_reconcile_exactly_with_the_estimated_path() {
    use grape_algo::{SsspProgram, SsspQuery};
    use grape_comm::wire::HEADER_LEN;
    use grape_core::{EngineConfig, ExecutionMode, GrapeEngine, TransportKind};
    use grape_graph::generators::{road_network, RoadNetworkConfig};
    use grape_partition::BuiltinStrategy;

    // Counted messages pair up exactly — every Init / IncEval command
    // triggers exactly one report, and Finish is sent after the books close —
    // so the framed path's *actual* bytes must equal the estimated path's
    // bytes plus one frame header per message plus the 8-byte eval_seconds
    // field per report (= half the messages). No slack on either side.
    let graph = road_network(
        RoadNetworkConfig {
            width: 14,
            height: 14,
            ..Default::default()
        },
        21,
    )
    .unwrap();
    let assignment = BuiltinStrategy::Hash.partition(&graph, 4);
    let run = |transport| {
        GrapeEngine::new(SsspProgram)
            .with_config(EngineConfig {
                execution: ExecutionMode::Inline,
                transport,
                ..Default::default()
            })
            .run_on_graph(&SsspQuery::new(0), &graph, &assignment)
            .unwrap()
            .stats
    };
    let estimated = run(TransportKind::InProcess);
    let framed = run(TransportKind::Framed);
    assert_eq!(estimated.messages, framed.messages);
    assert_eq!(estimated.supersteps, framed.supersteps);
    assert!(estimated.messages > 0 && estimated.messages % 2 == 0);
    let reports = estimated.messages / 2;
    assert_eq!(
        framed.bytes,
        estimated.bytes + estimated.messages * HEADER_LEN as u64 + reports * 8,
        "framed bytes must be estimates + header per message + eval field per report"
    );
}

#[test]
fn sssp_run_stats_agree_with_bus_history() {
    use grape_algo::{SsspProgram, SsspQuery};
    use grape_core::GrapeEngine;
    use grape_graph::generators::{road_network, RoadNetworkConfig};
    use grape_partition::BuiltinStrategy;

    let graph = road_network(
        RoadNetworkConfig {
            width: 12,
            height: 12,
            ..Default::default()
        },
        21,
    )
    .unwrap();
    let assignment = BuiltinStrategy::Hash.partition(&graph, 4);
    let result = GrapeEngine::new(SsspProgram)
        .run_on_graph(&SsspQuery::new(0), &graph, &assignment)
        .unwrap();

    let stats = &result.stats;
    assert!(stats.supersteps >= 1);
    assert_eq!(stats.history.len(), stats.supersteps);
    // The totals the run reports are exactly the sum of what the bus
    // recorded per superstep.
    let messages: u64 = stats.history.iter().map(|t| t.messages).sum();
    let bytes: u64 = stats.history.iter().map(|t| t.bytes).sum();
    assert_eq!(messages, stats.messages);
    assert_eq!(bytes, stats.bytes);
    // A 4-fragment run must actually communicate, and every message has a
    // nonzero wire-size estimate.
    assert!(stats.messages > 0);
    assert!(stats.bytes > 0);
    for trace in &stats.history {
        assert!(
            trace.bytes == 0 || trace.messages > 0,
            "bytes without messages in superstep {}",
            trace.superstep
        );
    }
}
