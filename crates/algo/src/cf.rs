//! Collaborative filtering (`CF`) — the machine-learning query class
//! registered in the demo library.
//!
//! The model is classic matrix factorization trained with stochastic gradient
//! descent (SGD): every user `u` and item `i` gets a latent factor vector and
//! a rating is predicted as their dot product.
//!
//! PIE formulation:
//!
//! * The bipartite rating graph is partitioned like any other graph; a
//!   fragment owns the users and items assigned to it and sees every rating
//!   edge incident to them (cross edges give it mirror copies of remote
//!   endpoints).
//! * **PEval** initializes factors deterministically and runs one local SGD
//!   epoch over the ratings whose *user* endpoint is inner (so each rating is
//!   trained by exactly one fragment).
//! * The **update parameters** are the factor vectors of border vertices; the
//!   aggregate is the element-wise average (different fragments see different
//!   ratings of a shared item and their estimates are blended, as in
//!   distributed parameter averaging).
//! * **IncEval** absorbs the averaged factors of its mirrors and runs another
//!   epoch, up to the query's epoch budget; after the last epoch it stops
//!   posting updates, so the engine reaches its fixpoint.
//!
//! CF is not monotonic — it is the example in the paper's library of a
//! program that relies on a bounded number of rounds rather than the
//! Assurance Theorem for termination.

use grape_core::{Fragment, PieContext, PieProgram, VertexId};
use std::collections::HashMap;

/// A collaborative-filtering query/training job description.
#[derive(Debug, Clone, PartialEq)]
pub struct CfQuery {
    /// Latent factor dimensionality.
    pub rank: usize,
    /// Number of SGD epochs (= IncEval rounds after the PEval epoch).
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization weight.
    pub regularization: f64,
}

impl Default for CfQuery {
    fn default() -> Self {
        Self {
            rank: 8,
            epochs: 10,
            learning_rate: 0.05,
            regularization: 0.05,
        }
    }
}

/// The learned model: a factor vector per vertex (users and items alike).
#[derive(Debug, Clone, Default)]
pub struct CfModel {
    /// Factor vectors keyed by vertex id.
    pub factors: HashMap<VertexId, Vec<f64>>,
}

impl CfModel {
    /// Predicted rating for a `(user, item)` pair; `None` if either vertex is
    /// unknown.
    pub fn predict(&self, user: VertexId, item: VertexId) -> Option<f64> {
        let u = self.factors.get(&user)?;
        let i = self.factors.get(&item)?;
        Some(u.iter().zip(i.iter()).map(|(a, b)| a * b).sum())
    }

    /// Root-mean-square error over a list of `(user, item, rating)` triples;
    /// pairs with unknown vertices are skipped.
    pub fn rmse(&self, ratings: &[(VertexId, VertexId, f64)]) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for &(u, i, r) in ratings {
            if let Some(p) = self.predict(u, i) {
                sum += (p - r) * (p - r);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            (sum / count as f64).sqrt()
        }
    }
}

/// Deterministic pseudo-random initial factor for a vertex (splitmix64-based
/// so every fragment initializes shared vertices identically).
fn initial_factor(vertex: VertexId, rank: usize) -> Vec<f64> {
    let mut state = vertex.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) * 0.2 + 0.4
    };
    (0..rank).map(|_| next()).collect()
}

/// One SGD epoch over the given ratings, updating the factors in place.
fn sgd_epoch(
    query: &CfQuery,
    factors: &mut HashMap<VertexId, Vec<f64>>,
    ratings: &[(VertexId, VertexId, f64)],
) {
    for &(u, i, r) in ratings {
        let pu = factors
            .entry(u)
            .or_insert_with(|| initial_factor(u, query.rank))
            .clone();
        let qi = factors
            .entry(i)
            .or_insert_with(|| initial_factor(i, query.rank))
            .clone();
        let pred: f64 = pu.iter().zip(qi.iter()).map(|(a, b)| a * b).sum();
        let err = r - pred;
        let lr = query.learning_rate;
        let reg = query.regularization;
        let new_pu: Vec<f64> = pu
            .iter()
            .zip(qi.iter())
            .map(|(p, q)| p + lr * (err * q - reg * p))
            .collect();
        let new_qi: Vec<f64> = qi
            .iter()
            .zip(pu.iter())
            .map(|(q, p)| q + lr * (err * p - reg * q))
            .collect();
        factors.insert(u, new_pu);
        factors.insert(i, new_qi);
    }
}

/// Sequential matrix-factorization training — the reference implementation.
pub fn sequential_cf(query: &CfQuery, ratings: &[(VertexId, VertexId, f64)]) -> CfModel {
    let mut factors = HashMap::new();
    for _ in 0..=query.epochs {
        sgd_epoch(query, &mut factors, ratings);
    }
    CfModel { factors }
}

/// Per-fragment partial state.
#[derive(Debug, Clone, Default)]
pub struct CfPartial {
    factors: HashMap<VertexId, Vec<f64>>,
    /// Ratings trained by this fragment: edges whose source (user) is inner.
    ratings: Vec<(VertexId, VertexId, f64)>,
    epochs_done: usize,
}

/// The collaborative-filtering PIE program.
///
/// `num_users` distinguishes user vertices (`id < num_users`) from item
/// vertices, matching the layout produced by
/// [`grape_graph::generators::bipartite_ratings`].
#[derive(Debug, Clone, Copy)]
pub struct CfProgram {
    /// Number of user vertices in the bipartite graph.
    pub num_users: usize,
}

impl CfProgram {
    /// Creates the program.
    pub fn new(num_users: usize) -> Self {
        Self { num_users }
    }

    fn publish_borders(
        fragment: &Fragment<(), f64>,
        partial: &CfPartial,
        ctx: &mut PieContext<Vec<f64>>,
    ) {
        for &b in fragment.border_vertices() {
            if let Some(f) = partial.factors.get(&b) {
                // Quantize slightly so tiny float jitter does not keep the
                // fixpoint from being reached once the epoch budget is spent.
                let rounded: Vec<f64> = f.iter().map(|x| (x * 1e9).round() / 1e9).collect();
                ctx.update(b, rounded);
            }
        }
    }
}

impl PieProgram for CfProgram {
    type Query = CfQuery;
    type VertexData = ();
    type EdgeData = f64;
    type Value = Vec<f64>;
    type Partial = CfPartial;
    type Output = CfModel;

    fn peval(
        &self,
        query: &CfQuery,
        fragment: &Fragment<(), f64>,
        ctx: &mut PieContext<Vec<f64>>,
    ) -> CfPartial {
        // Collect the ratings this fragment is responsible for: edges whose
        // user endpoint is inner (item -> user duplicates are skipped).
        let ratings: Vec<(VertexId, VertexId, f64)> = fragment
            .graph
            .edges()
            .filter(|(s, d, _)| {
                (*s as usize) < self.num_users
                    && (*d as usize) >= self.num_users
                    && fragment.is_inner(*s)
            })
            .map(|(s, d, w)| (s, d, *w))
            .collect();
        let mut partial = CfPartial {
            factors: HashMap::new(),
            ratings,
            epochs_done: 0,
        };
        sgd_epoch(query, &mut partial.factors, &partial.ratings.clone());
        Self::publish_borders(fragment, &partial, ctx);
        partial
    }

    fn inceval(
        &self,
        query: &CfQuery,
        fragment: &Fragment<(), f64>,
        partial: &mut CfPartial,
        messages: &[(VertexId, Vec<f64>)],
        ctx: &mut PieContext<Vec<f64>>,
    ) {
        // Blend the received (already averaged) factors of mirror vertices
        // into the local model.
        for (v, remote) in messages {
            match partial.factors.get_mut(v) {
                Some(local) => {
                    for (l, r) in local.iter_mut().zip(remote.iter()) {
                        *l = (*l + *r) / 2.0;
                    }
                }
                None => {
                    partial.factors.insert(*v, remote.clone());
                }
            }
        }
        if partial.epochs_done >= query.epochs {
            // Budget exhausted: absorb silently so the fixpoint is reached.
            return;
        }
        partial.epochs_done += 1;
        sgd_epoch(query, &mut partial.factors, &partial.ratings.clone());
        Self::publish_borders(fragment, partial, ctx);
    }

    fn assemble(&self, partials: Vec<CfPartial>) -> CfModel {
        // Average the factor estimates of vertices shared by several
        // fragments.
        let mut sums: HashMap<VertexId, (Vec<f64>, usize)> = HashMap::new();
        for partial in partials {
            for (v, f) in partial.factors {
                match sums.get_mut(&v) {
                    None => {
                        sums.insert(v, (f, 1));
                    }
                    Some((acc, count)) => {
                        for (a, x) in acc.iter_mut().zip(f.iter()) {
                            *a += x;
                        }
                        *count += 1;
                    }
                }
            }
        }
        CfModel {
            factors: sums
                .into_iter()
                .map(|(v, (sum, count))| (v, sum.into_iter().map(|x| x / count as f64).collect()))
                .collect(),
        }
    }

    fn aggregate(&self, a: &Vec<f64>, b: &Vec<f64>) -> Vec<f64> {
        a.iter().zip(b.iter()).map(|(x, y)| (x + y) / 2.0).collect()
    }

    fn name(&self) -> &str {
        "cf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::GrapeEngine;
    use grape_graph::generators::bipartite_ratings;
    use grape_partition::{HashPartitioner, Partitioner};

    fn as_triples(data: &grape_graph::generators::RatingData) -> Vec<(VertexId, VertexId, f64)> {
        data.train
            .iter()
            .map(|r| (r.user, r.item, r.score))
            .collect()
    }

    #[test]
    fn sequential_cf_reduces_training_error() {
        let data = bipartite_ratings(60, 30, 12, 4, 5).unwrap();
        let triples = as_triples(&data);
        let query = CfQuery {
            epochs: 25,
            ..Default::default()
        };
        // Error of an untrained model (single epoch) vs the trained one.
        let rough = sequential_cf(
            &CfQuery {
                epochs: 0,
                ..query.clone()
            },
            &triples,
        );
        let trained = sequential_cf(&query, &triples);
        let before = rough.rmse(&triples);
        let after = trained.rmse(&triples);
        assert!(
            after < before,
            "training must reduce RMSE: before {before}, after {after}"
        );
        assert!(after < 0.8, "trained RMSE should be small, got {after}");
    }

    #[test]
    fn model_predicts_in_rating_range_ballpark() {
        let data = bipartite_ratings(40, 20, 10, 4, 9).unwrap();
        let triples = as_triples(&data);
        let model = sequential_cf(&CfQuery::default(), &triples);
        for &(u, i, _) in triples.iter().take(20) {
            let p = model.predict(u, i).unwrap();
            assert!((0.0..=7.0).contains(&p), "prediction {p} is wildly off");
        }
        assert!(model.predict(9_999, 0).is_none());
    }

    #[test]
    fn pie_cf_trains_comparably_to_sequential() {
        let data = bipartite_ratings(80, 30, 15, 4, 13).unwrap();
        let triples = as_triples(&data);
        let query = CfQuery {
            epochs: 15,
            ..Default::default()
        };
        let sequential = sequential_cf(&query, &triples);
        let seq_rmse = sequential.rmse(&triples);

        let assignment = HashPartitioner.partition(&data.graph, 4);
        let program = CfProgram::new(data.num_users);
        let result = GrapeEngine::new(program)
            .run_on_graph(&query, &data.graph, &assignment)
            .unwrap();
        let dist_rmse = result.output.rmse(&triples);
        assert!(
            dist_rmse < seq_rmse * 1.5 + 0.2,
            "distributed training should be in the same ballpark: sequential {seq_rmse}, distributed {dist_rmse}"
        );
        // The engine terminates because each fragment's epoch budget bounds
        // the total number of rounds by (fragments × epochs) + 2.
        assert!(result.stats.supersteps <= 4 * query.epochs + 2);
    }

    #[test]
    fn held_out_rmse_is_sane() {
        let data = bipartite_ratings(100, 40, 20, 4, 21).unwrap();
        let triples = as_triples(&data);
        let test: Vec<(VertexId, VertexId, f64)> = data
            .test
            .iter()
            .map(|r| (r.user, r.item, r.score))
            .collect();
        let model = sequential_cf(
            &CfQuery {
                epochs: 20,
                ..Default::default()
            },
            &triples,
        );
        let rmse = model.rmse(&test);
        assert!(rmse < 1.5, "held-out RMSE too large: {rmse}");
    }

    #[test]
    fn deterministic_initialization() {
        assert_eq!(initial_factor(42, 4), initial_factor(42, 4));
        assert_ne!(initial_factor(42, 4), initial_factor(43, 4));
        let f = initial_factor(7, 8);
        assert_eq!(f.len(), 8);
        assert!(f.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn program_declarations() {
        let p = CfProgram::new(10);
        assert_eq!(p.num_users, 10);
        assert_eq!(p.name(), "cf");
        assert_eq!(
            p.aggregate(&vec![1.0, 3.0], &vec![3.0, 5.0]),
            vec![2.0, 4.0]
        );
        let q = CfQuery::default();
        assert!(q.rank > 0 && q.epochs > 0);
    }
}
