//! Collaborative filtering (`CF`) — the machine-learning query class
//! registered in the demo library.
//!
//! The model is classic matrix factorization trained with stochastic gradient
//! descent (SGD): every user `u` and item `i` gets a latent factor vector and
//! a rating is predicted as their dot product.
//!
//! PIE formulation:
//!
//! * The bipartite rating graph is partitioned like any other graph; a
//!   fragment owns the users and items assigned to it and sees every rating
//!   edge incident to them (cross edges give it mirror copies of remote
//!   endpoints).
//! * **PEval** initializes factors deterministically and runs one local SGD
//!   epoch over the ratings whose *user* endpoint is inner (so each rating is
//!   trained by exactly one fragment — cross edges are replicated into both
//!   fragments' local graphs, and the inner-user filter is what keeps the
//!   replica from being trained twice; a regression test pins this).
//! * The **update parameters** are the factor vectors of border vertices; the
//!   aggregate is the element-wise average (different fragments see different
//!   ratings of a shared item and their estimates are blended, as in
//!   distributed parameter averaging).
//! * **IncEval** absorbs the averaged factors of its mirrors and runs another
//!   epoch, up to the query's epoch budget; after the last epoch it stops
//!   posting updates, so the engine reaches its fixpoint.
//!
//! CF is not monotonic — it is the example in the paper's library of a
//! program that relies on a bounded number of rounds rather than the
//! Assurance Theorem for termination.
//!
//! The per-fragment state is a flat [`VertexDenseMap`] of factor vectors
//! keyed by the local graph's dense CSR indices (an empty vector marks an
//! untouched vertex; `rank > 0`), and the ratings are stored as dense
//! `(user, item, score)` index triples, so the per-epoch SGD loop performs
//! no hashing at all.

use grape_core::{Fragment, PieContext, PieProgram, VertexId};
use grape_graph::VertexDenseMap;
use std::collections::HashMap;

/// A collaborative-filtering query/training job description.
#[derive(Debug, Clone, PartialEq)]
pub struct CfQuery {
    /// Latent factor dimensionality.
    pub rank: usize,
    /// Number of SGD epochs (= IncEval rounds after the PEval epoch).
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization weight.
    pub regularization: f64,
}

impl Default for CfQuery {
    fn default() -> Self {
        Self {
            rank: 8,
            epochs: 10,
            learning_rate: 0.05,
            regularization: 0.05,
        }
    }
}

/// The learned model: a factor vector per vertex (users and items alike).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CfModel {
    /// Factor vectors keyed by vertex id.
    pub factors: HashMap<VertexId, Vec<f64>>,
}

impl CfModel {
    /// Predicted rating for a `(user, item)` pair; `None` if either vertex is
    /// unknown.
    pub fn predict(&self, user: VertexId, item: VertexId) -> Option<f64> {
        let u = self.factors.get(&user)?;
        let i = self.factors.get(&item)?;
        Some(u.iter().zip(i.iter()).map(|(a, b)| a * b).sum())
    }

    /// Root-mean-square error over a list of `(user, item, rating)` triples;
    /// pairs with unknown vertices are skipped.
    pub fn rmse(&self, ratings: &[(VertexId, VertexId, f64)]) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for &(u, i, r) in ratings {
            if let Some(p) = self.predict(u, i) {
                sum += (p - r) * (p - r);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            (sum / count as f64).sqrt()
        }
    }
}

/// Deterministic pseudo-random initial factor for a vertex (splitmix64-based
/// so every fragment initializes shared vertices identically).
fn initial_factor(vertex: VertexId, rank: usize) -> Vec<f64> {
    let mut state = vertex.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) * 0.2 + 0.4
    };
    (0..rank).map(|_| next()).collect()
}

/// One SGD epoch over the given ratings, updating the factors in place.
fn sgd_epoch(
    query: &CfQuery,
    factors: &mut HashMap<VertexId, Vec<f64>>,
    ratings: &[(VertexId, VertexId, f64)],
) {
    for &(u, i, r) in ratings {
        let pu = factors
            .entry(u)
            .or_insert_with(|| initial_factor(u, query.rank))
            .clone();
        let qi = factors
            .entry(i)
            .or_insert_with(|| initial_factor(i, query.rank))
            .clone();
        let (new_pu, new_qi) = sgd_step(query, &pu, &qi, r);
        factors.insert(u, new_pu);
        factors.insert(i, new_qi);
    }
}

/// One SGD update of a `(user, item, rating)` triple: returns the new user
/// and item factor vectors. Shared between the sequential reference and the
/// dense distributed path so their arithmetic stays bit-identical.
fn sgd_step(query: &CfQuery, pu: &[f64], qi: &[f64], r: f64) -> (Vec<f64>, Vec<f64>) {
    let pred: f64 = pu.iter().zip(qi.iter()).map(|(a, b)| a * b).sum();
    let err = r - pred;
    let lr = query.learning_rate;
    let reg = query.regularization;
    let new_pu: Vec<f64> = pu
        .iter()
        .zip(qi.iter())
        .map(|(p, q)| p + lr * (err * q - reg * p))
        .collect();
    let new_qi: Vec<f64> = qi
        .iter()
        .zip(pu.iter())
        .map(|(q, p)| q + lr * (err * p - reg * q))
        .collect();
    (new_pu, new_qi)
}

/// One SGD epoch over dense rating triples, updating the flat factor table in
/// place. `ids` translates dense indices to global ids for the deterministic
/// initialization; an empty vector marks an uninitialized slot.
fn sgd_epoch_dense(
    query: &CfQuery,
    factors: &mut VertexDenseMap<Vec<f64>>,
    ids: &[VertexId],
    ratings: &[(u32, u32, f64)],
) {
    for &(u, i, r) in ratings {
        if factors[u].is_empty() {
            factors.set(u, initial_factor(ids[u as usize], query.rank));
        }
        if factors[i].is_empty() {
            factors.set(i, initial_factor(ids[i as usize], query.rank));
        }
        let (new_pu, new_qi) = sgd_step(query, &factors[u], &factors[i], r);
        factors.set(u, new_pu);
        factors.set(i, new_qi);
    }
}

/// Sequential matrix-factorization training — the reference implementation.
pub fn sequential_cf(query: &CfQuery, ratings: &[(VertexId, VertexId, f64)]) -> CfModel {
    let mut factors = HashMap::new();
    for _ in 0..=query.epochs {
        sgd_epoch(query, &mut factors, ratings);
    }
    CfModel { factors }
}

/// Per-fragment partial state, flat over the local graph's dense indices.
#[derive(Debug, Clone, Default)]
pub struct CfPartial {
    /// Factor vector of each local vertex by dense index; an empty vector
    /// means the vertex has not been touched by training or messages yet.
    factors: VertexDenseMap<Vec<f64>>,
    /// Ratings trained by this fragment — edges whose source (user) is inner
    /// — as dense `(user, item, score)` triples.
    ratings: Vec<(u32, u32, f64)>,
    /// Global ids aligned with the dense indices (the local graph's id
    /// table), for deterministic initialization and Assemble.
    vertex_ids: Vec<VertexId>,
    epochs_done: usize,
}

/// The collaborative-filtering PIE program.
///
/// `num_users` distinguishes user vertices (`id < num_users`) from item
/// vertices, matching the layout produced by
/// [`grape_graph::generators::bipartite_ratings`].
#[derive(Debug, Clone, Copy)]
pub struct CfProgram {
    /// Number of user vertices in the bipartite graph.
    pub num_users: usize,
}

impl CfProgram {
    /// Creates the program.
    pub fn new(num_users: usize) -> Self {
        Self { num_users }
    }

    fn publish_borders(
        fragment: &Fragment<(), f64>,
        partial: &CfPartial,
        ctx: &mut PieContext<Vec<f64>>,
    ) {
        for (pos, &i) in fragment.border_dense_indices().iter().enumerate() {
            let f = &partial.factors[i];
            if f.is_empty() {
                continue;
            }
            // Quantize slightly so tiny float jitter does not keep the
            // fixpoint from being reached once the epoch budget is spent.
            let rounded: Vec<f64> = f.iter().map(|x| (x * 1e9).round() / 1e9).collect();
            ctx.update_at(pos as u32, rounded);
        }
    }
}

impl PieProgram for CfProgram {
    type Query = CfQuery;
    type VertexData = ();
    type EdgeData = f64;
    type Value = Vec<f64>;
    type Partial = CfPartial;
    type Output = CfModel;

    fn peval(
        &self,
        query: &CfQuery,
        fragment: &Fragment<(), f64>,
        ctx: &mut PieContext<Vec<f64>>,
    ) -> CfPartial {
        let g = &fragment.graph;
        // Collect the ratings this fragment is responsible for: edges whose
        // user endpoint is inner (item -> user duplicates are skipped, and a
        // cross edge's replica on the item-owning fragment fails the
        // inner-user test — each rating is trained by exactly one fragment).
        let mut ratings: Vec<(u32, u32, f64)> = Vec::new();
        for &iu in fragment.inner_dense_indices() {
            if g.vertex_of(iu) as usize >= self.num_users {
                continue;
            }
            for (id, &w) in g.out_edges_dense(iu) {
                if (g.vertex_of(id) as usize) >= self.num_users {
                    ratings.push((iu, id, w));
                }
            }
        }
        let mut partial = CfPartial {
            factors: VertexDenseMap::new(g.num_vertices(), Vec::new()),
            ratings,
            vertex_ids: g.vertex_ids().to_vec(),
            epochs_done: 0,
        };
        sgd_epoch_dense(
            query,
            &mut partial.factors,
            &partial.vertex_ids,
            &partial.ratings,
        );
        Self::publish_borders(fragment, &partial, ctx);
        partial
    }

    fn inceval(
        &self,
        query: &CfQuery,
        fragment: &Fragment<(), f64>,
        partial: &mut CfPartial,
        messages: &[(VertexId, Vec<f64>)],
        ctx: &mut PieContext<Vec<f64>>,
    ) {
        // Blend the received (already averaged) factors of mirror vertices
        // into the local model; translate once at the boundary through the
        // precomputed border tables (no hashing).
        for (v, remote) in messages {
            let Some(pos) = fragment.border_position(*v) else {
                continue;
            };
            let i = fragment.border_dense_indices()[pos as usize];
            let local = &mut partial.factors[i];
            if local.is_empty() {
                *local = remote.clone();
            } else {
                for (l, r) in local.iter_mut().zip(remote.iter()) {
                    *l = (*l + *r) / 2.0;
                }
            }
        }
        if partial.epochs_done >= query.epochs {
            // Budget exhausted: absorb silently so the fixpoint is reached.
            return;
        }
        partial.epochs_done += 1;
        sgd_epoch_dense(
            query,
            &mut partial.factors,
            &partial.vertex_ids,
            &partial.ratings,
        );
        Self::publish_borders(fragment, partial, ctx);
    }

    fn assemble(&self, partials: Vec<CfPartial>) -> CfModel {
        // Average the factor estimates of vertices shared by several
        // fragments. Each vertex's accumulation runs in fragment order, so
        // the float sums are deterministic.
        let mut sums: HashMap<VertexId, (Vec<f64>, usize)> = HashMap::new();
        for partial in partials {
            for (idx, &v) in partial.vertex_ids.iter().enumerate() {
                let f = &partial.factors[idx as u32];
                if f.is_empty() {
                    continue;
                }
                match sums.get_mut(&v) {
                    None => {
                        sums.insert(v, (f.clone(), 1));
                    }
                    Some((acc, count)) => {
                        for (a, x) in acc.iter_mut().zip(f.iter()) {
                            *a += x;
                        }
                        *count += 1;
                    }
                }
            }
        }
        CfModel {
            factors: sums
                .into_iter()
                .map(|(v, (sum, count))| (v, sum.into_iter().map(|x| x / count as f64).collect()))
                .collect(),
        }
    }

    fn aggregate(&self, a: &Vec<f64>, b: &Vec<f64>) -> Vec<f64> {
        a.iter().zip(b.iter()).map(|(x, y)| (x + y) / 2.0).collect()
    }

    fn snapshot_partial(&self, partial: &CfPartial) -> Option<Vec<u8>> {
        use grape_core::Wire;
        let mut out = Vec::new();
        // Same layout as Vec<Vec<f64>>: u32 length prefix, then elements.
        out.extend_from_slice(&(partial.factors.len() as u32).to_le_bytes());
        for factor in partial.factors.as_slice() {
            factor.encode(&mut out);
        }
        partial.ratings.encode(&mut out);
        partial.vertex_ids.encode(&mut out);
        partial.epochs_done.encode(&mut out);
        Some(out)
    }

    fn restore_partial(&self, bytes: &[u8]) -> Option<CfPartial> {
        use grape_core::{Wire, WireReader};
        let mut reader = WireReader::new(bytes);
        let factors = Vec::<Vec<f64>>::decode(&mut reader).ok()?;
        let ratings = Vec::<(u32, u32, f64)>::decode(&mut reader).ok()?;
        let vertex_ids = Vec::<VertexId>::decode(&mut reader).ok()?;
        let epochs_done = usize::decode(&mut reader).ok()?;
        reader.finish().ok()?;
        Some(CfPartial {
            factors: VertexDenseMap::from_vec(factors),
            ratings,
            vertex_ids,
            epochs_done,
        })
    }

    fn name(&self) -> &str {
        "cf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::GrapeEngine;
    use grape_graph::generators::bipartite_ratings;
    use grape_partition::{build_fragments, BuiltinStrategy, HashPartitioner, Partitioner};

    fn as_triples(data: &grape_graph::generators::RatingData) -> Vec<(VertexId, VertexId, f64)> {
        data.train
            .iter()
            .map(|r| (r.user, r.item, r.score))
            .collect()
    }

    #[test]
    fn sequential_cf_reduces_training_error() {
        let data = bipartite_ratings(60, 30, 12, 4, 5).unwrap();
        let triples = as_triples(&data);
        let query = CfQuery {
            epochs: 25,
            ..Default::default()
        };
        // Error of an untrained model (single epoch) vs the trained one.
        let rough = sequential_cf(
            &CfQuery {
                epochs: 0,
                ..query.clone()
            },
            &triples,
        );
        let trained = sequential_cf(&query, &triples);
        let before = rough.rmse(&triples);
        let after = trained.rmse(&triples);
        assert!(
            after < before,
            "training must reduce RMSE: before {before}, after {after}"
        );
        assert!(after < 0.8, "trained RMSE should be small, got {after}");
    }

    #[test]
    fn model_predicts_in_rating_range_ballpark() {
        let data = bipartite_ratings(40, 20, 10, 4, 9).unwrap();
        let triples = as_triples(&data);
        let model = sequential_cf(&CfQuery::default(), &triples);
        for &(u, i, _) in triples.iter().take(20) {
            let p = model.predict(u, i).unwrap();
            assert!((0.0..=7.0).contains(&p), "prediction {p} is wildly off");
        }
        assert!(model.predict(9_999, 0).is_none());
    }

    #[test]
    fn pie_cf_trains_comparably_to_sequential() {
        let data = bipartite_ratings(80, 30, 15, 4, 13).unwrap();
        let triples = as_triples(&data);
        let query = CfQuery {
            epochs: 15,
            ..Default::default()
        };
        let sequential = sequential_cf(&query, &triples);
        let seq_rmse = sequential.rmse(&triples);

        let assignment = HashPartitioner.partition(&data.graph, 4);
        let program = CfProgram::new(data.num_users);
        let result = GrapeEngine::new(program)
            .run_on_graph(&query, &data.graph, &assignment)
            .unwrap();
        let dist_rmse = result.output.rmse(&triples);
        assert!(
            dist_rmse < seq_rmse * 1.5 + 0.2,
            "distributed training should be in the same ballpark: sequential {seq_rmse}, distributed {dist_rmse}"
        );
        // The engine terminates because each fragment's epoch budget bounds
        // the total number of rounds by (fragments × epochs) + 2.
        assert!(result.stats.supersteps <= 4 * query.epochs + 2);
    }

    #[test]
    fn each_rating_is_trained_by_exactly_one_fragment() {
        // Cross-fragment audit regression: every rating edge of the bipartite
        // graph is replicated into both endpoint fragments' local graphs (and
        // the generator also records the reverse item→user edge), so a
        // careless PEval would train cut ratings twice — double-counting
        // their gradient. Pin the invariant: the union of the fragments'
        // training sets equals the global user→item edge multiset exactly.
        let data = bipartite_ratings(60, 25, 10, 4, 41).unwrap();
        let mut expected: Vec<(VertexId, VertexId)> = data
            .graph
            .edges()
            .filter(|(s, d, _)| (*s as usize) < data.num_users && (*d as usize) >= data.num_users)
            .map(|(s, d, _)| (s, d))
            .collect();
        expected.sort_unstable();
        for strategy in [BuiltinStrategy::Hash, BuiltinStrategy::Range] {
            for k in [2usize, 5] {
                let assignment = strategy.partition(&data.graph, k);
                let fragments = build_fragments(&data.graph, &assignment);
                let program = CfProgram::new(data.num_users);
                let mut trained: Vec<(VertexId, VertexId)> = Vec::new();
                let mut cut_ratings = 0usize;
                for fragment in &fragments {
                    let mut ctx = PieContext::new();
                    let slots: Vec<u32> = (0..fragment.border_vertices().len() as u32).collect();
                    ctx.configure_borders(fragment.border_vertices(), &slots);
                    let partial = program.peval(&CfQuery::default(), fragment, &mut ctx);
                    for &(u, i, _) in &partial.ratings {
                        let user = fragment.graph.vertex_of(u);
                        let item = fragment.graph.vertex_of(i);
                        if fragment.is_outer(item) {
                            cut_ratings += 1;
                        }
                        trained.push((user, item));
                    }
                }
                trained.sort_unstable();
                assert_eq!(
                    trained, expected,
                    "{strategy:?}/{k} fragments: each rating must be trained \
                     exactly once, no duplicates across cut edges"
                );
                if k > 1 {
                    assert!(
                        cut_ratings > 0,
                        "{strategy:?}/{k}: the test must actually cover cut \
                         rating edges"
                    );
                }
            }
        }
    }

    #[test]
    fn held_out_rmse_is_sane() {
        let data = bipartite_ratings(100, 40, 20, 4, 21).unwrap();
        let triples = as_triples(&data);
        let test: Vec<(VertexId, VertexId, f64)> = data
            .test
            .iter()
            .map(|r| (r.user, r.item, r.score))
            .collect();
        let model = sequential_cf(
            &CfQuery {
                epochs: 20,
                ..Default::default()
            },
            &triples,
        );
        let rmse = model.rmse(&test);
        assert!(rmse < 1.5, "held-out RMSE too large: {rmse}");
    }

    #[test]
    fn deterministic_initialization() {
        assert_eq!(initial_factor(42, 4), initial_factor(42, 4));
        assert_ne!(initial_factor(42, 4), initial_factor(43, 4));
        let f = initial_factor(7, 8);
        assert_eq!(f.len(), 8);
        assert!(f.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn program_declarations() {
        let p = CfProgram::new(10);
        assert_eq!(p.num_users, 10);
        assert_eq!(p.name(), "cf");
        assert_eq!(
            p.aggregate(&vec![1.0, 3.0], &vec![3.0, 5.0]),
            vec![2.0, 4.0]
        );
        let q = CfQuery::default();
        assert!(q.rank > 0 && q.epochs > 0);
    }
}
