//! # grape-algo
//!
//! The PIE-program library of GRAPE-RS: the query classes registered in the
//! demo (Section 3(3)) plus the GPAR-based social-media-marketing use case
//! (Fig. 4), each implemented as
//!
//! * a **sequential reference algorithm** (what a textbook user would plug
//!   in),
//! * where applicable a **bounded incremental algorithm** (what IncEval plugs
//!   in), and
//! * the **PIE program** gluing them into [`grape_core::GrapeEngine`].
//!
//! | Module | Query class | PEval | IncEval | Aggregate |
//! |--------|-------------|-------|---------|-----------|
//! | [`sssp`] | single-source shortest paths | Dijkstra | Ramalingam–Reps-style incremental relaxation | `min` |
//! | [`cc`] | connected components | union-find / label propagation | incremental min-label propagation | `min` |
//! | [`pagerank`] | PageRank (extra class used in the analytics panel) | local power iteration | incremental re-iteration from changed border ranks | `sum`-preferring |
//! | [`sim`] | graph pattern matching by simulation | Henzinger–Henzinger–Kopke fixpoint | incremental candidate removal | set intersection (false wins) |
//! | [`subiso`] | subgraph isomorphism | VF2-style backtracking over the local fragment | re-enumeration after receiving replicated border neighbourhoods | neighbourhood union |
//! | [`keyword`] | distance-bounded keyword search | multi-source Dijkstra per keyword | incremental distance relaxation | element-wise `min` |
//! | [`cf`] | collaborative filtering (matrix factorization) | local SGD epoch | SGD epoch folding in remote factor updates | element-wise average |
//! | [`marketing`] | GPAR-based social media marketing | per-person aggregate over followees | refresh after mirror statuses arrive | `or` |

#![warn(missing_docs)]

pub mod cc;
pub mod cf;
pub mod keyword;
pub mod marketing;
pub mod pagerank;
pub mod query;
pub mod sim;
pub mod sssp;
pub mod subiso;

pub use cc::{CcProgram, CcQuery};
pub use cf::{CfModel, CfProgram, CfQuery};
pub use keyword::{KeywordAnswer, KeywordProgram, KeywordQuery};
pub use marketing::{Gpar, MarketingProgram, MarketingQuery, Prospect};
pub use pagerank::{PageRankProgram, PageRankQuery};
pub use query::{
    digest_cf, digest_embeddings, digest_f64_map, digest_keyword, digest_prospects, digest_sim,
    digest_u64_map, Query, QueryClass, QueryResult,
};
pub use sim::{SimMatches, SimProgram, SimQuery, SimQueryError};
pub use sssp::{SsspProgram, SsspQuery};
pub use subiso::{Embeddings, SubIsoProgram, SubIsoQuery};
