//! Single-source shortest paths (SSSP) — Example 1 of the paper.
//!
//! * **PEval** is textbook Dijkstra run on the local fragment.
//! * **IncEval** is the bounded incremental shortest-path algorithm of
//!   Ramalingam & Reps: when border distances drop, only the affected
//!   vertices are re-relaxed, so its cost depends on the size of the change
//!   (`|M| + |ΔO|`), not on the fragment size.
//! * **Assemble** takes, for every vertex, the smallest distance any fragment
//!   knows.
//! * The update parameters are the distances of border vertices, aggregated
//!   with `min`; they decrease monotonically, so the Assurance Theorem
//!   applies and the fixpoint is reached with correct answers.
//!
//! The PIE program keeps its per-fragment state in a [`VertexDenseMap`]
//! keyed by the fragment's dense CSR indices and relaxes edges over the flat
//! CSR neighbour/weight slices, so the hot loops never touch a `HashMap`.
//! The global-id `HashMap` variants ([`sequential_sssp`],
//! [`incremental_sssp`]) remain as the sequential references the tests and
//! benches compare against.

use grape_core::par::{map_chunks, ThreadPool};
use grape_core::{Fragment, PieContext, PieProgram, VertexId};
use grape_graph::{CsrGraph, DenseBitset, VertexDenseMap};
use std::collections::{BinaryHeap, HashMap};

/// Distance value used throughout: `f64` seconds/metres/weights.
pub type Distance = f64;

/// An SSSP query: the source vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsspQuery {
    /// The source vertex (global id).
    pub source: VertexId,
}

impl SsspQuery {
    /// Creates a query.
    pub fn new(source: VertexId) -> Self {
        Self { source }
    }
}

/// Min-heap entry for Dijkstra over global ids.
#[derive(PartialEq)]
struct HeapEntry(Distance, VertexId);

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse so BinaryHeap pops the smallest distance first.
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.1.cmp(&self.1))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap entry for Dijkstra over dense indices (the hot path).
#[derive(PartialEq)]
struct DenseHeapEntry(Distance, u32);

impl Eq for DenseHeapEntry {}

impl Ord for DenseHeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.1.cmp(&self.1))
    }
}

impl PartialOrd for DenseHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Sequential Dijkstra from `source` over the whole graph: the reference
/// answer used by tests and by the single-machine baseline of the benches.
pub fn sequential_sssp(
    graph: &CsrGraph<(), Distance>,
    source: VertexId,
) -> HashMap<VertexId, Distance> {
    let mut dist: HashMap<VertexId, Distance> = HashMap::new();
    if !graph.contains(source) {
        return dist;
    }
    let mut heap = BinaryHeap::new();
    dist.insert(source, 0.0);
    heap.push(HeapEntry(0.0, source));
    while let Some(HeapEntry(d, u)) = heap.pop() {
        if d > dist.get(&u).copied().unwrap_or(Distance::INFINITY) {
            continue;
        }
        for (v, w) in graph.out_edges(u) {
            let nd = d + *w;
            if nd < dist.get(&v).copied().unwrap_or(Distance::INFINITY) {
                dist.insert(v, nd);
                heap.push(HeapEntry(nd, v));
            }
        }
    }
    dist
}

/// Bounded incremental SSSP in the style of Ramalingam & Reps: given current
/// distances and a set of vertices whose distance just dropped, propagate the
/// improvements. Only vertices whose distance actually changes are touched.
///
/// Returns the number of vertices whose distance changed (`|ΔO|`), which the
/// boundedness experiment measures.
pub fn incremental_sssp(
    graph: &CsrGraph<(), Distance>,
    dist: &mut HashMap<VertexId, Distance>,
    seeds: &[(VertexId, Distance)],
) -> usize {
    let mut heap = BinaryHeap::new();
    let mut changed = 0usize;
    for &(v, d) in seeds {
        if d < dist.get(&v).copied().unwrap_or(Distance::INFINITY) {
            dist.insert(v, d);
            changed += 1;
            heap.push(HeapEntry(d, v));
        }
    }
    while let Some(HeapEntry(d, u)) = heap.pop() {
        if d > dist.get(&u).copied().unwrap_or(Distance::INFINITY) {
            continue;
        }
        for (v, w) in graph.out_edges(u) {
            let nd = d + *w;
            if nd < dist.get(&v).copied().unwrap_or(Distance::INFINITY) {
                dist.insert(v, nd);
                changed += 1;
                heap.push(HeapEntry(nd, v));
            }
        }
    }
    changed
}

/// Dense Dijkstra from the dense index `source` (if any), writing distances
/// into a flat per-vertex array. The fast path used by PEval.
pub fn dense_sssp(graph: &CsrGraph<(), Distance>, source: Option<u32>) -> VertexDenseMap<Distance> {
    let mut dist = VertexDenseMap::for_graph(graph, Distance::INFINITY);
    if let Some(src) = source {
        dense_relax(graph, &mut dist, &[(src, 0.0)]);
    }
    dist
}

/// Dense bounded incremental SSSP: seeds whose distance improves are pushed
/// and relaxed over the flat CSR neighbour/weight slices. Returns `|ΔO|`,
/// the number of vertices whose distance changed.
pub fn dense_relax(
    graph: &CsrGraph<(), Distance>,
    dist: &mut VertexDenseMap<Distance>,
    seeds: &[(u32, Distance)],
) -> usize {
    let mut heap = BinaryHeap::new();
    let mut changed = 0usize;
    for &(u, d) in seeds {
        if d < dist[u] {
            dist[u] = d;
            changed += 1;
            heap.push(DenseHeapEntry(d, u));
        }
    }
    while let Some(DenseHeapEntry(d, u)) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for (&v, &w) in graph
            .out_neighbors_dense(u)
            .iter()
            .zip(graph.out_edge_data_dense(u))
        {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                changed += 1;
                heap.push(DenseHeapEntry(nd, v));
            }
        }
    }
    changed
}

/// [`dense_relax`] with an intra-fragment thread pool: a single-threaded
/// pool takes the sequential Dijkstra path unchanged; a larger pool runs
/// chunked Bellman-Ford frontier rounds (`edge_map` over the frontier's
/// index list, candidates applied in fixed chunk order). Both converge to
/// the least fixpoint of `dist[v] = min(dist[u] + w(u, v))` over exactly the
/// same f64 additions, and equal nonnegative f64s share one bit pattern, so
/// the resulting distances are **bit-identical** for every thread count.
///
/// The returned change count says whether any distance improved (`> 0`) but
/// its exact value is schedule-dependent between the two algorithms; the
/// engine's observable protocol only branches on `changed == 0`.
pub fn dense_relax_par(
    pool: &ThreadPool,
    graph: &CsrGraph<(), Distance>,
    dist: &mut VertexDenseMap<Distance>,
    seeds: &[(u32, Distance)],
) -> usize {
    if pool.threads() <= 1 {
        return dense_relax(graph, dist, seeds);
    }
    let n = graph.num_vertices();
    let mut changed = 0usize;
    let mut in_frontier = DenseBitset::new(n);
    let mut frontier: Vec<u32> = Vec::new();
    for &(u, d) in seeds {
        if d < dist[u] {
            dist[u] = d;
            changed += 1;
            if !in_frontier.contains(u) {
                in_frontier.set(u);
                frontier.push(u);
            }
        }
    }
    frontier.sort_unstable();
    let mut next: Vec<u32> = Vec::new();
    while !frontier.is_empty() {
        // Map phase: every chunk scans its slice of the frontier against a
        // frozen distance snapshot and emits candidate improvements.
        let snapshot: &VertexDenseMap<Distance> = dist;
        let frontier_ref: &[u32] = &frontier;
        let candidates = map_chunks(
            pool,
            frontier.len(),
            |range, out: &mut Vec<(u32, Distance)>| {
                for &u in &frontier_ref[range] {
                    let d = snapshot[u];
                    for (&v, &w) in graph
                        .out_neighbors_dense(u)
                        .iter()
                        .zip(graph.out_edge_data_dense(u))
                    {
                        let nd = d + w;
                        if nd < snapshot[v] {
                            out.push((v, nd));
                        }
                    }
                }
            },
        );
        // Apply phase, sequential in chunk order: deterministic regardless
        // of which thread produced which chunk.
        for &u in &frontier {
            in_frontier.clear(u);
        }
        next.clear();
        for chunk in &candidates {
            for &(v, nd) in chunk {
                if nd < dist[v] {
                    dist[v] = nd;
                    changed += 1;
                    if !in_frontier.contains(v) {
                        in_frontier.set(v);
                        next.push(v);
                    }
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    changed
}

/// Per-fragment partial result: the current distance estimates for every
/// local vertex (inner and mirror), keyed by the fragment's dense indices.
#[derive(Debug, Clone, Default)]
pub struct SsspPartial {
    /// Distance estimates keyed by the local graph's dense index
    /// (`INFINITY` = unreached).
    pub dist: VertexDenseMap<Distance>,
    /// Global ids aligned with `dist` (the local graph's vertex-id table),
    /// kept so Assemble can translate without the fragments at hand.
    vertex_ids: Vec<VertexId>,
    /// Total number of distance changes applied by IncEval calls; used by the
    /// boundedness experiment (F-inc).
    pub inceval_changes: usize,
}

/// The SSSP PIE program.
#[derive(Debug, Clone, Copy, Default)]
pub struct SsspProgram;

impl PieProgram for SsspProgram {
    type Query = SsspQuery;
    type VertexData = ();
    type EdgeData = Distance;
    type Value = Distance;
    type Partial = SsspPartial;
    type Output = HashMap<VertexId, Distance>;

    fn peval(
        &self,
        query: &SsspQuery,
        fragment: &Fragment<(), Distance>,
        ctx: &mut PieContext<Distance>,
    ) -> SsspPartial {
        let g = &fragment.graph;
        // Dense SSSP on the local fragment (distances stay infinite when the
        // source lives elsewhere): sequential Dijkstra on a 1-thread pool,
        // chunked frontier rounds otherwise — bit-identical either way.
        let pool = std::sync::Arc::clone(ctx.pool());
        let mut dist = VertexDenseMap::for_graph(g, Distance::INFINITY);
        if let Some(src) = g.dense_index(query.source) {
            dense_relax_par(&pool, g, &mut dist, &[(src, 0.0)]);
        }
        // Declare update parameters: the current distance of every border
        // vertex that is already reachable locally. `update_at` addresses
        // the context by border position — an indexed compare per vertex,
        // no lookup.
        for (pos, &i) in fragment.border_dense_indices().iter().enumerate() {
            let d = dist[i];
            if d.is_finite() {
                ctx.update_at(pos as u32, d);
            }
        }
        SsspPartial {
            dist,
            vertex_ids: g.vertex_ids().to_vec(),
            inceval_changes: 0,
        }
    }

    fn inceval(
        &self,
        _query: &SsspQuery,
        fragment: &Fragment<(), Distance>,
        partial: &mut SsspPartial,
        messages: &[(VertexId, Distance)],
        ctx: &mut PieContext<Distance>,
    ) {
        let g = &fragment.graph;
        // Treat improved border distances as seeds for the incremental
        // algorithm. Routed messages only ever name this fragment's border
        // vertices, so the dense translation goes through the precomputed
        // border tables (binary search over the sorted border list — no
        // hashing) instead of the graph's id map.
        let seeds: Vec<(u32, Distance)> = messages
            .iter()
            .filter_map(|&(v, d)| {
                fragment
                    .border_position(v)
                    .map(|pos| (fragment.border_dense_indices()[pos as usize], d))
            })
            .collect();
        let pool = std::sync::Arc::clone(ctx.pool());
        let changed = dense_relax_par(&pool, g, &mut partial.dist, &seeds);
        partial.inceval_changes += changed;
        if changed == 0 {
            return;
        }
        for (pos, &i) in fragment.border_dense_indices().iter().enumerate() {
            let d = partial.dist[i];
            if d.is_finite() {
                ctx.update_at(pos as u32, d);
            }
        }
    }

    fn assemble(&self, partials: Vec<SsspPartial>) -> HashMap<VertexId, Distance> {
        let mut out: HashMap<VertexId, Distance> = HashMap::new();
        for partial in partials {
            for (&v, &d) in partial.vertex_ids.iter().zip(partial.dist.as_slice()) {
                if !d.is_finite() {
                    continue;
                }
                out.entry(v)
                    .and_modify(|cur| {
                        if d < *cur {
                            *cur = d;
                        }
                    })
                    .or_insert(d);
            }
        }
        out
    }

    fn aggregate(&self, a: &Distance, b: &Distance) -> Distance {
        a.min(*b)
    }

    fn monotonic(&self, old: &Distance, new: &Distance) -> Option<bool> {
        Some(new <= old)
    }

    fn snapshot_partial(&self, partial: &SsspPartial) -> Option<Vec<u8>> {
        use grape_core::Wire;
        let mut out = Vec::new();
        // Same layout as Vec<f64>: u32 length prefix, then raw f64 bits —
        // infinities (unreached vertices) survive exactly.
        out.extend_from_slice(&(partial.dist.len() as u32).to_le_bytes());
        for d in partial.dist.as_slice() {
            d.encode(&mut out);
        }
        partial.vertex_ids.encode(&mut out);
        partial.inceval_changes.encode(&mut out);
        Some(out)
    }

    fn restore_partial(&self, bytes: &[u8]) -> Option<SsspPartial> {
        use grape_core::{Wire, WireReader};
        let mut reader = WireReader::new(bytes);
        let dist = Vec::<Distance>::decode(&mut reader).ok()?;
        let vertex_ids = Vec::<VertexId>::decode(&mut reader).ok()?;
        let inceval_changes = usize::decode(&mut reader).ok()?;
        reader.finish().ok()?;
        Some(SsspPartial {
            dist: VertexDenseMap::from_vec(dist),
            vertex_ids,
            inceval_changes,
        })
    }

    fn incremental_eligible(&self, profile: &grape_core::MutationProfile) -> bool {
        // Distances only tighten under insertions, so the old fixpoint is a
        // valid upper bound to relax down from. Deletions could *lengthen*
        // paths, which min-relaxation cannot undo — those fall back cold.
        profile.insert_only()
    }

    fn seed_partial(
        &self,
        query: &SsspQuery,
        fragment: &Fragment<(), Distance>,
        snapshot: &[u8],
        dirty: &[VertexId],
        _profile: &grape_core::MutationProfile,
        ctx: &mut PieContext<Distance>,
    ) -> Option<SsspPartial> {
        let old = self.restore_partial(snapshot)?;
        let g = &fragment.graph;
        // Carry the converged distances over by global id (dense indices may
        // have shifted); inserted vertices start unreached like a cold run.
        let mut dist = VertexDenseMap::for_graph(g, Distance::INFINITY);
        for (&v, &d) in old.vertex_ids.iter().zip(old.dist.as_slice()) {
            if let Some(i) = g.dense_index(v) {
                dist[i] = d;
            }
        }
        // Every path the update can improve starts by crossing an edge out
        // of a dirty vertex, so relaxing each dirty vertex's out-edges from
        // its settled distance is a complete seed set. Re-seeding the source
        // covers the fragment that just gained it. Min-relaxation converges
        // to the unique least fixpoint from any upper bound, and equal
        // nonnegative f64s share one bit pattern — hence bit-identity with a
        // cold run on the updated graph.
        let mut seeds: Vec<(u32, Distance)> = Vec::new();
        if let Some(src) = g.dense_index(query.source) {
            seeds.push((src, 0.0));
        }
        for &v in dirty {
            let Some(u) = g.dense_index(v) else { continue };
            let d = dist[u];
            if !d.is_finite() {
                continue;
            }
            for (&w_idx, &w) in g
                .out_neighbors_dense(u)
                .iter()
                .zip(g.out_edge_data_dense(u))
            {
                seeds.push((w_idx, d + w));
            }
        }
        let pool = std::sync::Arc::clone(ctx.pool());
        dense_relax_par(&pool, g, &mut dist, &seeds);
        for (pos, &i) in fragment.border_dense_indices().iter().enumerate() {
            let d = dist[i];
            if d.is_finite() {
                ctx.update_at(pos as u32, d);
            }
        }
        Some(SsspPartial {
            dist,
            vertex_ids: g.vertex_ids().to_vec(),
            inceval_changes: 0,
        })
    }

    fn name(&self) -> &str {
        "sssp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::{EngineConfig, GrapeEngine};
    use grape_graph::generators::{barabasi_albert, road_network, RoadNetworkConfig};
    use grape_graph::GraphBuilder;
    use grape_partition::{BuiltinStrategy, HashPartitioner, Partitioner, RangePartitioner};

    fn assert_distances_match(
        got: &HashMap<VertexId, Distance>,
        expected: &HashMap<VertexId, Distance>,
    ) {
        for (v, d) in expected {
            let g = got.get(v).copied().unwrap_or(Distance::INFINITY);
            assert!(
                (g - d).abs() < 1e-9,
                "vertex {v}: engine {g} vs reference {d}"
            );
        }
        // No spurious finite distances for unreachable vertices.
        for (v, d) in got {
            if d.is_finite() {
                assert!(expected.contains_key(v), "vertex {v} should be unreachable");
            }
        }
    }

    #[test]
    fn partial_snapshot_roundtrips_bit_identically() {
        let g = barabasi_albert(200, 3, 13).unwrap();
        let assignment = HashPartitioner.partition(&g, 2);
        let frags = grape_partition::build_fragments(&g, &assignment);
        let program = SsspProgram;
        let mut ctx = PieContext::new();
        let slots: Vec<u32> = (0..frags[0].border_vertices().len() as u32).collect();
        ctx.configure_borders(frags[0].border_vertices(), &slots);
        let partial = program.peval(&SsspQuery::new(0), &frags[0], &mut ctx);
        let bytes = program.snapshot_partial(&partial).expect("sssp snapshots");
        let back = program.restore_partial(&bytes).expect("restore");
        assert_eq!(
            partial
                .dist
                .as_slice()
                .iter()
                .map(|d| d.to_bits())
                .collect::<Vec<_>>(),
            back.dist
                .as_slice()
                .iter()
                .map(|d| d.to_bits())
                .collect::<Vec<_>>(),
            "distances must survive bit for bit (including infinities)"
        );
        assert_eq!(partial.vertex_ids, back.vertex_ids);
        assert_eq!(partial.inceval_changes, back.inceval_changes);
        // Corrupt bytes fail typed, not by panic.
        assert!(program.restore_partial(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn sequential_dijkstra_small_example() {
        let mut b = GraphBuilder::<(), f64>::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 4.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 3, 1.0);
        let g = b.build().unwrap();
        let d = sequential_sssp(&g, 0);
        assert_eq!(d[&0], 0.0);
        assert_eq!(d[&1], 1.0);
        assert_eq!(d[&2], 3.0);
        assert_eq!(d[&3], 4.0);
        assert!(sequential_sssp(&g, 99).is_empty());
    }

    #[test]
    fn dense_sssp_matches_sequential_reference() {
        let g = barabasi_albert(400, 3, 19).unwrap();
        let dense = dense_sssp(&g, g.dense_index(0));
        let reference = sequential_sssp(&g, 0);
        for (v, d) in dense.iter_with(&g) {
            match reference.get(&v) {
                Some(r) => assert_eq!(*d, *r, "vertex {v}"),
                None => assert!(d.is_infinite(), "vertex {v} should be unreached"),
            }
        }
        // A missing source yields an all-infinite map.
        let empty = dense_sssp(&g, None);
        assert!(empty.as_slice().iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn dense_relax_par_is_bit_identical_across_thread_counts() {
        let g = barabasi_albert(600, 3, 23).unwrap();
        let src = g.dense_index(0).unwrap();
        let reference = dense_sssp(&g, Some(src));
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let mut dist = VertexDenseMap::for_graph(&g, Distance::INFINITY);
            let changed = dense_relax_par(&pool, &g, &mut dist, &[(src, 0.0)]);
            assert!(changed > 0);
            for (i, (d, r)) in dist.as_slice().iter().zip(reference.as_slice()).enumerate() {
                assert!(
                    d.to_bits() == r.to_bits(),
                    "threads={threads} dense index {i}: {d} vs {r}"
                );
            }
            // Idempotent under re-seeding, like the sequential path.
            assert_eq!(dense_relax_par(&pool, &g, &mut dist, &[(src, 0.0)]), 0);
        }
    }

    #[test]
    fn dense_relax_is_idempotent() {
        let g = barabasi_albert(300, 3, 7).unwrap();
        let mut dist = VertexDenseMap::for_graph(&g, Distance::INFINITY);
        let src = g.dense_index(0).unwrap();
        let changed = dense_relax(&g, &mut dist, &[(src, 0.0)]);
        assert!(changed > 0);
        assert_eq!(dense_relax(&g, &mut dist, &[(src, 0.0)]), 0);
    }

    #[test]
    fn incremental_matches_recompute() {
        let g = barabasi_albert(300, 3, 7).unwrap();
        // Start from distances computed with an artificially bad source
        // estimate, then feed the true source as a seed.
        let mut dist = HashMap::new();
        let changed = incremental_sssp(&g, &mut dist, &[(0, 0.0)]);
        assert!(changed > 0);
        let expected = sequential_sssp(&g, 0);
        assert_distances_match(&dist, &expected);
        // Feeding the same seeds again changes nothing (idempotent).
        assert_eq!(incremental_sssp(&g, &mut dist, &[(0, 0.0)]), 0);
    }

    #[test]
    fn incremental_cost_scales_with_change_not_graph() {
        // On a long chain, improving the distance of a vertex near the end
        // touches only the tail — the boundedness property of IncEval.
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..10_000u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let mut dist = sequential_sssp(&g, 0);
        let near_end = 9_990u64;
        let changed = incremental_sssp(&g, &mut dist, &[(near_end, 1.0)]);
        assert!(changed <= 11, "only the tail is touched, got {changed}");
    }

    #[test]
    fn pie_sssp_matches_reference_on_road_network() {
        let g = road_network(
            RoadNetworkConfig {
                width: 24,
                height: 24,
                ..Default::default()
            },
            11,
        )
        .unwrap();
        let expected = sequential_sssp(&g, 0);
        for strategy in [BuiltinStrategy::Hash, BuiltinStrategy::MetisLike] {
            let assignment = strategy.partition(&g, 6);
            let engine = GrapeEngine::new(SsspProgram).with_config(EngineConfig {
                check_monotonicity: true,
                ..Default::default()
            });
            let result = engine
                .run_on_graph(&SsspQuery::new(0), &g, &assignment)
                .unwrap();
            assert_distances_match(&result.output, &expected);
            assert_eq!(result.stats.monotonicity_violations, 0);
        }
    }

    #[test]
    fn pie_sssp_matches_reference_on_power_law_graph() {
        let g = barabasi_albert(800, 4, 3).unwrap();
        let expected = sequential_sssp(&g, 5);
        let assignment = HashPartitioner.partition(&g, 8);
        let result = GrapeEngine::new(SsspProgram)
            .run_on_graph(&SsspQuery::new(5), &g, &assignment)
            .unwrap();
        assert_distances_match(&result.output, &expected);
        assert!(result.stats.supersteps >= 2, "cross-fragment paths exist");
    }

    #[test]
    fn unreachable_vertices_stay_unreached() {
        // Two disjoint chains; source in the first one.
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..10u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        for v in 100..110u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = RangePartitioner.partition(&g, 4);
        let result = GrapeEngine::new(SsspProgram)
            .run_on_graph(&SsspQuery::new(0), &g, &assignment)
            .unwrap();
        for v in 100..=110u64 {
            assert!(
                !result.output.contains_key(&v) || result.output[&v].is_infinite(),
                "vertex {v} must not receive a finite distance"
            );
        }
        assert_eq!(result.output[&10], 10.0);
    }

    #[test]
    fn source_missing_from_graph_gives_empty_result() {
        let g = barabasi_albert(50, 2, 2).unwrap();
        let assignment = HashPartitioner.partition(&g, 3);
        let result = GrapeEngine::new(SsspProgram)
            .run_on_graph(&SsspQuery::new(9_999), &g, &assignment)
            .unwrap();
        assert!(result.output.values().all(|d| d.is_infinite() || *d == 0.0));
        assert!(result.output.is_empty());
        assert_eq!(result.stats.supersteps, 1);
    }

    #[test]
    fn better_partitions_ship_fewer_messages() {
        let g = road_network(
            RoadNetworkConfig {
                width: 32,
                height: 32,
                removal_prob: 0.0,
                shortcut_prob: 0.0,
                ..Default::default()
            },
            13,
        )
        .unwrap();
        let hash = GrapeEngine::new(SsspProgram)
            .run_on_graph(
                &SsspQuery::new(0),
                &g,
                &BuiltinStrategy::Hash.partition(&g, 8),
            )
            .unwrap();
        let metis = GrapeEngine::new(SsspProgram)
            .run_on_graph(
                &SsspQuery::new(0),
                &g,
                &BuiltinStrategy::MetisLike.partition(&g, 8),
            )
            .unwrap();
        assert!(
            metis.stats.messages < hash.stats.messages,
            "metis {} messages should undercut hash {}",
            metis.stats.messages,
            hash.stats.messages
        );
        // Same answers either way.
        let reference = sequential_sssp(&g, 0);
        assert_distances_match(&metis.output, &reference);
        assert_distances_match(&hash.output, &reference);
    }

    #[test]
    fn query_constructor() {
        assert_eq!(SsspQuery::new(7).source, 7);
        assert_eq!(SsspProgram.name(), "sssp");
        assert_eq!(SsspProgram.aggregate(&3.0, &5.0), 3.0);
        assert_eq!(SsspProgram.monotonic(&5.0, &3.0), Some(true));
        assert_eq!(SsspProgram.monotonic(&3.0, &5.0), Some(false));
    }
}
