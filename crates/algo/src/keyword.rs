//! Keyword search in graphs (`Keyword`), one of the registered query classes
//! of the demo.
//!
//! Given a set of keywords and a hop bound, a keyword query returns the
//! vertices ("answer roots") that can reach at least one holder of *every*
//! keyword within the bound, ranked by the total distance to the nearest
//! holders — the classic distance-based keyword-search semantics over graphs.
//!
//! PIE formulation (a vectorized variant of SSSP):
//!
//! * For every vertex `v` and keyword `k`, maintain `d_k(v)` = the length of
//!   the shortest outgoing path from `v` to a vertex carrying `k`.
//! * **PEval** runs a multi-source Dijkstra per keyword *backwards* (along
//!   in-edges, sources are the keyword holders) on the fragment.
//! * The **update parameter** of a border vertex is its distance vector,
//!   aggregated element-wise with `min` — monotonically decreasing, so the
//!   Assurance Theorem applies.
//! * **IncEval** relaxes backwards from border vertices whose vector
//!   improved.
//! * **Assemble** merges the vectors and extracts the ranked answers,
//!   re-applying the query's distance bound (each fragment carries the bound
//!   in its partial, so a finite `max_total_distance` filters the merged
//!   answers exactly like the sequential reference).
//!
//! The per-fragment state is one flat [`VertexDenseMap<f64>`] per keyword,
//! keyed by the local graph's dense CSR indices; the relaxation loops run
//! over the flat CSR in-neighbour slices and never touch a `HashMap`.

use grape_core::par::{map_chunks, ThreadPool};
use grape_core::{Fragment, PieContext, PieProgram, VertexId};
use grape_graph::labels::LabeledVertex;
use grape_graph::{CsrGraph, DenseBitset, VertexDenseMap};
use std::collections::{BinaryHeap, HashMap};

/// A keyword-search query.
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordQuery {
    /// Keywords that must all be reachable.
    pub keywords: Vec<String>,
    /// Maximum total distance (sum over keywords) for a root to qualify.
    pub max_total_distance: f64,
}

impl KeywordQuery {
    /// Creates a query.
    pub fn new(keywords: impl IntoIterator<Item = impl Into<String>>, max_total: f64) -> Self {
        Self {
            keywords: keywords.into_iter().map(Into::into).collect(),
            max_total_distance: max_total,
        }
    }
}

/// Distance vector: position `i` is the distance to the nearest holder of
/// keyword `i` (infinite when unreachable).
pub type DistanceVector = Vec<f64>;

/// A ranked keyword-search answer.
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordAnswer {
    /// The answer root.
    pub root: VertexId,
    /// Distance to the nearest holder of each keyword.
    pub distances: DistanceVector,
    /// Sum of the per-keyword distances (the ranking key).
    pub total: f64,
}

/// Min-heap entry, reversed so `BinaryHeap` pops the smallest distance
/// first; generic over the vertex-id type so the global-id reference path
/// (`VertexId`) and the dense hot path (`u32`) share one ordering.
#[derive(PartialEq)]
struct HeapEntry<I>(f64, I);
impl<I: Ord + PartialEq> Eq for HeapEntry<I> {}
impl<I: Ord> Ord for HeapEntry<I> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.1.cmp(&self.1))
    }
}
impl<I: Ord> PartialOrd for HeapEntry<I> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Backward multi-source Dijkstra for one keyword over any adjacency closure:
/// `sources` are the keyword holders (distance 0); `in_edges(v)` lists the
/// predecessors of `v` with hop weight 1.
fn backward_bfs<F>(sources: &[VertexId], in_edges: F, dist: &mut HashMap<VertexId, f64>) -> usize
where
    F: Fn(VertexId) -> Vec<VertexId>,
{
    let mut heap = BinaryHeap::new();
    let mut changed = 0usize;
    for &s in sources {
        if 0.0 < dist.get(&s).copied().unwrap_or(f64::INFINITY) {
            dist.insert(s, 0.0);
            changed += 1;
        }
        heap.push(HeapEntry(dist[&s], s));
    }
    while let Some(HeapEntry(d, v)) = heap.pop() {
        if d > dist.get(&v).copied().unwrap_or(f64::INFINITY) {
            continue;
        }
        for u in in_edges(v) {
            let nd = d + 1.0;
            if nd < dist.get(&u).copied().unwrap_or(f64::INFINITY) {
                dist.insert(u, nd);
                changed += 1;
                heap.push(HeapEntry(nd, u));
            }
        }
    }
    changed
}

/// Sequential keyword search over a whole labeled graph — the reference.
pub fn sequential_keyword(
    graph: &grape_graph::LabeledGraph,
    query: &KeywordQuery,
) -> Vec<KeywordAnswer> {
    let mut per_vertex: HashMap<VertexId, DistanceVector> = graph
        .vertices()
        .map(|v| (v, vec![f64::INFINITY; query.keywords.len()]))
        .collect();
    for (k, keyword) in query.keywords.iter().enumerate() {
        let sources: Vec<VertexId> = graph
            .vertices()
            .filter(|v| {
                graph
                    .vertex_data(*v)
                    .is_some_and(|d| d.has_keyword(keyword))
            })
            .collect();
        let mut dist: HashMap<VertexId, f64> = HashMap::new();
        backward_bfs(
            &sources,
            |v| graph.in_edges(v).map(|(u, _)| u).collect(),
            &mut dist,
        );
        for (v, d) in dist {
            per_vertex.get_mut(&v).expect("vertex exists")[k] = d;
        }
    }
    rank_answers(&per_vertex, query)
}

/// Turns per-vertex distance vectors into the ranked answer list.
pub fn rank_answers(
    per_vertex: &HashMap<VertexId, DistanceVector>,
    query: &KeywordQuery,
) -> Vec<KeywordAnswer> {
    let mut answers: Vec<KeywordAnswer> = per_vertex
        .iter()
        .filter_map(|(v, dists)| {
            if dists.iter().any(|d| !d.is_finite()) {
                return None;
            }
            let total: f64 = dists.iter().sum();
            (total <= query.max_total_distance).then(|| KeywordAnswer {
                root: *v,
                distances: dists.clone(),
                total,
            })
        })
        .collect();
    answers.sort_by(|a, b| {
        a.total
            .partial_cmp(&b.total)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.root.cmp(&b.root))
    });
    answers
}

/// Per-fragment partial state: one flat distance array per keyword, keyed by
/// the local graph's dense indices.
#[derive(Debug, Clone)]
pub struct KeywordPartial {
    /// `dist[k][i]` = distance from local dense vertex `i` to the nearest
    /// holder of keyword `k`.
    dist: Vec<VertexDenseMap<f64>>,
    /// Global ids aligned with the dense indices (the local graph's id
    /// table), kept so Assemble can translate without the fragments at hand.
    vertex_ids: Vec<VertexId>,
    /// The query's distance bound, carried into Assemble so the merged
    /// answers are filtered exactly like the sequential reference.
    max_total_distance: f64,
}

impl Default for KeywordPartial {
    fn default() -> Self {
        Self {
            dist: Vec::new(),
            vertex_ids: Vec::new(),
            max_total_distance: f64::INFINITY,
        }
    }
}

/// The keyword-search PIE program.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeywordProgram;

impl KeywordProgram {
    /// Backward Dijkstra restricted to keyword slot `k`, seeded with the
    /// given `(dense vertex, distance)` pairs, relaxing over the flat CSR
    /// in-neighbour slices.
    fn relax_keyword(
        graph: &CsrGraph<LabeledVertex, String>,
        dist: &mut VertexDenseMap<f64>,
        seeds: &[(u32, f64)],
    ) -> usize {
        let mut heap = BinaryHeap::new();
        let mut changed = 0usize;
        for &(v, d) in seeds {
            if d < dist[v] {
                dist[v] = d;
                changed += 1;
                heap.push(HeapEntry(d, v));
            }
        }
        while let Some(HeapEntry(d, v)) = heap.pop() {
            if d > dist[v] {
                continue;
            }
            for &u in graph.in_neighbors_dense(v) {
                let nd = d + 1.0;
                if nd < dist[u] {
                    dist[u] = nd;
                    changed += 1;
                    heap.push(HeapEntry(nd, u));
                }
            }
        }
        changed
    }

    /// [`Self::relax_keyword`] with an intra-fragment thread pool: a
    /// single-threaded pool takes the sequential backward Dijkstra unchanged;
    /// a larger pool runs chunked frontier rounds (`map_chunks` over the
    /// frontier's index list, candidates applied in fixed chunk order)
    /// relaxing over the flat CSR *in*-neighbour slices with hop weight 1.
    /// Hop distances are small integers, exactly representable in f64, so
    /// both schedules converge to the same least fixpoint with **identical
    /// bits** for every thread count. The returned change count is
    /// schedule-dependent; callers only branch on `changed == 0`.
    fn relax_keyword_par(
        pool: &ThreadPool,
        graph: &CsrGraph<LabeledVertex, String>,
        dist: &mut VertexDenseMap<f64>,
        seeds: &[(u32, f64)],
    ) -> usize {
        if pool.threads() <= 1 {
            return Self::relax_keyword(graph, dist, seeds);
        }
        let n = graph.num_vertices();
        let mut changed = 0usize;
        let mut in_frontier = DenseBitset::new(n);
        let mut frontier: Vec<u32> = Vec::new();
        for &(v, d) in seeds {
            if d < dist[v] {
                dist[v] = d;
                changed += 1;
                if !in_frontier.contains(v) {
                    in_frontier.set(v);
                    frontier.push(v);
                }
            }
        }
        frontier.sort_unstable();
        let mut next: Vec<u32> = Vec::new();
        while !frontier.is_empty() {
            let snapshot: &VertexDenseMap<f64> = dist;
            let frontier_ref: &[u32] = &frontier;
            let candidates =
                map_chunks(pool, frontier.len(), |range, out: &mut Vec<(u32, f64)>| {
                    for &v in &frontier_ref[range] {
                        let nd = snapshot[v] + 1.0;
                        for &u in graph.in_neighbors_dense(v) {
                            if nd < snapshot[u] {
                                out.push((u, nd));
                            }
                        }
                    }
                });
            for &v in &frontier {
                in_frontier.clear(v);
            }
            next.clear();
            for chunk in &candidates {
                for &(u, nd) in chunk {
                    if nd < dist[u] {
                        dist[u] = nd;
                        changed += 1;
                        if !in_frontier.contains(u) {
                            in_frontier.set(u);
                            next.push(u);
                        }
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        changed
    }

    /// Publishes the distance vector of every border vertex that is already
    /// reachable for at least one keyword. Position-addressed via the border
    /// tables — an indexed gather per vertex, no lookup.
    fn publish_borders(
        fragment: &Fragment<LabeledVertex, String>,
        partial: &KeywordPartial,
        ctx: &mut PieContext<DistanceVector>,
    ) {
        for (pos, &i) in fragment.border_dense_indices().iter().enumerate() {
            let vec: DistanceVector = partial.dist.iter().map(|d| d[i]).collect();
            if vec.iter().any(|d| d.is_finite()) {
                ctx.update_at(pos as u32, vec);
            }
        }
    }
}

impl PieProgram for KeywordProgram {
    type Query = KeywordQuery;
    type VertexData = LabeledVertex;
    type EdgeData = String;
    type Value = DistanceVector;
    type Partial = KeywordPartial;
    type Output = Vec<KeywordAnswer>;

    fn peval(
        &self,
        query: &KeywordQuery,
        fragment: &Fragment<LabeledVertex, String>,
        ctx: &mut PieContext<DistanceVector>,
    ) -> KeywordPartial {
        let g = &fragment.graph;
        let n = g.num_vertices();
        let mut partial = KeywordPartial {
            dist: vec![VertexDenseMap::new(n, f64::INFINITY); query.keywords.len()],
            vertex_ids: g.vertex_ids().to_vec(),
            max_total_distance: query.max_total_distance,
        };
        let pool = std::sync::Arc::clone(ctx.pool());
        for (k, keyword) in query.keywords.iter().enumerate() {
            let sources: Vec<(u32, f64)> = (0..n as u32)
                .filter(|&i| g.vertex_data_at(i).has_keyword(keyword))
                .map(|i| (i, 0.0))
                .collect();
            Self::relax_keyword_par(&pool, g, &mut partial.dist[k], &sources);
        }
        Self::publish_borders(fragment, &partial, ctx);
        partial
    }

    fn inceval(
        &self,
        query: &KeywordQuery,
        fragment: &Fragment<LabeledVertex, String>,
        partial: &mut KeywordPartial,
        messages: &[(VertexId, DistanceVector)],
        ctx: &mut PieContext<DistanceVector>,
    ) {
        let g = &fragment.graph;
        // Translate the message vertices once at the boundary through the
        // precomputed border tables (binary search, no hashing).
        let dense_messages: Vec<(u32, &DistanceVector)> = messages
            .iter()
            .filter_map(|(v, vec)| {
                fragment
                    .border_position(*v)
                    .map(|pos| (fragment.border_dense_indices()[pos as usize], vec))
            })
            .collect();
        let pool = std::sync::Arc::clone(ctx.pool());
        let mut total_changed = 0usize;
        for k in 0..query.keywords.len() {
            let seeds: Vec<(u32, f64)> = dense_messages
                .iter()
                .filter(|(_, vec)| vec.len() > k && vec[k].is_finite())
                .map(|(i, vec)| (*i, vec[k]))
                .collect();
            if seeds.is_empty() {
                continue;
            }
            total_changed += Self::relax_keyword_par(&pool, g, &mut partial.dist[k], &seeds);
        }
        if total_changed == 0 {
            return;
        }
        Self::publish_borders(fragment, partial, ctx);
    }

    fn assemble(&self, partials: Vec<KeywordPartial>) -> Vec<KeywordAnswer> {
        let mut merged: HashMap<VertexId, DistanceVector> = HashMap::new();
        // All fragments carry the same query bound; fold with `min` so an
        // empty run stays unbounded.
        let bound = partials
            .iter()
            .map(|p| p.max_total_distance)
            .fold(f64::INFINITY, f64::min);
        let mut width = 0usize;
        for partial in &partials {
            width = width.max(partial.dist.len());
            for (idx, &v) in partial.vertex_ids.iter().enumerate() {
                let i = idx as u32;
                match merged.get_mut(&v) {
                    None => {
                        merged.insert(v, partial.dist.iter().map(|d| d[i]).collect());
                    }
                    Some(existing) => {
                        for (e, d) in existing.iter_mut().zip(partial.dist.iter().map(|d| d[i])) {
                            if d < *e {
                                *e = d;
                            }
                        }
                    }
                }
            }
        }
        let query = KeywordQuery {
            keywords: vec![String::new(); width],
            max_total_distance: bound,
        };
        rank_answers(&merged, &query)
    }

    fn aggregate(&self, a: &DistanceVector, b: &DistanceVector) -> DistanceVector {
        a.iter().zip(b.iter()).map(|(x, y)| x.min(*y)).collect()
    }

    fn monotonic(&self, old: &DistanceVector, new: &DistanceVector) -> Option<bool> {
        Some(new.iter().zip(old.iter()).all(|(n, o)| n <= o))
    }

    fn snapshot_partial(&self, partial: &KeywordPartial) -> Option<Vec<u8>> {
        use grape_core::Wire;
        let mut out = Vec::new();
        (partial.dist.len() as u32).encode(&mut out);
        for layer in &partial.dist {
            // Same layout as Vec<f64>: u32 length prefix, then elements.
            // Infinity (unreached) round-trips bit-exactly through the f64
            // codec.
            out.extend_from_slice(&(layer.len() as u32).to_le_bytes());
            for d in layer.as_slice() {
                d.encode(&mut out);
            }
        }
        partial.vertex_ids.encode(&mut out);
        partial.max_total_distance.encode(&mut out);
        Some(out)
    }

    fn restore_partial(&self, bytes: &[u8]) -> Option<KeywordPartial> {
        use grape_core::{Wire, WireReader};
        let mut reader = WireReader::new(bytes);
        let layers = u32::decode(&mut reader).ok()? as usize;
        let mut dist = Vec::with_capacity(layers);
        for _ in 0..layers {
            dist.push(VertexDenseMap::from_vec(
                Vec::<f64>::decode(&mut reader).ok()?,
            ));
        }
        let vertex_ids = Vec::<VertexId>::decode(&mut reader).ok()?;
        let max_total_distance = f64::decode(&mut reader).ok()?;
        reader.finish().ok()?;
        Some(KeywordPartial {
            dist,
            vertex_ids,
            max_total_distance,
        })
    }

    fn name(&self) -> &str {
        "keyword"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::{EngineConfig, GrapeEngine};
    use grape_graph::generators::{labeled_social, SocialGraphConfig};
    use grape_graph::labels::lv;
    use grape_graph::types::EdgeRecord;
    use grape_graph::LabeledGraph;
    use grape_partition::BuiltinStrategy;

    fn tiny_graph() -> LabeledGraph {
        // 0 -> 1 -> 2(phone), 0 -> 3(camera)
        let vs = vec![
            lv(0, "person", &[]),
            lv(1, "person", &[]),
            lv(2, "product", &["phone"]),
            lv(3, "product", &["camera"]),
        ];
        let es = vec![
            EdgeRecord::new(0, 1, "follows".to_string()),
            EdgeRecord::new(1, 2, "recommends".to_string()),
            EdgeRecord::new(0, 3, "recommends".to_string()),
        ];
        LabeledGraph::from_records(vs, es, true).unwrap()
    }

    #[test]
    fn sequential_keyword_distances() {
        let q = KeywordQuery::new(["phone", "camera"], 10.0);
        let answers = sequential_keyword(&tiny_graph(), &q);
        // Only vertex 0 reaches both: phone at distance 2, camera at 1.
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].root, 0);
        assert_eq!(answers[0].distances, vec![2.0, 1.0]);
        assert_eq!(answers[0].total, 3.0);
    }

    #[test]
    fn distance_bound_filters_answers() {
        let q = KeywordQuery::new(["phone"], 1.0);
        let answers = sequential_keyword(&tiny_graph(), &q);
        // Vertex 2 holds the keyword (distance 0) and vertex 1 reaches it in 1.
        let roots: Vec<VertexId> = answers.iter().map(|a| a.root).collect();
        assert_eq!(roots, vec![2, 1]);
    }

    #[test]
    fn missing_keyword_yields_no_answers() {
        let q = KeywordQuery::new(["spaceship"], 100.0);
        assert!(sequential_keyword(&tiny_graph(), &q).is_empty());
    }

    #[test]
    fn ranking_is_by_total_distance_then_id() {
        let mut per_vertex = HashMap::new();
        per_vertex.insert(5u64, vec![1.0, 1.0]);
        per_vertex.insert(3u64, vec![0.0, 2.0]);
        per_vertex.insert(9u64, vec![0.0, 0.0]);
        let q = KeywordQuery::new(["a", "b"], 10.0);
        let answers = rank_answers(&per_vertex, &q);
        assert_eq!(
            answers.iter().map(|a| a.root).collect::<Vec<_>>(),
            vec![9, 3, 5]
        );
    }

    #[test]
    fn pie_keyword_matches_sequential_on_social_graph() {
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 250,
                num_products: 10,
                ..Default::default()
            },
            33,
        )
        .unwrap();
        let query = KeywordQuery::new(["phone", "laptop"], f64::INFINITY);
        let reference = sequential_keyword(&g, &query);
        for strategy in [BuiltinStrategy::Hash, BuiltinStrategy::Ldg] {
            let assignment = strategy.partition(&g, 4);
            let engine = GrapeEngine::new(KeywordProgram).with_config(EngineConfig {
                check_monotonicity: true,
                ..Default::default()
            });
            let result = engine.run_on_graph(&query, &g, &assignment).unwrap();
            assert_eq!(result.output.len(), reference.len(), "{strategy:?}");
            for (got, want) in result.output.iter().zip(reference.iter()) {
                assert_eq!(got.root, want.root);
                assert_eq!(got.distances, want.distances);
            }
            assert_eq!(result.stats.monotonicity_violations, 0);
        }
    }

    #[test]
    fn finite_distance_bound_is_applied_across_fragments() {
        // Regression: Assemble used to rank the merged vectors against an
        // *unbounded* query, so a finite `max_total_distance` was silently
        // ignored on the distributed path (the parity test above dodged it
        // with an infinite bound). The bound now rides in the partials.
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 220,
                num_products: 8,
                ..Default::default()
            },
            51,
        )
        .unwrap();
        for bound in [0.0, 1.0, 3.0, 5.0] {
            let query = KeywordQuery::new(["phone", "laptop"], bound);
            let reference = sequential_keyword(&g, &query);
            let unbounded =
                sequential_keyword(&g, &KeywordQuery::new(["phone", "laptop"], f64::INFINITY));
            for k in [2usize, 5] {
                let assignment = BuiltinStrategy::Hash.partition(&g, k);
                let result = GrapeEngine::new(KeywordProgram)
                    .run_on_graph(&query, &g, &assignment)
                    .unwrap();
                assert_eq!(
                    result.output.len(),
                    reference.len(),
                    "bound {bound}, {k} fragments: distributed answers must be \
                     filtered by the query bound"
                );
                for (got, want) in result.output.iter().zip(reference.iter()) {
                    assert_eq!(got.root, want.root);
                    assert_eq!(got.distances, want.distances);
                    assert!(got.total <= bound);
                }
            }
            // The bound actually bites on this graph (otherwise the
            // regression test would be vacuous).
            if bound < 5.0 {
                assert!(reference.len() < unbounded.len());
            }
        }
    }

    #[test]
    fn keyword_sweeps_are_bit_identical_across_thread_counts() {
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 300,
                num_products: 12,
                ..Default::default()
            },
            77,
        )
        .unwrap();
        let assignment = BuiltinStrategy::Hash.partition(&g, 1);
        let frags = grape_partition::build_fragments(&g, &assignment);
        let local = &frags[0].graph;
        let n = local.num_vertices();
        for keyword in ["phone", "laptop"] {
            let sources: Vec<(u32, f64)> = (0..n as u32)
                .filter(|&i| local.vertex_data_at(i).has_keyword(keyword))
                .map(|i| (i, 0.0))
                .collect();
            assert!(!sources.is_empty(), "keyword {keyword} must have holders");
            let mut reference = VertexDenseMap::new(n, f64::INFINITY);
            KeywordProgram::relax_keyword(local, &mut reference, &sources);
            for threads in [1usize, 2, 4, 8] {
                let pool = grape_core::par::ThreadPool::new(threads);
                let mut dist = VertexDenseMap::new(n, f64::INFINITY);
                let changed = KeywordProgram::relax_keyword_par(&pool, local, &mut dist, &sources);
                assert!(changed > 0);
                for (i, (d, r)) in dist.as_slice().iter().zip(reference.as_slice()).enumerate() {
                    assert!(
                        d.to_bits() == r.to_bits(),
                        "keyword {keyword}, threads {threads}, dense index {i}: {d} vs {r}"
                    );
                }
                // Idempotent under re-seeding, like the sequential path.
                assert_eq!(
                    KeywordProgram::relax_keyword_par(&pool, local, &mut dist, &sources),
                    0
                );
            }
        }
    }

    #[test]
    fn program_declarations() {
        let p = KeywordProgram;
        assert_eq!(
            p.aggregate(&vec![1.0, 5.0], &vec![2.0, 3.0]),
            vec![1.0, 3.0]
        );
        assert_eq!(p.monotonic(&vec![2.0], &vec![1.0]), Some(true));
        assert_eq!(p.monotonic(&vec![1.0], &vec![2.0]), Some(false));
        assert_eq!(p.name(), "keyword");
        let q = KeywordQuery::new(["x"], 5.0);
        assert_eq!(q.keywords, vec!["x"]);
    }
}
