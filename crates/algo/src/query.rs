//! The typed query surface of the service mode: one [`Query`] value per
//! supported query class, wire-encodable so a session can submit it to
//! resident workers, plus the matching [`QueryResult`] sum type and the
//! order-independent result digests the bit-identity contracts pin.
//!
//! Historically the canonical query parameters (the Fig. 4 simulation
//! pattern, the `subiso` star, the keyword terms, CF's smoke-test
//! rank/epochs) were hardcoded inside `grape-worker`'s job constructors.
//! They live here now: [`Query`] *is* the parameter set, shipped on the
//! wire, and both endpoints of a service session derive their typed program
//! queries from the same decoded value instead of re-hardcoding constants.

use crate::{
    CfModel, CfQuery, Embeddings, KeywordAnswer, KeywordQuery, MarketingQuery, PageRankQuery,
    Prospect, SimMatches, SimQuery, SimQueryError, SsspQuery, SubIsoQuery,
};
use grape_core::{VertexId, Wire, WireError, WireReader};
use grape_graph::labels::{PatternGraph, VertexLabel};
use std::collections::HashMap;

/// The eight query classes the engine serves, as a plain enum for grouping,
/// dispatch and batch admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Single-source shortest paths (weighted graphs).
    Sssp,
    /// Connected components (weighted graphs).
    Cc,
    /// PageRank (weighted graphs).
    PageRank,
    /// Collaborative filtering by matrix factorization (weighted graphs).
    Cf,
    /// Graph-pattern matching by simulation (labeled graphs).
    Sim,
    /// Subgraph isomorphism (labeled graphs).
    SubIso,
    /// Distance-bounded keyword search (labeled graphs).
    Keyword,
    /// GPAR-based social media marketing (labeled graphs).
    Marketing,
}

impl QueryClass {
    /// Every query class, in canonical order.
    pub fn all() -> [QueryClass; 8] {
        [
            QueryClass::Sssp,
            QueryClass::Cc,
            QueryClass::PageRank,
            QueryClass::Cf,
            QueryClass::Sim,
            QueryClass::SubIso,
            QueryClass::Keyword,
            QueryClass::Marketing,
        ]
    }

    /// The class's stable name (`sssp`, `cc`, …), as used by job specs and
    /// the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            QueryClass::Sssp => "sssp",
            QueryClass::Cc => "cc",
            QueryClass::PageRank => "pagerank",
            QueryClass::Cf => "cf",
            QueryClass::Sim => "sim",
            QueryClass::SubIso => "subiso",
            QueryClass::Keyword => "keyword",
            QueryClass::Marketing => "marketing",
        }
    }

    /// Parses a stable class name back to the class.
    pub fn parse(name: &str) -> Option<QueryClass> {
        QueryClass::all().into_iter().find(|c| c.name() == name)
    }

    /// Whether the class runs on a labeled social graph (`true`) or a
    /// weighted graph (`false`).
    pub fn is_labeled(&self) -> bool {
        matches!(
            self,
            QueryClass::Sim | QueryClass::SubIso | QueryClass::Keyword | QueryClass::Marketing
        )
    }
}

/// A typed query against a loaded graph: the complete parameter set of one
/// query-class invocation, self-contained and wire-encodable.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Shortest paths from `source`.
    Sssp {
        /// The source vertex (global id).
        source: VertexId,
    },
    /// Connected components (no parameters).
    Cc,
    /// PageRank with explicit convergence knobs.
    PageRank {
        /// Damping factor.
        damping: f64,
        /// Maximum local power-iteration sweeps per PEval/IncEval call.
        max_local_iterations: usize,
        /// Convergence tolerance.
        tolerance: f64,
    },
    /// Collaborative filtering by SGD matrix factorization.
    Cf {
        /// Latent factor dimensionality.
        rank: usize,
        /// SGD epochs.
        epochs: usize,
        /// SGD learning rate.
        learning_rate: f64,
        /// L2 regularization weight.
        regularization: f64,
    },
    /// Pattern matching by simulation.
    Sim {
        /// The pattern to match.
        pattern: PatternGraph,
    },
    /// Subgraph isomorphism.
    SubIso {
        /// The pattern to embed; vertex 0 is the pivot.
        pattern: PatternGraph,
        /// Per-fragment cap on materialized embeddings.
        max_matches: usize,
    },
    /// Distance-bounded keyword search.
    Keyword {
        /// Keywords that must all be reachable.
        terms: Vec<String>,
        /// Maximum total distance (sum over keywords) for a root to qualify.
        bound: f64,
    },
    /// GPAR-based social media marketing.
    Marketing {
        /// The promoted product.
        product: VertexId,
        /// Minimum fraction of followees that must recommend the product.
        min_recommend_ratio: f64,
        /// Minimum number of followees for the ratio to be meaningful.
        min_followees: usize,
    },
}

impl Query {
    /// Shortest paths from `source`.
    pub fn sssp(source: VertexId) -> Query {
        Query::Sssp { source }
    }

    /// Connected components.
    pub fn cc() -> Query {
        Query::Cc
    }

    /// PageRank with the default knobs ([`PageRankQuery::default`]).
    pub fn pagerank() -> Query {
        let q = PageRankQuery::default();
        Query::PageRank {
            damping: q.damping,
            max_local_iterations: q.max_local_iterations,
            tolerance: q.tolerance,
        }
    }

    /// The canonical CF query of the drills and benches: rank 4, 4 epochs,
    /// default learning rate and regularization.
    pub fn cf() -> Query {
        let q = CfQuery {
            rank: 4,
            epochs: 4,
            ..Default::default()
        };
        Query::Cf {
            rank: q.rank,
            epochs: q.epochs,
            learning_rate: q.learning_rate,
            regularization: q.regularization,
        }
    }

    /// Simulation matching of `pattern` (validated when the query runs).
    pub fn sim(pattern: PatternGraph) -> Query {
        Query::Sim { pattern }
    }

    /// The canonical simulation pattern — the chain of Fig. 4:
    /// person →`follows` person →`recommends` product.
    pub fn canonical_sim() -> Query {
        Query::sim(
            PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
                .edge_labeled(0, 1, "follows")
                .edge_labeled(1, 2, "recommends"),
        )
    }

    /// Subgraph isomorphism of `pattern` with no embedding cap.
    pub fn subiso(pattern: PatternGraph) -> Query {
        Query::SubIso {
            pattern,
            max_matches: usize::MAX,
        }
    }

    /// The canonical subgraph-isomorphism pattern: a radius-1 star (with
    /// radius ≥ 2 the protocol would replicate whole 2-hop neighbourhoods of
    /// a hubby social graph per border vertex).
    pub fn canonical_subiso() -> Query {
        Query::subiso(
            PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
                .edge_labeled(0, 1, "follows")
                .edge_labeled(0, 2, "recommends"),
        )
    }

    /// Keyword search for `terms` within total distance `bound`.
    pub fn keyword(terms: impl IntoIterator<Item = impl Into<String>>, bound: f64) -> Query {
        Query::Keyword {
            terms: terms.into_iter().map(Into::into).collect(),
            bound,
        }
    }

    /// The canonical keyword query of the drills: `phone` + `laptop`,
    /// unbounded total distance.
    pub fn canonical_keyword() -> Query {
        Query::keyword(["phone", "laptop"], f64::INFINITY)
    }

    /// Marketing prospects for `product` with the Example 2 thresholds
    /// (80 % recommend ratio, at least 2 followees).
    pub fn marketing(product: VertexId) -> Query {
        let q = MarketingQuery::new(product);
        Query::Marketing {
            product: q.product,
            min_recommend_ratio: q.min_recommend_ratio,
            min_followees: q.min_followees,
        }
    }

    /// The query's class.
    pub fn class(&self) -> QueryClass {
        match self {
            Query::Sssp { .. } => QueryClass::Sssp,
            Query::Cc => QueryClass::Cc,
            Query::PageRank { .. } => QueryClass::PageRank,
            Query::Cf { .. } => QueryClass::Cf,
            Query::Sim { .. } => QueryClass::Sim,
            Query::SubIso { .. } => QueryClass::SubIso,
            Query::Keyword { .. } => QueryClass::Keyword,
            Query::Marketing { .. } => QueryClass::Marketing,
        }
    }

    /// The typed [`SsspQuery`] this query describes, if it is one.
    pub fn to_sssp(&self) -> Option<SsspQuery> {
        match self {
            Query::Sssp { source } => Some(SsspQuery::new(*source)),
            _ => None,
        }
    }

    /// The typed [`PageRankQuery`] this query describes, if it is one.
    pub fn to_pagerank(&self) -> Option<PageRankQuery> {
        match self {
            Query::PageRank {
                damping,
                max_local_iterations,
                tolerance,
            } => Some(PageRankQuery {
                damping: *damping,
                max_local_iterations: *max_local_iterations,
                tolerance: *tolerance,
            }),
            _ => None,
        }
    }

    /// The typed [`CfQuery`] this query describes, if it is one.
    pub fn to_cf(&self) -> Option<CfQuery> {
        match self {
            Query::Cf {
                rank,
                epochs,
                learning_rate,
                regularization,
            } => Some(CfQuery {
                rank: *rank,
                epochs: *epochs,
                learning_rate: *learning_rate,
                regularization: *regularization,
            }),
            _ => None,
        }
    }

    /// The typed [`SimQuery`] this query describes, if it is one (pattern
    /// validation happens here).
    pub fn to_sim(&self) -> Option<Result<SimQuery, SimQueryError>> {
        match self {
            Query::Sim { pattern } => Some(SimQuery::try_new(pattern.clone())),
            _ => None,
        }
    }

    /// The typed [`SubIsoQuery`] this query describes, if it is one.
    pub fn to_subiso(&self) -> Option<SubIsoQuery> {
        match self {
            Query::SubIso {
                pattern,
                max_matches,
            } => Some(SubIsoQuery {
                pattern: pattern.clone(),
                max_matches: *max_matches,
            }),
            _ => None,
        }
    }

    /// The typed [`KeywordQuery`] this query describes, if it is one.
    pub fn to_keyword(&self) -> Option<KeywordQuery> {
        match self {
            Query::Keyword { terms, bound } => Some(KeywordQuery::new(terms.clone(), *bound)),
            _ => None,
        }
    }

    /// The typed [`MarketingQuery`] this query describes, if it is one.
    pub fn to_marketing(&self) -> Option<MarketingQuery> {
        match self {
            Query::Marketing {
                product,
                min_recommend_ratio,
                min_followees,
            } => Some(MarketingQuery {
                product: *product,
                min_recommend_ratio: *min_recommend_ratio,
                min_followees: *min_followees,
            }),
            _ => None,
        }
    }
}

fn encode_pattern(pattern: &PatternGraph, out: &mut Vec<u8>) {
    (pattern.labels.len() as u32).encode(out);
    for label in &pattern.labels {
        label.0.encode(out);
    }
    (pattern.edges.len() as u32).encode(out);
    for (from, to, relation) in &pattern.edges {
        (*from as u32).encode(out);
        (*to as u32).encode(out);
        relation.encode(out);
    }
}

fn decode_pattern(reader: &mut WireReader<'_>) -> Result<PatternGraph, WireError> {
    let n = reader.u32()? as usize;
    let mut labels: Vec<VertexLabel> = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        labels.push(VertexLabel(String::decode(reader)?));
    }
    let m = reader.u32()? as usize;
    let mut pattern = PatternGraph::new(labels);
    for _ in 0..m {
        let from = reader.u32()? as usize;
        let to = reader.u32()? as usize;
        let relation = Option::<String>::decode(reader)?;
        pattern.edges.push((from, to, relation));
    }
    Ok(pattern)
}

impl Wire for Query {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Query::Sssp { source } => {
                0u8.encode(out);
                source.encode(out);
            }
            Query::Cc => 1u8.encode(out),
            Query::PageRank {
                damping,
                max_local_iterations,
                tolerance,
            } => {
                2u8.encode(out);
                damping.encode(out);
                (*max_local_iterations as u64).encode(out);
                tolerance.encode(out);
            }
            Query::Cf {
                rank,
                epochs,
                learning_rate,
                regularization,
            } => {
                3u8.encode(out);
                (*rank as u64).encode(out);
                (*epochs as u64).encode(out);
                learning_rate.encode(out);
                regularization.encode(out);
            }
            Query::Sim { pattern } => {
                4u8.encode(out);
                encode_pattern(pattern, out);
            }
            Query::SubIso {
                pattern,
                max_matches,
            } => {
                5u8.encode(out);
                encode_pattern(pattern, out);
                (*max_matches as u64).encode(out);
            }
            Query::Keyword { terms, bound } => {
                6u8.encode(out);
                terms.encode(out);
                bound.encode(out);
            }
            Query::Marketing {
                product,
                min_recommend_ratio,
                min_followees,
            } => {
                7u8.encode(out);
                product.encode(out);
                min_recommend_ratio.encode(out);
                (*min_followees as u64).encode(out);
            }
        }
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(Query::Sssp {
                source: reader.u64()?,
            }),
            1 => Ok(Query::Cc),
            2 => Ok(Query::PageRank {
                damping: reader.f64()?,
                max_local_iterations: reader.u64()? as usize,
                tolerance: reader.f64()?,
            }),
            3 => Ok(Query::Cf {
                rank: reader.u64()? as usize,
                epochs: reader.u64()? as usize,
                learning_rate: reader.f64()?,
                regularization: reader.f64()?,
            }),
            4 => Ok(Query::Sim {
                pattern: decode_pattern(reader)?,
            }),
            5 => Ok(Query::SubIso {
                pattern: decode_pattern(reader)?,
                max_matches: reader.u64()? as usize,
            }),
            6 => Ok(Query::Keyword {
                terms: Vec::<String>::decode(reader)?,
                bound: reader.f64()?,
            }),
            7 => Ok(Query::Marketing {
                product: reader.u64()?,
                min_recommend_ratio: reader.f64()?,
                min_followees: reader.u64()? as usize,
            }),
            other => Err(WireError::BadTag { found: other }),
        }
    }
}

/// The typed answer of one [`Query`], one variant per query class.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// `sssp`: distance from the source per reachable vertex.
    Distances(HashMap<VertexId, f64>),
    /// `cc`: smallest-id representative per vertex.
    Components(HashMap<VertexId, VertexId>),
    /// `pagerank`: rank per vertex.
    Ranks(HashMap<VertexId, f64>),
    /// `cf`: the learned factor model.
    Model(CfModel),
    /// `sim`: per-pattern-vertex match sets.
    Matches(SimMatches),
    /// `subiso`: the embeddings found.
    Embeddings(Embeddings),
    /// `keyword`: ranked answers.
    Answers(Vec<KeywordAnswer>),
    /// `marketing`: the prospect list.
    Prospects(Vec<Prospect>),
}

impl QueryResult {
    /// The class that produced this result.
    pub fn class(&self) -> QueryClass {
        match self {
            QueryResult::Distances(_) => QueryClass::Sssp,
            QueryResult::Components(_) => QueryClass::Cc,
            QueryResult::Ranks(_) => QueryClass::PageRank,
            QueryResult::Model(_) => QueryClass::Cf,
            QueryResult::Matches(_) => QueryClass::Sim,
            QueryResult::Embeddings(_) => QueryClass::SubIso,
            QueryResult::Answers(_) => QueryClass::Keyword,
            QueryResult::Prospects(_) => QueryClass::Marketing,
        }
    }

    /// Order-independent digest of the full result, bit-exact on every
    /// value — the quantity the service-vs-cold identity contracts pin.
    pub fn digest(&self) -> u64 {
        match self {
            QueryResult::Distances(map) => digest_f64_map(map),
            QueryResult::Components(map) => digest_u64_map(map),
            QueryResult::Ranks(map) => digest_f64_map(map),
            QueryResult::Model(model) => digest_cf(model),
            QueryResult::Matches(matches) => digest_sim(matches),
            QueryResult::Embeddings(embeddings) => digest_embeddings(embeddings),
            QueryResult::Answers(answers) => digest_keyword(answers),
            QueryResult::Prospects(prospects) => digest_prospects(prospects),
        }
    }
}

// ---------------------------------------------------------------------------
// Result digests
// ---------------------------------------------------------------------------

/// Order-independent FNV-1a digest over canonically encoded items: XOR of
/// per-item hashes, so iteration order (HashMap, HashSet, process) cannot
/// leak in, while every bit of every item still matters.
fn digest_items<T: Wire>(items: impl Iterator<Item = T>) -> u64 {
    let mut acc = 0u64;
    for item in items {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in item.encode_to_vec() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        acc ^= h;
    }
    acc
}

/// Digest of a vertex→`f64` result map (bit-exact on the values).
pub fn digest_f64_map(map: &HashMap<VertexId, f64>) -> u64 {
    digest_items(map.iter().map(|(&k, &v)| (k, v.to_bits())))
}

/// Digest of a vertex→vertex result map.
pub fn digest_u64_map(map: &HashMap<VertexId, VertexId>) -> u64 {
    digest_items(map.iter().map(|(&k, &v)| (k, v)))
}

/// Digest of a simulation match relation: every `(pattern vertex, data
/// vertex)` pair, independent of set order.
pub fn digest_sim(matches: &SimMatches) -> u64 {
    digest_items(
        matches
            .iter()
            .enumerate()
            .flat_map(|(u, bucket)| bucket.iter().map(move |&v| (u as u64, v))),
    )
}

/// Digest of a set of subgraph-isomorphism embeddings.
pub fn digest_embeddings(embeddings: &Embeddings) -> u64 {
    digest_items(embeddings.iter().cloned())
}

/// Digest of ranked keyword-search answers (roots, per-keyword distances
/// and totals, all bit-exact).
pub fn digest_keyword(answers: &[KeywordAnswer]) -> u64 {
    digest_items(
        answers
            .iter()
            .map(|a| (a.root, a.distances.clone(), a.total)),
    )
}

/// Digest of a collaborative-filtering model: every factor vector, bit-exact.
pub fn digest_cf(model: &CfModel) -> u64 {
    digest_items(model.factors.iter().map(|(&v, f)| (v, f.clone())))
}

/// Digest of the marketing prospects list.
pub fn digest_prospects(prospects: &[Prospect]) -> u64 {
    digest_items(
        prospects
            .iter()
            .map(|p| (p.person, p.recommend_ratio, p.followees)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_roundtrip_on_the_wire() {
        let queries = [
            Query::sssp(42),
            Query::cc(),
            Query::pagerank(),
            Query::cf(),
            Query::canonical_sim(),
            Query::canonical_subiso(),
            Query::canonical_keyword(),
            Query::keyword(["phone"], 12.5),
            Query::marketing(17),
            Query::Sim {
                pattern: PatternGraph::new(vec!["a".into(), "b".into()]).edge(0, 1),
            },
        ];
        for query in queries {
            let bytes = query.encode_to_vec();
            let mut reader = WireReader::new(&bytes);
            let decoded = Query::decode(&mut reader).unwrap();
            reader.finish().unwrap();
            assert_eq!(decoded, query);
        }
    }

    #[test]
    fn classes_have_stable_names_and_families() {
        for class in QueryClass::all() {
            assert_eq!(QueryClass::parse(class.name()), Some(class));
        }
        assert!(!QueryClass::Sssp.is_labeled());
        assert!(!QueryClass::Cf.is_labeled());
        assert!(QueryClass::Sim.is_labeled());
        assert!(QueryClass::Marketing.is_labeled());
        assert_eq!(Query::canonical_keyword().class(), QueryClass::Keyword);
    }

    #[test]
    fn typed_extraction_matches_the_historical_constructors() {
        // The canonical constructors must reproduce the exact parameter sets
        // the pre-service job constructors hardcoded, or cold-vs-service
        // bit-identity would silently compare different queries.
        let sim = Query::canonical_sim().to_sim().unwrap().unwrap();
        assert_eq!(sim.pattern.num_vertices(), 3);
        assert_eq!(sim.pattern.edges[0], (0, 1, Some("follows".into())));
        assert_eq!(sim.pattern.edges[1], (1, 2, Some("recommends".into())));

        let subiso = Query::canonical_subiso().to_subiso().unwrap();
        assert_eq!(subiso.pattern.edges[0], (0, 1, Some("follows".into())));
        assert_eq!(subiso.pattern.edges[1], (0, 2, Some("recommends".into())));
        assert_eq!(subiso.max_matches, usize::MAX);

        let keyword = Query::canonical_keyword().to_keyword().unwrap();
        assert_eq!(keyword.keywords, vec!["phone", "laptop"]);
        assert_eq!(keyword.max_total_distance, f64::INFINITY);

        let cf = Query::cf().to_cf().unwrap();
        assert_eq!((cf.rank, cf.epochs), (4, 4));
        let defaults = CfQuery::default();
        assert_eq!(cf.learning_rate, defaults.learning_rate);
        assert_eq!(cf.regularization, defaults.regularization);

        let pr = Query::pagerank().to_pagerank().unwrap();
        let defaults = PageRankQuery::default();
        assert_eq!(pr.damping, defaults.damping);
        assert_eq!(pr.tolerance, defaults.tolerance);

        let marketing = Query::marketing(9).to_marketing().unwrap();
        let reference = MarketingQuery::new(9);
        assert_eq!(marketing.product, reference.product);
        assert_eq!(marketing.min_recommend_ratio, reference.min_recommend_ratio);
        assert_eq!(marketing.min_followees, reference.min_followees);
    }

    #[test]
    fn digests_are_order_independent_and_value_sensitive() {
        let mut a = HashMap::new();
        a.insert(1u64, 1.5f64);
        a.insert(2, 2.5);
        let mut b = HashMap::new();
        b.insert(2u64, 2.5f64);
        b.insert(1, 1.5);
        assert_eq!(digest_f64_map(&a), digest_f64_map(&b));
        b.insert(1, 1.5000001);
        assert_ne!(digest_f64_map(&a), digest_f64_map(&b));
        assert_eq!(
            QueryResult::Distances(a.clone()).digest(),
            digest_f64_map(&a)
        );
    }
}
