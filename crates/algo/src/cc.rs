//! Connected components (CC), one of the registered query classes of the
//! demo.
//!
//! Each vertex ends up labeled with the smallest vertex id in its weakly
//! connected component.
//!
//! * **PEval** — a sequential union-find pass over the fragment's local
//!   edges, run entirely over dense CSR indices.
//! * **IncEval** — incremental min-label propagation: arriving border labels
//!   are merged into the flat label array and propagated along the dense
//!   adjacency until stable.
//! * **Aggregate** — `min`, which is monotonically decreasing, so termination
//!   and correctness follow from the Assurance Theorem.
//!
//! The per-fragment state is a [`VertexDenseMap`] of labels; because a
//! [`CsrGraph`]'s dense indices are assigned in ascending global-id order,
//! "smallest dense index in the class" and "smallest global id in the class"
//! coincide, which [`DenseUnionFind`] exploits.

use grape_core::{Fragment, PieContext, PieProgram, VertexId};
use grape_graph::{CsrGraph, VertexDenseMap};
use std::collections::HashMap;

/// CC query: no parameters (the whole graph is labeled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CcQuery;

/// Disjoint-set forest over arbitrary `u64` vertex ids (the global-id
/// reference variant; the PIE hot path uses [`DenseUnionFind`]).
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: HashMap<VertexId, VertexId>,
}

impl UnionFind {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds the representative of `v`, inserting it as a singleton if new.
    pub fn find(&mut self, v: VertexId) -> VertexId {
        let parent = *self.parent.entry(v).or_insert(v);
        if parent == v {
            return v;
        }
        let root = self.find(parent);
        self.parent.insert(v, root);
        root
    }

    /// Unions the classes of `a` and `b`, keeping the smaller id as the root.
    pub fn union(&mut self, a: VertexId, b: VertexId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (small, large) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(large, small);
    }

    /// Representative of `v` without inserting (read-only).
    pub fn find_readonly(&self, mut v: VertexId) -> VertexId {
        while let Some(&p) = self.parent.get(&v) {
            if p == v {
                return v;
            }
            v = p;
        }
        v
    }
}

/// Disjoint-set forest over dense `0..n` indices: a flat parent array with
/// path halving, keeping the smallest index as the representative.
#[derive(Debug, Clone)]
pub struct DenseUnionFind {
    parent: Vec<u32>,
}

impl DenseUnionFind {
    /// A forest of `n` singletons.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    /// Finds the representative of `i` with path halving.
    #[inline]
    pub fn find(&mut self, mut i: u32) -> u32 {
        while self.parent[i as usize] != i {
            let grandparent = self.parent[self.parent[i as usize] as usize];
            self.parent[i as usize] = grandparent;
            i = grandparent;
        }
        i
    }

    /// Unions the classes of `a` and `b`, keeping the smaller index as root.
    #[inline]
    pub fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (small, large) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[large as usize] = small;
    }

    /// Number of elements in the forest.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// Sequential weakly-connected-components labeling of a whole graph: the
/// reference used in tests (equivalent to
/// [`grape_graph::metrics::weakly_connected_components`] but built on the
/// same union-find the PIE program uses).
pub fn sequential_cc<V: Clone, E: Clone>(graph: &CsrGraph<V, E>) -> HashMap<VertexId, VertexId> {
    let mut uf = UnionFind::new();
    for v in graph.vertices() {
        uf.find(v);
    }
    for (s, d, _) in graph.edges() {
        uf.union(s, d);
    }
    graph.vertices().map(|v| (v, uf.find(v))).collect()
}

/// Per-fragment partial state: the component label (smallest known global id)
/// of every local vertex, keyed by the fragment's dense indices.
#[derive(Debug, Clone, Default)]
pub struct CcPartial {
    labels: VertexDenseMap<VertexId>,
    /// Global ids aligned with `labels`, for Assemble.
    vertex_ids: Vec<VertexId>,
}

/// The CC PIE program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CcProgram;

impl CcProgram {
    /// Propagates min labels along the dense local edges until stable.
    /// Returns whether any label changed.
    fn relabel(fragment: &Fragment<(), f64>, labels: &mut VertexDenseMap<VertexId>) -> bool {
        let g = &fragment.graph;
        let n = g.num_vertices() as u32;
        let mut changed_any = false;
        let mut changed = true;
        while changed {
            changed = false;
            for u in 0..n {
                for &w in g.out_neighbors_dense(u) {
                    let lu = labels[u];
                    let lw = labels[w];
                    let m = lu.min(lw);
                    if lu != m {
                        labels[u] = m;
                        changed = true;
                        changed_any = true;
                    }
                    if lw != m {
                        labels[w] = m;
                        changed = true;
                        changed_any = true;
                    }
                }
            }
        }
        changed_any
    }

    fn publish_borders(
        fragment: &Fragment<(), f64>,
        labels: &VertexDenseMap<VertexId>,
        ctx: &mut PieContext<VertexId>,
    ) {
        // Position-addressed: an indexed compare per border vertex.
        for (pos, &i) in fragment.border_dense_indices().iter().enumerate() {
            ctx.update_at(pos as u32, labels[i]);
        }
    }
}

impl PieProgram for CcProgram {
    type Query = CcQuery;
    type VertexData = ();
    type EdgeData = f64;
    type Value = VertexId;
    type Partial = CcPartial;
    type Output = HashMap<VertexId, VertexId>;

    fn peval(
        &self,
        _query: &CcQuery,
        fragment: &Fragment<(), f64>,
        ctx: &mut PieContext<VertexId>,
    ) -> CcPartial {
        // Union-find over the local edges (textbook sequential CC), entirely
        // on dense indices.
        let g = &fragment.graph;
        let n = g.num_vertices();
        let mut uf = DenseUnionFind::new(n);
        for u in 0..n as u32 {
            for &w in g.out_neighbors_dense(u) {
                uf.union(u, w);
            }
        }
        // Dense indices ascend with global ids, so the root's id is the
        // smallest global id of the class.
        let labels = VertexDenseMap::from_fn(n, |i| g.vertex_of(uf.find(i)));
        Self::publish_borders(fragment, &labels, ctx);
        CcPartial {
            labels,
            vertex_ids: g.vertex_ids().to_vec(),
        }
    }

    fn inceval(
        &self,
        _query: &CcQuery,
        fragment: &Fragment<(), f64>,
        partial: &mut CcPartial,
        messages: &[(VertexId, VertexId)],
        ctx: &mut PieContext<VertexId>,
    ) {
        let g = &fragment.graph;
        let mut touched = false;
        for &(v, label) in messages {
            if let Some(i) = g.dense_index(v) {
                if label < partial.labels[i] {
                    partial.labels[i] = label;
                    touched = true;
                }
            }
        }
        if !touched {
            return;
        }
        Self::relabel(fragment, &mut partial.labels);
        Self::publish_borders(fragment, &partial.labels, ctx);
    }

    fn assemble(&self, partials: Vec<CcPartial>) -> HashMap<VertexId, VertexId> {
        let mut out: HashMap<VertexId, VertexId> = HashMap::new();
        for partial in partials {
            for (&v, &label) in partial.vertex_ids.iter().zip(partial.labels.as_slice()) {
                out.entry(v)
                    .and_modify(|l| *l = (*l).min(label))
                    .or_insert(label);
            }
        }
        out
    }

    fn aggregate(&self, a: &VertexId, b: &VertexId) -> VertexId {
        *a.min(b)
    }

    fn monotonic(&self, old: &VertexId, new: &VertexId) -> Option<bool> {
        Some(new <= old)
    }

    fn name(&self) -> &str {
        "cc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::{EngineConfig, GrapeEngine};
    use grape_graph::generators::{barabasi_albert, erdos_renyi, road_network, RoadNetworkConfig};
    use grape_graph::GraphBuilder;
    use grape_partition::{BuiltinStrategy, HashPartitioner, Partitioner, RangePartitioner};

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new();
        uf.union(5, 3);
        uf.union(3, 8);
        assert_eq!(uf.find(8), 3);
        assert_eq!(uf.find(5), 3);
        assert_eq!(uf.find(42), 42);
        assert_eq!(uf.find_readonly(8), 3);
        assert_eq!(uf.find_readonly(1_000), 1_000);
    }

    #[test]
    fn dense_union_find_basics() {
        let mut uf = DenseUnionFind::new(10);
        assert_eq!(uf.len(), 10);
        assert!(!uf.is_empty());
        uf.union(5, 3);
        uf.union(3, 8);
        assert_eq!(uf.find(8), 3);
        assert_eq!(uf.find(5), 3);
        assert_eq!(uf.find(9), 9);
        // The smallest index always wins the root.
        uf.union(8, 0);
        assert_eq!(uf.find(5), 0);
        assert!(DenseUnionFind::new(0).is_empty());
    }

    #[test]
    fn dense_and_hash_union_find_agree() {
        let g = erdos_renyi(120, 0.03, 13).unwrap();
        let reference = sequential_cc(&g);
        let n = g.num_vertices();
        let mut uf = DenseUnionFind::new(n);
        for u in 0..n as u32 {
            for &w in g.out_neighbors_dense(u) {
                uf.union(u, w);
            }
        }
        for u in 0..n as u32 {
            assert_eq!(g.vertex_of(uf.find(u)), reference[&g.vertex_of(u)]);
        }
    }

    #[test]
    fn sequential_cc_labels_by_min_id() {
        let mut b = GraphBuilder::<(), ()>::new();
        b.add_edge(4, 2, ());
        b.add_edge(2, 9, ());
        b.add_edge(7, 8, ());
        let g = b.build().unwrap();
        let cc = sequential_cc(&g);
        assert_eq!(cc[&4], 2);
        assert_eq!(cc[&9], 2);
        assert_eq!(cc[&7], 7);
        assert_eq!(cc[&8], 7);
    }

    fn check_against_reference(g: &CsrGraph<(), f64>, k: usize, strategy: BuiltinStrategy) {
        let expected = sequential_cc(g);
        let assignment = strategy.partition(g, k);
        let engine = GrapeEngine::new(CcProgram).with_config(EngineConfig {
            check_monotonicity: true,
            ..Default::default()
        });
        let result = engine.run_on_graph(&CcQuery, g, &assignment).unwrap();
        for v in g.vertices() {
            assert_eq!(result.output[&v], expected[&v], "vertex {v}");
        }
        assert_eq!(result.stats.monotonicity_violations, 0);
    }

    #[test]
    fn pie_cc_matches_reference_on_random_graphs() {
        check_against_reference(
            &erdos_renyi(300, 0.01, 5).unwrap(),
            4,
            BuiltinStrategy::Hash,
        );
        check_against_reference(
            &barabasi_albert(400, 3, 6).unwrap(),
            6,
            BuiltinStrategy::Ldg,
        );
    }

    #[test]
    fn pie_cc_matches_reference_on_road_network() {
        let g = road_network(
            RoadNetworkConfig {
                width: 20,
                height: 20,
                removal_prob: 0.15,
                ..Default::default()
            },
            31,
        )
        .unwrap();
        check_against_reference(&g, 8, BuiltinStrategy::MetisLike);
    }

    #[test]
    fn many_small_components() {
        // 50 disjoint edges -> 50 components.
        let mut b = GraphBuilder::<(), f64>::new();
        for i in 0..50u64 {
            b.add_edge(2 * i, 2 * i + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = HashPartitioner.partition(&g, 5);
        let result = GrapeEngine::new(CcProgram)
            .run_on_graph(&CcQuery, &g, &assignment)
            .unwrap();
        let distinct: std::collections::HashSet<_> = result.output.values().collect();
        assert_eq!(distinct.len(), 50);
        for i in 0..50u64 {
            assert_eq!(result.output[&(2 * i)], 2 * i);
            assert_eq!(result.output[&(2 * i + 1)], 2 * i);
        }
    }

    #[test]
    fn chain_across_many_fragments_converges() {
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..100u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = RangePartitioner.partition(&g, 10);
        let result = GrapeEngine::new(CcProgram)
            .run_on_graph(&CcQuery, &g, &assignment)
            .unwrap();
        assert!(result.output.values().all(|&l| l == 0));
        // Label 0 must hop across 9 fragment boundaries one superstep at a
        // time, plus the PEval round and a final quiescent round.
        assert!(result.stats.supersteps >= 10);
    }

    #[test]
    fn program_declarations() {
        assert_eq!(CcProgram.aggregate(&7, &3), 3);
        assert_eq!(CcProgram.monotonic(&7, &3), Some(true));
        assert_eq!(CcProgram.monotonic(&3, &7), Some(false));
        assert_eq!(CcProgram.name(), "cc");
    }
}
