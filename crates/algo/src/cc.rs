//! Connected components (CC), one of the registered query classes of the
//! demo.
//!
//! Each vertex ends up labeled with the smallest vertex id in its weakly
//! connected component.
//!
//! * **PEval** — a sequential union-find pass over the fragment's local
//!   edges, run entirely over dense CSR indices.
//! * **IncEval** — incremental min-label propagation: arriving border labels
//!   are merged into the flat label array and propagated along the dense
//!   adjacency until stable.
//! * **Aggregate** — `min`, which is monotonically decreasing, so termination
//!   and correctness follow from the Assurance Theorem.
//!
//! The per-fragment state is a [`VertexDenseMap`] of labels; because a
//! [`CsrGraph`]'s dense indices are assigned in ascending global-id order,
//! "smallest dense index in the class" and "smallest global id in the class"
//! coincide, which [`DenseUnionFind`] exploits.

use grape_core::par::{for_each_slice_chunk, num_chunks, ThreadPool, CHUNK};
use grape_core::{Fragment, PieContext, PieProgram, VertexId};
use grape_graph::{CsrGraph, VertexDenseMap};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

/// CC query: no parameters (the whole graph is labeled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CcQuery;

/// Disjoint-set forest over arbitrary `u64` vertex ids (the global-id
/// reference variant; the PIE hot path uses [`DenseUnionFind`]).
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: HashMap<VertexId, VertexId>,
}

impl UnionFind {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds the representative of `v`, inserting it as a singleton if new.
    pub fn find(&mut self, v: VertexId) -> VertexId {
        let parent = *self.parent.entry(v).or_insert(v);
        if parent == v {
            return v;
        }
        let root = self.find(parent);
        self.parent.insert(v, root);
        root
    }

    /// Unions the classes of `a` and `b`, keeping the smaller id as the root.
    pub fn union(&mut self, a: VertexId, b: VertexId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (small, large) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(large, small);
    }

    /// Representative of `v` without inserting (read-only).
    pub fn find_readonly(&self, mut v: VertexId) -> VertexId {
        while let Some(&p) = self.parent.get(&v) {
            if p == v {
                return v;
            }
            v = p;
        }
        v
    }
}

/// Disjoint-set forest over dense `0..n` indices: a flat parent array with
/// path halving, keeping the smallest index as the representative.
#[derive(Debug, Clone)]
pub struct DenseUnionFind {
    parent: Vec<u32>,
}

impl DenseUnionFind {
    /// A forest of `n` singletons.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    /// Adopts an existing parent array (e.g. a canonicalized component map
    /// from an earlier run) as the starting forest.
    pub fn from_parents(parent: Vec<u32>) -> Self {
        Self { parent }
    }

    /// Finds the representative of `i` with path halving.
    #[inline]
    pub fn find(&mut self, mut i: u32) -> u32 {
        while self.parent[i as usize] != i {
            let grandparent = self.parent[self.parent[i as usize] as usize];
            self.parent[i as usize] = grandparent;
            i = grandparent;
        }
        i
    }

    /// Unions the classes of `a` and `b`, keeping the smaller index as root.
    #[inline]
    pub fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (small, large) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[large as usize] = small;
    }

    /// Number of elements in the forest.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// Sequential weakly-connected-components labeling of a whole graph: the
/// reference used in tests (equivalent to
/// [`grape_graph::metrics::weakly_connected_components`] but built on the
/// same union-find the PIE program uses).
pub fn sequential_cc<V: Clone, E: Clone>(graph: &CsrGraph<V, E>) -> HashMap<VertexId, VertexId> {
    let mut uf = UnionFind::new();
    for v in graph.vertices() {
        uf.find(v);
    }
    for (s, d, _) in graph.edges() {
        uf.union(s, d);
    }
    graph.vertices().map(|v| (v, uf.find(v))).collect()
}

/// Lock-free find with path halving over an atomic parent array. The halving
/// CAS is a benign race: it only ever replaces a parent pointer with an
/// ancestor, so concurrent interleavings cannot change which root is reached.
#[inline]
fn atomic_find(parent: &[AtomicU32], mut i: u32) -> u32 {
    loop {
        let p = parent[i as usize].load(Ordering::Acquire);
        if p == i {
            return i;
        }
        let gp = parent[p as usize].load(Ordering::Acquire);
        if gp != p {
            let _ = parent[i as usize].compare_exchange(p, gp, Ordering::AcqRel, Ordering::Acquire);
        }
        i = gp;
    }
}

/// Min-hooking concurrent unite: roots only ever acquire *smaller* parents,
/// so the forest stays acyclic and the final root of every class is its
/// minimum element — the same representative the sequential
/// [`DenseUnionFind`] picks, regardless of thread schedule.
#[inline]
fn atomic_unite(parent: &[AtomicU32], a: u32, b: u32) {
    let mut ra = atomic_find(parent, a);
    let mut rb = atomic_find(parent, b);
    while ra != rb {
        let (small, large) = if ra < rb { (ra, rb) } else { (rb, ra) };
        match parent[large as usize].compare_exchange(
            large,
            small,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return,
            Err(_) => {
                ra = atomic_find(parent, large);
                rb = atomic_find(parent, small);
            }
        }
    }
}

/// Component roots (smallest dense index per weakly connected class) of the
/// fragment's local graph, computed with the concurrent union-find when the
/// pool has more than one thread. Bit-identical to the sequential pass for
/// any thread count: both label a vertex with the minimum of its class.
fn local_components(pool: &ThreadPool, g: &CsrGraph<(), f64>) -> Vec<u32> {
    let n = g.num_vertices();
    if pool.threads() <= 1 || n <= CHUNK {
        let mut uf = DenseUnionFind::new(n);
        for u in 0..n as u32 {
            for &w in g.out_neighbors_dense(u) {
                uf.union(u, w);
            }
        }
        return (0..n as u32).map(|i| uf.find(i)).collect();
    }
    let parent: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let parent_ref: &[AtomicU32] = &parent;
    let sweep = move |ci: usize| {
        let start = ci * CHUNK;
        let end = (start + CHUNK).min(n);
        for u in start..end {
            for &w in g.out_neighbors_dense(u as u32) {
                atomic_unite(parent_ref, u as u32, w);
            }
        }
    };
    pool.run(num_chunks(n), &sweep);
    let mut comp = vec![0u32; n];
    for_each_slice_chunk(pool, &mut comp, |start, window| {
        for (off, slot) in window.iter_mut().enumerate() {
            *slot = atomic_find(parent_ref, (start + off) as u32);
        }
    });
    comp
}

/// Per-fragment partial state: the component label (smallest known global id)
/// of every local vertex, keyed by the fragment's dense indices.
#[derive(Debug, Clone, Default)]
pub struct CcPartial {
    labels: VertexDenseMap<VertexId>,
    /// Global ids aligned with `labels`, for Assemble.
    vertex_ids: Vec<VertexId>,
    /// Root dense index of each vertex's *local* component, fixed at PEval
    /// (the fragment graph never changes during a run).
    comp: Vec<u32>,
    /// Current label per root slot (only entries named by `comp` are live).
    comp_label: Vec<VertexId>,
}

/// The CC PIE program.
#[derive(Debug, Clone, Copy, Default)]
pub struct CcProgram;

impl CcProgram {
    fn publish_borders(
        fragment: &Fragment<(), f64>,
        labels: &VertexDenseMap<VertexId>,
        ctx: &mut PieContext<VertexId>,
    ) {
        // Position-addressed: an indexed compare per border vertex.
        for (pos, &i) in fragment.border_dense_indices().iter().enumerate() {
            ctx.update_at(pos as u32, labels[i]);
        }
    }
}

impl PieProgram for CcProgram {
    type Query = CcQuery;
    type VertexData = ();
    type EdgeData = f64;
    type Value = VertexId;
    type Partial = CcPartial;
    type Output = HashMap<VertexId, VertexId>;

    fn peval(
        &self,
        _query: &CcQuery,
        fragment: &Fragment<(), f64>,
        ctx: &mut PieContext<VertexId>,
    ) -> CcPartial {
        // Union-find over the local edges, entirely on dense indices —
        // concurrent min-hooking when the context pool has threads to spare.
        let pool = std::sync::Arc::clone(ctx.pool());
        let g = &fragment.graph;
        let n = g.num_vertices();
        let comp = local_components(&pool, g);
        // Dense indices ascend with global ids, so the root's id is the
        // smallest global id of the class.
        let comp_label: Vec<VertexId> = (0..n as u32).map(|i| g.vertex_of(i)).collect();
        let labels = VertexDenseMap::from_fn(n, |i| comp_label[comp[i as usize] as usize]);
        Self::publish_borders(fragment, &labels, ctx);
        CcPartial {
            labels,
            vertex_ids: g.vertex_ids().to_vec(),
            comp,
            comp_label,
        }
    }

    fn inceval(
        &self,
        _query: &CcQuery,
        fragment: &Fragment<(), f64>,
        partial: &mut CcPartial,
        messages: &[(VertexId, VertexId)],
        ctx: &mut PieContext<VertexId>,
    ) {
        // Labels are component-uniform after PEval, so a message for any
        // vertex of a class lowers the whole class: fold it into the root's
        // slot and, if anything moved, rebuild the flat label array in O(n)
        // instead of re-propagating along edges.
        let g = &fragment.graph;
        let mut touched = false;
        for &(v, label) in messages {
            if let Some(i) = g.dense_index(v) {
                let r = partial.comp[i as usize] as usize;
                if label < partial.comp_label[r] {
                    partial.comp_label[r] = label;
                    touched = true;
                }
            }
        }
        if !touched {
            return;
        }
        let pool = std::sync::Arc::clone(ctx.pool());
        let comp = &partial.comp;
        let comp_label = &partial.comp_label;
        for_each_slice_chunk(&pool, partial.labels.as_mut_slice(), |start, window| {
            for (off, slot) in window.iter_mut().enumerate() {
                *slot = comp_label[comp[start + off] as usize];
            }
        });
        Self::publish_borders(fragment, &partial.labels, ctx);
    }

    fn assemble(&self, partials: Vec<CcPartial>) -> HashMap<VertexId, VertexId> {
        let mut out: HashMap<VertexId, VertexId> = HashMap::new();
        for partial in partials {
            for (&v, &label) in partial.vertex_ids.iter().zip(partial.labels.as_slice()) {
                out.entry(v)
                    .and_modify(|l| *l = (*l).min(label))
                    .or_insert(label);
            }
        }
        out
    }

    fn aggregate(&self, a: &VertexId, b: &VertexId) -> VertexId {
        *a.min(b)
    }

    fn monotonic(&self, old: &VertexId, new: &VertexId) -> Option<bool> {
        Some(new <= old)
    }

    fn snapshot_partial(&self, partial: &CcPartial) -> Option<Vec<u8>> {
        use grape_core::Wire;
        let mut out = Vec::new();
        // Same layout as Vec<VertexId>: u32 length prefix, then elements.
        out.extend_from_slice(&(partial.labels.len() as u32).to_le_bytes());
        for label in partial.labels.as_slice() {
            label.encode(&mut out);
        }
        partial.vertex_ids.encode(&mut out);
        partial.comp.encode(&mut out);
        partial.comp_label.encode(&mut out);
        Some(out)
    }

    fn restore_partial(&self, bytes: &[u8]) -> Option<CcPartial> {
        use grape_core::{Wire, WireReader};
        let mut reader = WireReader::new(bytes);
        let labels = Vec::<VertexId>::decode(&mut reader).ok()?;
        let vertex_ids = Vec::<VertexId>::decode(&mut reader).ok()?;
        let comp = Vec::<u32>::decode(&mut reader).ok()?;
        let comp_label = Vec::<VertexId>::decode(&mut reader).ok()?;
        reader.finish().ok()?;
        Some(CcPartial {
            labels: VertexDenseMap::from_vec(labels),
            vertex_ids,
            comp,
            comp_label,
        })
    }

    fn incremental_eligible(&self, profile: &grape_core::MutationProfile) -> bool {
        // Insertions only merge components, so old labels stay valid upper
        // bounds in the min-label order. Deletions can split components,
        // which min-propagation cannot undo — those fall back cold.
        profile.insert_only()
    }

    fn seed_partial(
        &self,
        _query: &CcQuery,
        fragment: &Fragment<(), f64>,
        snapshot: &[u8],
        dirty: &[VertexId],
        _profile: &grape_core::MutationProfile,
        ctx: &mut PieContext<VertexId>,
    ) -> Option<CcPartial> {
        let old = self.restore_partial(snapshot)?;
        // The old converged labels — global minima of the old components —
        // fold straight into the new roots: under insert-only updates every
        // old component is a subset of a new one, so its old label is a valid
        // (often already final) upper bound. The warm run skips the
        // cross-fragment min propagation, which dominates the supersteps of a
        // cold run.
        let pool = std::sync::Arc::clone(ctx.pool());
        let g = &fragment.graph;
        let n = g.num_vertices();
        let comp = if old.vertex_ids == g.vertex_ids() {
            // Edge-only batches keep the fragment's dense-index space, so the
            // old canonicalized component map is a valid forest over the new
            // graph minus the inserted edges — and every inserted edge has a
            // dirty source, so folding the out-edges of the dirty vertices
            // into it reconnects exactly what changed. This skips the
            // whole-fragment union-find rebuild of PEval.
            let mut uf = DenseUnionFind::from_parents(old.comp.clone());
            for &v in dirty {
                if let Some(i) = g.dense_index(v) {
                    for &w in g.out_neighbors_dense(i) {
                        uf.union(i, w);
                    }
                }
            }
            (0..n as u32).map(|i| uf.find(i)).collect()
        } else {
            // The local vertex set moved (new mirrors or inserted vertices):
            // dense indices shifted, rebuild from the edges.
            local_components(&pool, g)
        };
        let mut comp_label: Vec<VertexId> = (0..n as u32).map(|i| g.vertex_of(i)).collect();
        for (&v, &label) in old.vertex_ids.iter().zip(old.labels.as_slice()) {
            if let Some(i) = g.dense_index(v) {
                let r = comp[i as usize] as usize;
                if label < comp_label[r] {
                    comp_label[r] = label;
                }
            }
        }
        let labels = VertexDenseMap::from_fn(n, |i| comp_label[comp[i as usize] as usize]);
        Self::publish_borders(fragment, &labels, ctx);
        Some(CcPartial {
            labels,
            vertex_ids: g.vertex_ids().to_vec(),
            comp,
            comp_label,
        })
    }

    fn name(&self) -> &str {
        "cc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::{EngineConfig, GrapeEngine};
    use grape_graph::generators::{barabasi_albert, erdos_renyi, road_network, RoadNetworkConfig};
    use grape_graph::GraphBuilder;
    use grape_partition::{BuiltinStrategy, HashPartitioner, Partitioner, RangePartitioner};

    #[test]
    fn partial_snapshot_roundtrips_bit_identically() {
        let g = barabasi_albert(150, 2, 17).unwrap();
        let assignment = HashPartitioner.partition(&g, 2);
        let frags = grape_partition::build_fragments(&g, &assignment);
        let program = CcProgram;
        let mut ctx = PieContext::new();
        let slots: Vec<u32> = (0..frags[1].border_vertices().len() as u32).collect();
        ctx.configure_borders(frags[1].border_vertices(), &slots);
        let partial = program.peval(&CcQuery, &frags[1], &mut ctx);
        let bytes = program.snapshot_partial(&partial).expect("cc snapshots");
        let back = program.restore_partial(&bytes).expect("restore");
        assert_eq!(partial.labels.as_slice(), back.labels.as_slice());
        assert_eq!(partial.vertex_ids, back.vertex_ids);
        assert_eq!(partial.comp, back.comp);
        assert_eq!(partial.comp_label, back.comp_label);
        assert!(program.restore_partial(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new();
        uf.union(5, 3);
        uf.union(3, 8);
        assert_eq!(uf.find(8), 3);
        assert_eq!(uf.find(5), 3);
        assert_eq!(uf.find(42), 42);
        assert_eq!(uf.find_readonly(8), 3);
        assert_eq!(uf.find_readonly(1_000), 1_000);
    }

    #[test]
    fn dense_union_find_basics() {
        let mut uf = DenseUnionFind::new(10);
        assert_eq!(uf.len(), 10);
        assert!(!uf.is_empty());
        uf.union(5, 3);
        uf.union(3, 8);
        assert_eq!(uf.find(8), 3);
        assert_eq!(uf.find(5), 3);
        assert_eq!(uf.find(9), 9);
        // The smallest index always wins the root.
        uf.union(8, 0);
        assert_eq!(uf.find(5), 0);
        assert!(DenseUnionFind::new(0).is_empty());
    }

    #[test]
    fn dense_and_hash_union_find_agree() {
        let g = erdos_renyi(120, 0.03, 13).unwrap();
        let reference = sequential_cc(&g);
        let n = g.num_vertices();
        let mut uf = DenseUnionFind::new(n);
        for u in 0..n as u32 {
            for &w in g.out_neighbors_dense(u) {
                uf.union(u, w);
            }
        }
        for u in 0..n as u32 {
            assert_eq!(g.vertex_of(uf.find(u)), reference[&g.vertex_of(u)]);
        }
    }

    #[test]
    fn sequential_cc_labels_by_min_id() {
        let mut b = GraphBuilder::<(), ()>::new();
        b.add_edge(4, 2, ());
        b.add_edge(2, 9, ());
        b.add_edge(7, 8, ());
        let g = b.build().unwrap();
        let cc = sequential_cc(&g);
        assert_eq!(cc[&4], 2);
        assert_eq!(cc[&9], 2);
        assert_eq!(cc[&7], 7);
        assert_eq!(cc[&8], 7);
    }

    fn check_against_reference(g: &CsrGraph<(), f64>, k: usize, strategy: BuiltinStrategy) {
        let expected = sequential_cc(g);
        let assignment = strategy.partition(g, k);
        let engine = GrapeEngine::new(CcProgram).with_config(EngineConfig {
            check_monotonicity: true,
            ..Default::default()
        });
        let result = engine.run_on_graph(&CcQuery, g, &assignment).unwrap();
        for v in g.vertices() {
            assert_eq!(result.output[&v], expected[&v], "vertex {v}");
        }
        assert_eq!(result.stats.monotonicity_violations, 0);
    }

    #[test]
    fn pie_cc_matches_reference_on_random_graphs() {
        check_against_reference(
            &erdos_renyi(300, 0.01, 5).unwrap(),
            4,
            BuiltinStrategy::Hash,
        );
        check_against_reference(
            &barabasi_albert(400, 3, 6).unwrap(),
            6,
            BuiltinStrategy::Ldg,
        );
    }

    #[test]
    fn pie_cc_matches_reference_on_road_network() {
        let g = road_network(
            RoadNetworkConfig {
                width: 20,
                height: 20,
                removal_prob: 0.15,
                ..Default::default()
            },
            31,
        )
        .unwrap();
        check_against_reference(&g, 8, BuiltinStrategy::MetisLike);
    }

    #[test]
    fn many_small_components() {
        // 50 disjoint edges -> 50 components.
        let mut b = GraphBuilder::<(), f64>::new();
        for i in 0..50u64 {
            b.add_edge(2 * i, 2 * i + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = HashPartitioner.partition(&g, 5);
        let result = GrapeEngine::new(CcProgram)
            .run_on_graph(&CcQuery, &g, &assignment)
            .unwrap();
        let distinct: std::collections::HashSet<_> = result.output.values().collect();
        assert_eq!(distinct.len(), 50);
        for i in 0..50u64 {
            assert_eq!(result.output[&(2 * i)], 2 * i);
            assert_eq!(result.output[&(2 * i + 1)], 2 * i);
        }
    }

    #[test]
    fn chain_across_many_fragments_converges() {
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..100u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = RangePartitioner.partition(&g, 10);
        let result = GrapeEngine::new(CcProgram)
            .run_on_graph(&CcQuery, &g, &assignment)
            .unwrap();
        assert!(result.output.values().all(|&l| l == 0));
        // Label 0 must hop across 9 fragment boundaries one superstep at a
        // time, plus the PEval round and a final quiescent round.
        assert!(result.stats.supersteps >= 10);
    }

    #[test]
    fn parallel_union_find_matches_sequential_roots() {
        let g = barabasi_albert(1500, 2, 17).unwrap();
        let n = g.num_vertices();
        let mut uf = DenseUnionFind::new(n);
        for u in 0..n as u32 {
            for &w in g.out_neighbors_dense(u) {
                uf.union(u, w);
            }
        }
        let expected: Vec<u32> = (0..n as u32).map(|i| uf.find(i)).collect();
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(local_components(&pool, &g), expected, "threads={threads}");
        }
    }

    #[test]
    fn cc_is_bit_identical_across_thread_counts() {
        use grape_core::par::ThreadCount;
        let g = erdos_renyi(600, 0.008, 23).unwrap();
        let assignment = HashPartitioner.partition(&g, 4);
        let run = |threads: u32| {
            GrapeEngine::new(CcProgram)
                .with_config(EngineConfig {
                    threads_per_worker: ThreadCount::Fixed(threads),
                    ..Default::default()
                })
                .run_on_graph(&CcQuery, &g, &assignment)
                .unwrap()
        };
        let reference = run(1);
        for threads in [2u32, 4, 8] {
            let result = run(threads);
            assert_eq!(result.output, reference.output, "threads={threads}");
            assert_eq!(result.stats.supersteps, reference.stats.supersteps);
            assert_eq!(result.stats.messages, reference.stats.messages);
        }
    }

    #[test]
    fn program_declarations() {
        assert_eq!(CcProgram.aggregate(&7, &3), 3);
        assert_eq!(CcProgram.monotonic(&7, &3), Some(true));
        assert_eq!(CcProgram.monotonic(&3, &7), Some(false));
        assert_eq!(CcProgram.name(), "cc");
    }
}
