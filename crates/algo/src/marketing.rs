//! Social-media marketing with graph-pattern association rules (GPARs) —
//! the application demonstrated in Fig. 4 of the paper.
//!
//! A GPAR `Q(x, y) ⇒ p(x, y)` says: when the topological condition `Q` holds
//! around persons `x` and entity `y`, then `x` is likely to be associated
//! with `y` through predicate `p` (e.g. *buy*). The demo's Example 2 rule is:
//!
//! > if, among the people followed by `x`, at least 80 % recommend the
//! > product and nobody gives it a bad rating, then recommend the product to
//! > `x`.
//!
//! Two layers are provided:
//!
//! * [`Gpar`] — a generic rule (pattern + consequent) whose support and
//!   confidence are computed with the [`crate::subiso`] matcher; used when a
//!   rule is an arbitrary pattern.
//! * [`MarketingProgram`] — a PIE program specialised to the Fig. 4 rule that
//!   scales to large social graphs: PEval computes each person's
//!   recommend/bad-rating status locally, the statuses of border persons are
//!   the update parameters (aggregate = bitwise OR), and IncEval refreshes
//!   the candidate scores of persons whose followees live on other
//!   fragments. The output is the list of potential customers ranked by
//!   confidence, exactly what the demo's result panel shows.

use crate::subiso::sequential_subiso;
use grape_core::{Fragment, PieContext, PieProgram, VertexId};
use grape_graph::labels::{LabeledVertex, PatternGraph};
use grape_graph::{LabeledGraph, VertexDenseMap};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Generic GPARs
// ---------------------------------------------------------------------------

/// A graph-pattern association rule `Q(x, y) ⇒ p(x, y)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Gpar {
    /// The antecedent pattern. Pattern vertex `x_index` plays the role of
    /// `x`, `y_index` the role of `y`.
    pub pattern: PatternGraph,
    /// Position of the designated vertex `x` in the pattern.
    pub x_index: usize,
    /// Position of the designated vertex `y` in the pattern.
    pub y_index: usize,
    /// The consequent relation `p` (an edge type such as `"buys"`).
    pub consequent: String,
}

/// Support/confidence measurement of a GPAR on a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GparStats {
    /// Number of distinct `(x, y)` pairs satisfying the antecedent.
    pub support_q: usize,
    /// Number of those pairs that also satisfy the consequent.
    pub support_pq: usize,
    /// `support_pq / support_q` (0 when the antecedent never holds).
    pub confidence: f64,
}

impl Gpar {
    /// Creates a rule.
    pub fn new(
        pattern: PatternGraph,
        x_index: usize,
        y_index: usize,
        consequent: impl Into<String>,
    ) -> Self {
        Self {
            pattern,
            x_index,
            y_index,
            consequent: consequent.into(),
        }
    }

    /// Evaluates support and confidence of the rule on `graph` using the
    /// sequential SubIso matcher.
    pub fn evaluate(&self, graph: &LabeledGraph) -> GparStats {
        let matches = sequential_subiso(graph, &self.pattern);
        let mut pairs: std::collections::HashSet<(VertexId, VertexId)> =
            std::collections::HashSet::new();
        for m in &matches {
            pairs.insert((m[self.x_index], m[self.y_index]));
        }
        let support_q = pairs.len();
        let support_pq = pairs
            .iter()
            .filter(|(x, y)| {
                graph
                    .out_edges(*x)
                    .any(|(d, rel)| d == *y && rel == &self.consequent)
            })
            .count();
        GparStats {
            support_q,
            support_pq,
            confidence: if support_q == 0 {
                0.0
            } else {
                support_pq as f64 / support_q as f64
            },
        }
    }
}

// ---------------------------------------------------------------------------
// The Fig. 4 marketing query as a PIE program
// ---------------------------------------------------------------------------

/// The marketing query of Example 2.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketingQuery {
    /// The product being promoted.
    pub product: VertexId,
    /// Minimum fraction of followees that must recommend the product.
    pub min_recommend_ratio: f64,
    /// Minimum number of followees for the ratio to be meaningful.
    pub min_followees: usize,
}

impl MarketingQuery {
    /// Creates the Example 2 query (80 % threshold, at least 2 followees).
    pub fn new(product: VertexId) -> Self {
        Self {
            product,
            min_recommend_ratio: 0.8,
            min_followees: 2,
        }
    }
}

/// A potential customer suggested by the rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Prospect {
    /// The person to target.
    pub person: VertexId,
    /// Fraction of their followees recommending the product.
    pub recommend_ratio: f64,
    /// Number of followees considered.
    pub followees: usize,
}

/// Bit flags describing one person's relation to the product.
const FLAG_RECOMMENDS: u8 = 0b001;
const FLAG_RATES_BAD: u8 = 0b010;
const FLAG_BUYS: u8 = 0b100;

fn product_flags(
    graph: &grape_graph::CsrGraph<LabeledVertex, String>,
    person: VertexId,
    product: VertexId,
) -> u8 {
    let mut flags = 0u8;
    for (d, rel) in graph.out_edges(person) {
        if d != product {
            continue;
        }
        match rel.as_str() {
            "recommends" => flags |= FLAG_RECOMMENDS,
            "rates_bad" => flags |= FLAG_RATES_BAD,
            "buys" => flags |= FLAG_BUYS,
            _ => {}
        }
    }
    flags
}

/// Sequential evaluation of the marketing rule — the reference.
pub fn sequential_marketing(graph: &LabeledGraph, query: &MarketingQuery) -> Vec<Prospect> {
    let flags: HashMap<VertexId, u8> = graph
        .vertices()
        .map(|v| (v, product_flags(graph, v, query.product)))
        .collect();
    let mut prospects = Vec::new();
    for x in graph.vertices() {
        let Some(data) = graph.vertex_data(x) else {
            continue;
        };
        if data.label.0 != "person" {
            continue;
        }
        // Skip people who already bought or already dislike the product.
        if flags[&x] & (FLAG_BUYS | FLAG_RATES_BAD) != 0 {
            continue;
        }
        let followees: Vec<VertexId> = graph
            .out_edges(x)
            .filter(|(_, rel)| rel.as_str() == "follows")
            .map(|(d, _)| d)
            .collect();
        if followees.len() < query.min_followees {
            continue;
        }
        let recommends = followees
            .iter()
            .filter(|f| flags.get(f).copied().unwrap_or(0) & FLAG_RECOMMENDS != 0)
            .count();
        let any_bad = followees
            .iter()
            .any(|f| flags.get(f).copied().unwrap_or(0) & FLAG_RATES_BAD != 0);
        let ratio = recommends as f64 / followees.len() as f64;
        if !any_bad && ratio >= query.min_recommend_ratio {
            prospects.push(Prospect {
                person: x,
                recommend_ratio: ratio,
                followees: followees.len(),
            });
        }
    }
    sort_prospects(&mut prospects);
    prospects
}

fn sort_prospects(prospects: &mut [Prospect]) {
    prospects.sort_by(|a, b| {
        b.recommend_ratio
            .partial_cmp(&a.recommend_ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.followees.cmp(&a.followees))
            .then_with(|| a.person.cmp(&b.person))
    });
}

/// Per-fragment partial state. The product flags live in a flat per-vertex
/// array keyed by the local graph's dense indices — the rescoring loops over
/// followees never touch a `HashMap`.
#[derive(Debug, Clone, Default)]
pub struct MarketingPartial {
    /// Product flags of every local vertex, keyed by dense index (mirrors
    /// get theirs via messages).
    flags: VertexDenseMap<u8>,
    /// Prospects found among this fragment's inner persons.
    prospects: Vec<Prospect>,
}

/// The marketing PIE program.
#[derive(Debug, Clone, Copy, Default)]
pub struct MarketingProgram;

impl MarketingProgram {
    /// Product flags of the local vertex at dense index `i`, scanned over the
    /// flat CSR neighbour/relation slices.
    fn dense_product_flags(
        graph: &grape_graph::CsrGraph<LabeledVertex, String>,
        i: u32,
        product: Option<u32>,
    ) -> u8 {
        let Some(product) = product else {
            // The product is not in this fragment, so no local edge can
            // reach it.
            return 0;
        };
        let mut flags = 0u8;
        for (&d, rel) in graph
            .out_neighbors_dense(i)
            .iter()
            .zip(graph.out_edge_data_dense(i))
        {
            if d != product {
                continue;
            }
            match rel.as_str() {
                "recommends" => flags |= FLAG_RECOMMENDS,
                "rates_bad" => flags |= FLAG_RATES_BAD,
                "buys" => flags |= FLAG_BUYS,
                _ => {}
            }
        }
        flags
    }

    fn rescore(
        query: &MarketingQuery,
        fragment: &Fragment<LabeledVertex, String>,
        partial: &mut MarketingPartial,
    ) {
        let g = &fragment.graph;
        let mut prospects = Vec::new();
        let mut followees: Vec<u32> = Vec::new();
        for (&x, &xi) in fragment
            .inner_vertices()
            .iter()
            .zip(fragment.inner_dense_indices())
        {
            let Some(data) = g.vertex_data(x) else {
                continue;
            };
            if data.label.0 != "person" {
                continue;
            }
            let own = partial.flags[xi];
            if own & (FLAG_BUYS | FLAG_RATES_BAD) != 0 {
                continue;
            }
            followees.clear();
            followees.extend(
                g.out_neighbors_dense(xi)
                    .iter()
                    .zip(g.out_edge_data_dense(xi))
                    .filter(|(_, rel)| rel.as_str() == "follows")
                    .map(|(&d, _)| d),
            );
            if followees.len() < query.min_followees {
                continue;
            }
            let recommends = followees
                .iter()
                .filter(|&&f| partial.flags[f] & FLAG_RECOMMENDS != 0)
                .count();
            let any_bad = followees
                .iter()
                .any(|&f| partial.flags[f] & FLAG_RATES_BAD != 0);
            let ratio = recommends as f64 / followees.len() as f64;
            if !any_bad && ratio >= query.min_recommend_ratio {
                prospects.push(Prospect {
                    person: x,
                    recommend_ratio: ratio,
                    followees: followees.len(),
                });
            }
        }
        sort_prospects(&mut prospects);
        partial.prospects = prospects;
    }
}

impl PieProgram for MarketingProgram {
    type Query = MarketingQuery;
    type VertexData = LabeledVertex;
    type EdgeData = String;
    type Value = u8;
    type Partial = MarketingPartial;
    type Output = Vec<Prospect>;

    fn peval(
        &self,
        query: &MarketingQuery,
        fragment: &Fragment<LabeledVertex, String>,
        ctx: &mut PieContext<u8>,
    ) -> MarketingPartial {
        let g = &fragment.graph;
        // Product flags of inner vertices are authoritative (every out-edge
        // of an inner vertex is local).
        let mut partial = MarketingPartial {
            flags: VertexDenseMap::for_graph(g, 0),
            prospects: Vec::new(),
        };
        let product = g.dense_index(query.product);
        for &i in fragment.inner_dense_indices() {
            partial.flags[i] = Self::dense_product_flags(g, i, product);
        }
        // Publish the flags of inner border persons so fragments that follow
        // them from afar can score their candidates.
        for (&pos, &i) in fragment
            .mirrored_inner_border_positions()
            .iter()
            .zip(fragment.mirrored_inner_dense_indices())
        {
            ctx.update_at(pos, partial.flags[i]);
        }
        Self::rescore(query, fragment, &mut partial);
        partial
    }

    fn inceval(
        &self,
        query: &MarketingQuery,
        fragment: &Fragment<LabeledVertex, String>,
        partial: &mut MarketingPartial,
        messages: &[(VertexId, u8)],
        ctx: &mut PieContext<u8>,
    ) {
        let mut changed = false;
        for &(v, flags) in messages {
            // Translate once at the boundary through the border tables (no
            // hashing); only mirror flags can change.
            let Some(pos) = fragment.border_position(v) else {
                continue;
            };
            let i = fragment.border_dense_indices()[pos as usize];
            if !fragment.is_outer_dense(i) {
                continue;
            }
            let entry = &mut partial.flags[i];
            let merged = *entry | flags;
            if merged != *entry {
                *entry = merged;
                changed = true;
            }
        }
        if !changed {
            return;
        }
        Self::rescore(query, fragment, partial);
        // Flags of inner vertices never change after PEval, so nothing new is
        // published; the ctx is only consulted for completeness.
        let _ = ctx;
    }

    fn assemble(&self, partials: Vec<MarketingPartial>) -> Vec<Prospect> {
        let mut all: Vec<Prospect> = partials.into_iter().flat_map(|p| p.prospects).collect();
        sort_prospects(&mut all);
        all
    }

    fn aggregate(&self, a: &u8, b: &u8) -> u8 {
        a | b
    }

    fn monotonic(&self, old: &u8, new: &u8) -> Option<bool> {
        Some(new & old == *old)
    }

    fn snapshot_partial(&self, partial: &MarketingPartial) -> Option<Vec<u8>> {
        use grape_core::Wire;
        let mut out = Vec::new();
        // Same layout as Vec<u8>: u32 length prefix, then elements.
        out.extend_from_slice(&(partial.flags.len() as u32).to_le_bytes());
        for flag in partial.flags.as_slice() {
            flag.encode(&mut out);
        }
        (partial.prospects.len() as u32).encode(&mut out);
        for p in &partial.prospects {
            (p.person, p.recommend_ratio, p.followees).encode(&mut out);
        }
        Some(out)
    }

    fn restore_partial(&self, bytes: &[u8]) -> Option<MarketingPartial> {
        use grape_core::{Wire, WireReader};
        let mut reader = WireReader::new(bytes);
        let flags = Vec::<u8>::decode(&mut reader).ok()?;
        let prospects = Vec::<(VertexId, f64, usize)>::decode(&mut reader)
            .ok()?
            .into_iter()
            .map(|(person, recommend_ratio, followees)| Prospect {
                person,
                recommend_ratio,
                followees,
            })
            .collect();
        reader.finish().ok()?;
        Some(MarketingPartial {
            flags: VertexDenseMap::from_vec(flags),
            prospects,
        })
    }

    fn name(&self) -> &str {
        "gpar-marketing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::{EngineConfig, GrapeEngine};
    use grape_graph::generators::{labeled_social, SocialGraphConfig};
    use grape_graph::labels::lv;
    use grape_graph::types::EdgeRecord;
    use grape_partition::BuiltinStrategy;

    /// Build the Fig. 4 scenario by hand: person 0 follows 1, 2, 3; persons
    /// 1-3 all recommend product 100; person 4 follows 5 and 6 but 6 rates
    /// the product badly; person 7 already bought it.
    fn fig4_graph() -> LabeledGraph {
        let vs = vec![
            lv(0, "person", &[]),
            lv(1, "person", &[]),
            lv(2, "person", &[]),
            lv(3, "person", &[]),
            lv(4, "person", &[]),
            lv(5, "person", &[]),
            lv(6, "person", &[]),
            lv(7, "person", &[]),
            lv(100, "product", &["phone"]),
        ];
        let mut es = vec![
            EdgeRecord::new(0, 1, "follows".to_string()),
            EdgeRecord::new(0, 2, "follows".to_string()),
            EdgeRecord::new(0, 3, "follows".to_string()),
            EdgeRecord::new(1, 100, "recommends".to_string()),
            EdgeRecord::new(2, 100, "recommends".to_string()),
            EdgeRecord::new(3, 100, "recommends".to_string()),
            EdgeRecord::new(4, 5, "follows".to_string()),
            EdgeRecord::new(4, 6, "follows".to_string()),
            EdgeRecord::new(5, 100, "recommends".to_string()),
            EdgeRecord::new(6, 100, "rates_bad".to_string()),
            EdgeRecord::new(7, 1, "follows".to_string()),
            EdgeRecord::new(7, 2, "follows".to_string()),
            EdgeRecord::new(7, 100, "buys".to_string()),
        ];
        es.push(EdgeRecord::new(5, 4, "follows".to_string()));
        LabeledGraph::from_records(vs, es, true).unwrap()
    }

    #[test]
    fn sequential_marketing_identifies_the_right_prospect() {
        let g = fig4_graph();
        let prospects = sequential_marketing(&g, &MarketingQuery::new(100));
        // Person 0: 3/3 followees recommend, nobody rates badly -> prospect.
        // Person 4: a followee rates badly -> excluded.
        // Person 7: already bought -> excluded.
        let people: Vec<VertexId> = prospects.iter().map(|p| p.person).collect();
        assert_eq!(people, vec![0]);
        assert!((prospects[0].recommend_ratio - 1.0).abs() < 1e-9);
        assert_eq!(prospects[0].followees, 3);
    }

    #[test]
    fn threshold_and_minimum_followee_count_are_respected() {
        let g = fig4_graph();
        // Raise the bar to 3 followees: person 0 still qualifies.
        let q = MarketingQuery {
            product: 100,
            min_recommend_ratio: 0.8,
            min_followees: 4,
        };
        assert!(sequential_marketing(&g, &q).is_empty());
        // Lower the ratio: person 4 is still excluded because of the bad
        // rating, not the ratio.
        let q = MarketingQuery {
            product: 100,
            min_recommend_ratio: 0.1,
            min_followees: 1,
        };
        let people: Vec<VertexId> = sequential_marketing(&g, &q)
            .iter()
            .map(|p| p.person)
            .collect();
        assert!(people.contains(&0));
        assert!(!people.contains(&4));
        assert!(!people.contains(&7));
    }

    #[test]
    fn pie_marketing_matches_sequential_on_generated_social_graph() {
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 400,
                num_products: 6,
                recommend_prob: 0.5,
                bad_rating_prob: 0.03,
                ..Default::default()
            },
            55,
        )
        .unwrap();
        let product = 400; // first product vertex
        let query = MarketingQuery {
            product,
            min_recommend_ratio: 0.6,
            min_followees: 2,
        };
        let reference = sequential_marketing(&g, &query);
        for strategy in [BuiltinStrategy::Hash, BuiltinStrategy::MetisLike] {
            let assignment = strategy.partition(&g, 4);
            let engine = GrapeEngine::new(MarketingProgram).with_config(EngineConfig {
                check_monotonicity: true,
                ..Default::default()
            });
            let result = engine.run_on_graph(&query, &g, &assignment).unwrap();
            assert_eq!(
                result.output, reference,
                "strategy {strategy:?} must reproduce the sequential prospect list"
            );
            assert_eq!(result.stats.monotonicity_violations, 0);
        }
    }

    #[test]
    fn pie_marketing_needs_at_most_two_evaluation_rounds() {
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 200,
                num_products: 4,
                ..Default::default()
            },
            77,
        )
        .unwrap();
        let query = MarketingQuery::new(200);
        let assignment = BuiltinStrategy::Hash.partition(&g, 8);
        let result = GrapeEngine::new(MarketingProgram)
            .run_on_graph(&query, &g, &assignment)
            .unwrap();
        // PEval + one IncEval round with the mirror statuses + quiescence.
        assert!(result.stats.supersteps <= 3);
    }

    #[test]
    fn gpar_confidence_on_fig4_graph() {
        let g = fig4_graph();
        // Antecedent: person follows someone who recommends the product.
        let pattern = PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
            .edge_labeled(0, 1, "follows")
            .edge_labeled(1, 2, "recommends");
        let rule = Gpar::new(pattern, 0, 2, "buys");
        let stats = rule.evaluate(&g);
        // (x, y) pairs satisfying the antecedent: x in {0, 4, 5?, 7}: 0 and 7
        // follow recommenders of 100; 4 follows 5 who recommends 100.
        assert_eq!(stats.support_q, 3);
        // Only person 7 actually bought the product.
        assert_eq!(stats.support_pq, 1);
        assert!((stats.confidence - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn gpar_with_unsatisfied_antecedent_has_zero_confidence() {
        let g = fig4_graph();
        let pattern = PatternGraph::new(vec!["person".into(), "robot".into()]).edge(0, 1);
        let rule = Gpar::new(pattern, 0, 1, "buys");
        let stats = rule.evaluate(&g);
        assert_eq!(stats.support_q, 0);
        assert_eq!(stats.confidence, 0.0);
    }

    #[test]
    fn program_declarations() {
        let p = MarketingProgram;
        assert_eq!(p.aggregate(&0b001, &0b010), 0b011);
        assert_eq!(p.monotonic(&0b001, &0b011), Some(true));
        assert_eq!(p.monotonic(&0b011, &0b001), Some(false));
        assert_eq!(p.name(), "gpar-marketing");
        let q = MarketingQuery::new(5);
        assert_eq!(q.product, 5);
        assert!((q.min_recommend_ratio - 0.8).abs() < 1e-9);
    }
}
