//! Graph pattern matching via simulation (`Sim`), one of the registered
//! query classes of the demo.
//!
//! Graph simulation computes, for every pattern vertex `u`, the set of data
//! vertices `v` that can *simulate* it: `label(v) = label(u)` and for every
//! pattern edge `u → u'` there is a data edge `v → v'` (with a matching
//! relation type, when the pattern edge specifies one) such that `v'`
//! simulates `u'`. Unlike subgraph isomorphism, simulation is computable in
//! polynomial time and is the pattern-matching semantics GRAPE's
//! social-network analyses prefer.
//!
//! PIE formulation:
//!
//! * The candidate set of every data vertex is encoded as a **bitmask over
//!   pattern vertices** (`u64`; [`SimQuery::try_new`] rejects wider patterns
//!   with a typed error).
//! * **PEval** runs the sequential Henzinger–Henzinger–Kopke-style fixpoint
//!   on the fragment, treating mirror vertices optimistically (any
//!   label-compatible pattern vertex).
//! * The **update parameter** of a border vertex is its bitmask, *owned* by
//!   the fragment that holds its out-edges; masks only lose bits, so the
//!   computation is monotonic (aggregate = bitwise AND) and the Assurance
//!   Theorem applies.
//! * **IncEval** shrinks mirror masks with the received values and re-runs
//!   the local fixpoint.
//!
//! The per-fragment state is a flat [`VertexDenseMap<u64>`] keyed by the
//! local graph's dense CSR indices, and the refinement loop is a
//! bitset-driven worklist: when a vertex's mask shrinks, only its (eligible)
//! in-neighbours are re-examined, instead of re-scanning every vertex per
//! pass. The greatest simulation is a unique fixpoint, so the worklist order
//! cannot change the answer.

use grape_core::par::{map_chunks, ThreadPool};
use grape_core::{Fragment, PieContext, PieProgram, VertexId};
use grape_graph::labels::{LabeledVertex, PatternGraph};
use grape_graph::{CsrGraph, DenseBitset, VertexDenseMap};
use std::collections::HashSet;

/// The number of pattern vertices a simulation query can hold: masks are
/// `u64`, one bit per pattern vertex.
pub const MAX_PATTERN_WIDTH: usize = 64;

/// Why a [`SimQuery`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimQueryError {
    /// The pattern has more vertices than a `u64` mask has bits; shifting by
    /// the vertex index would overflow (panic in debug, silent wrap in
    /// release), so wide patterns are rejected up front.
    PatternTooWide {
        /// Number of vertices in the offending pattern.
        width: usize,
    },
    /// A pattern edge references a vertex outside `0..width`.
    InvalidPattern(String),
}

impl std::fmt::Display for SimQueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimQueryError::PatternTooWide { width } => write!(
                f,
                "simulation patterns are limited to {MAX_PATTERN_WIDTH} vertices \
                 (64 vertices per u64 mask), got {width}"
            ),
            SimQueryError::InvalidPattern(msg) => write!(f, "invalid pattern: {msg}"),
        }
    }
}

impl std::error::Error for SimQueryError {}

/// A graph-simulation query: a small pattern graph.
#[derive(Debug, Clone, PartialEq)]
pub struct SimQuery {
    /// The pattern; at most [`MAX_PATTERN_WIDTH`] vertices (masks are `u64`).
    pub pattern: PatternGraph,
}

impl SimQuery {
    /// Creates a query, validating the pattern width and edge endpoints.
    ///
    /// A pattern with more than [`MAX_PATTERN_WIDTH`] vertices is rejected
    /// with [`SimQueryError::PatternTooWide`]: the candidate masks are `u64`
    /// and `1 << u` for pattern vertex `u ≥ 64` would overflow the shift.
    pub fn try_new(pattern: PatternGraph) -> Result<Self, SimQueryError> {
        if pattern.num_vertices() > MAX_PATTERN_WIDTH {
            return Err(SimQueryError::PatternTooWide {
                width: pattern.num_vertices(),
            });
        }
        pattern
            .validate()
            .map_err(|e| SimQueryError::InvalidPattern(e.to_string()))?;
        Ok(Self { pattern })
    }

    /// Creates a query, validating the pattern.
    ///
    /// # Panics
    /// Panics if the pattern has more than 64 vertices or dangling edge
    /// endpoints — both indicate programmer error in query construction.
    /// Fallible callers should use [`SimQuery::try_new`].
    pub fn new(pattern: PatternGraph) -> Self {
        match Self::try_new(pattern) {
            Ok(query) => query,
            Err(e) => panic!("{e}"),
        }
    }
}

/// The match relation produced by simulation: for each pattern vertex, the
/// set of data vertices simulating it.
pub type SimMatches = Vec<HashSet<VertexId>>;

fn label_mask(pattern: &PatternGraph, data: &LabeledVertex) -> u64 {
    let mut mask = 0u64;
    for (u, label) in pattern.labels.iter().enumerate() {
        if *label == data.label {
            mask |= 1 << u;
        }
    }
    mask
}

/// The initial (label-only) candidate mask of every local vertex.
fn initial_masks(
    pattern: &PatternGraph,
    graph: &CsrGraph<LabeledVertex, String>,
) -> VertexDenseMap<u64> {
    VertexDenseMap::from_fn(graph.num_vertices(), |i| {
        label_mask(pattern, graph.vertex_data_at(i))
    })
}

/// Bitset-driven worklist refinement of the simulation masks.
///
/// `eligible` marks the vertices whose out-edges are fully known (inner
/// vertices of a fragment, or all vertices in the sequential case); only
/// those are refined — the masks of the rest (mirrors) act as fixed
/// optimistic input. `seeds` is the initial worklist; callers pass every
/// eligible vertex for a from-scratch fixpoint or just the vertices whose
/// mask was tightened externally for an incremental one. When a mask
/// shrinks, the vertex's eligible in-neighbours are re-queued (their witness
/// may have vanished), so a quiet superstep costs O(changed), not O(n).
///
/// The greatest simulation relation is a unique fixpoint of this monotone
/// operator, so the processing order cannot affect the result.
fn refine(
    pattern: &PatternGraph,
    graph: &CsrGraph<LabeledVertex, String>,
    masks: &mut VertexDenseMap<u64>,
    eligible: &DenseBitset,
    seeds: impl IntoIterator<Item = u32>,
) -> bool {
    debug_assert!(
        graph.has_reverse(),
        "sim::refine needs the reverse adjacency to drive its worklist"
    );
    let mut queued = DenseBitset::new(graph.num_vertices());
    let mut queue: Vec<u32> = Vec::new();
    for v in seeds {
        if eligible.contains(v) && !queued.contains(v) {
            queued.set(v);
            queue.push(v);
        }
    }
    let mut changed_any = false;
    while let Some(v) = queue.pop() {
        queued.clear(v);
        let current = masks[v];
        if current == 0 {
            continue;
        }
        let next = recompute_mask(pattern, graph, masks, v);
        if next != current {
            masks.set(v, next);
            changed_any = true;
            // Re-examine the vertices that may have used v as a witness.
            for &p in graph.in_neighbors_dense(v) {
                if eligible.contains(p) && !queued.contains(p) {
                    queued.set(p);
                    queue.push(p);
                }
            }
        }
    }
    changed_any
}

/// Recomputes the candidate mask of `v` from a frozen snapshot of all masks.
#[inline]
fn recompute_mask(
    pattern: &PatternGraph,
    graph: &CsrGraph<LabeledVertex, String>,
    snapshot: &VertexDenseMap<u64>,
    v: u32,
) -> u64 {
    let current = snapshot[v];
    if current == 0 {
        return 0;
    }
    let mut next = current;
    for u in 0..pattern.num_vertices() {
        if next & (1 << u) == 0 {
            continue;
        }
        for (u_child, relation) in pattern.out_edges(u) {
            let witnessed = graph.out_edges_dense(v).any(|(v_child, rel)| {
                relation.is_none_or(|r| r == rel) && snapshot[v_child] & (1 << u_child) != 0
            });
            if !witnessed {
                next &= !(1 << u);
                break;
            }
        }
    }
    next
}

/// Parallel sibling of [`refine`]: round-based worklist propagation through
/// the `grape_core::par` primitives. Each round recomputes every queued
/// vertex from a frozen snapshot of the masks (Jacobi style), applies the
/// shrunk masks in ascending order, and queues the eligible in-neighbours of
/// the changed vertices for the next round. The greatest simulation is the
/// unique fixpoint of this monotone operator, so the answer is bit-identical
/// to the sequential worklist for any thread count; on one thread this
/// delegates to [`refine`] outright.
fn refine_par(
    pool: &ThreadPool,
    pattern: &PatternGraph,
    graph: &CsrGraph<LabeledVertex, String>,
    masks: &mut VertexDenseMap<u64>,
    eligible: &DenseBitset,
    seeds: impl IntoIterator<Item = u32>,
) -> bool {
    if pool.threads() <= 1 {
        return refine(pattern, graph, masks, eligible, seeds);
    }
    debug_assert!(
        graph.has_reverse(),
        "sim::refine_par needs the reverse adjacency to drive its worklist"
    );
    let n = graph.num_vertices();
    let mut queued = DenseBitset::new(n);
    for v in seeds {
        if eligible.contains(v) {
            queued.set(v);
        }
    }
    let mut worklist: Vec<u32> = queued.iter_ones().collect();
    let mut changed_any = false;
    while !worklist.is_empty() {
        queued.clear_all();
        let snapshot: &VertexDenseMap<u64> = masks;
        let work_ref: &[u32] = &worklist;
        let updates = map_chunks(pool, worklist.len(), |range, out: &mut Vec<(u32, u64)>| {
            for &v in &work_ref[range] {
                let next = recompute_mask(pattern, graph, snapshot, v);
                if next != snapshot[v] {
                    out.push((v, next));
                }
            }
        });
        let mut next_work: Vec<u32> = Vec::new();
        for chunk in &updates {
            for &(v, next) in chunk {
                masks.set(v, next);
                changed_any = true;
                for &p in graph.in_neighbors_dense(v) {
                    if eligible.contains(p) && !queued.contains(p) {
                        queued.set(p);
                        next_work.push(p);
                    }
                }
            }
        }
        next_work.sort_unstable();
        worklist = next_work;
    }
    changed_any
}

/// A bitset with every vertex of `graph` marked eligible.
fn all_eligible(graph: &CsrGraph<LabeledVertex, String>) -> DenseBitset {
    let mut all = DenseBitset::new(graph.num_vertices());
    for i in 0..graph.num_vertices() as u32 {
        all.set(i);
    }
    all
}

/// Sequential graph simulation over a whole labeled graph — the reference
/// algorithm (and what a user would plug into PEval).
///
/// # Panics
/// Panics if the pattern is wider than [`MAX_PATTERN_WIDTH`] vertices; use
/// [`SimQuery::try_new`] to validate untrusted patterns first.
pub fn sequential_sim(
    graph: &CsrGraph<LabeledVertex, String>,
    pattern: &PatternGraph,
) -> SimMatches {
    assert!(
        pattern.num_vertices() <= MAX_PATTERN_WIDTH,
        "{}",
        SimQueryError::PatternTooWide {
            width: pattern.num_vertices()
        }
    );
    let mut masks = initial_masks(pattern, graph);
    let eligible = all_eligible(graph);
    refine(
        pattern,
        graph,
        &mut masks,
        &eligible,
        0..graph.num_vertices() as u32,
    );
    let mut out = vec![HashSet::new(); pattern.num_vertices()];
    for (v, &mask) in masks.iter_with(graph) {
        for (u, bucket) in out.iter_mut().enumerate() {
            if mask & (1 << u) != 0 {
                bucket.insert(v);
            }
        }
    }
    out
}

/// Per-fragment partial state: the bitmask of every local vertex, flat over
/// the local graph's dense indices.
#[derive(Debug, Clone, Default)]
pub struct SimPartial {
    masks: VertexDenseMap<u64>,
    /// Global ids of the inner vertices, aligned with `inner_dense`, so
    /// Assemble can translate without the fragments at hand.
    inner_ids: Vec<VertexId>,
    /// Dense indices of the inner vertices.
    inner_dense: Vec<u32>,
    /// Number of pattern vertices (needed by Assemble to size the result).
    pattern_width: usize,
}

/// The graph-simulation PIE program.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimProgram;

impl SimProgram {
    /// Publishes the authoritative mask of every inner border vertex so
    /// fragments holding it as a mirror can tighten their view.
    fn publish_borders(
        fragment: &Fragment<LabeledVertex, String>,
        partial: &SimPartial,
        ctx: &mut PieContext<u64>,
    ) {
        for (&pos, &i) in fragment
            .mirrored_inner_border_positions()
            .iter()
            .zip(fragment.mirrored_inner_dense_indices())
        {
            ctx.update_at(pos, partial.masks[i]);
        }
    }
}

impl PieProgram for SimProgram {
    type Query = SimQuery;
    type VertexData = LabeledVertex;
    type EdgeData = String;
    type Value = u64;
    type Partial = SimPartial;
    type Output = SimMatches;

    fn peval(
        &self,
        query: &SimQuery,
        fragment: &Fragment<LabeledVertex, String>,
        ctx: &mut PieContext<u64>,
    ) -> SimPartial {
        let g = &fragment.graph;
        let mut partial = SimPartial {
            masks: initial_masks(&query.pattern, g),
            inner_ids: fragment.inner_vertices().to_vec(),
            inner_dense: fragment.inner_dense_indices().to_vec(),
            pattern_width: query.pattern.num_vertices(),
        };
        let pool = std::sync::Arc::clone(ctx.pool());
        refine_par(
            &pool,
            &query.pattern,
            g,
            &mut partial.masks,
            fragment.inner_bitset(),
            fragment.inner_dense_indices().iter().copied(),
        );
        Self::publish_borders(fragment, &partial, ctx);
        partial
    }

    fn inceval(
        &self,
        query: &SimQuery,
        fragment: &Fragment<LabeledVertex, String>,
        partial: &mut SimPartial,
        messages: &[(VertexId, u64)],
        ctx: &mut PieContext<u64>,
    ) {
        let g = &fragment.graph;
        // Tighten mirror masks with the received values; translate once at
        // the boundary through the precomputed border tables (no hashing).
        let mut tightened: Vec<u32> = Vec::new();
        for &(v, mask) in messages {
            let Some(pos) = fragment.border_position(v) else {
                continue;
            };
            let i = fragment.border_dense_indices()[pos as usize];
            if !fragment.is_outer_dense(i) {
                continue;
            }
            let entry = &mut partial.masks[i];
            let next = *entry & mask;
            if next != *entry {
                *entry = next;
                tightened.push(i);
            }
        }
        if tightened.is_empty() {
            return;
        }
        // Only the in-neighbours of the tightened mirrors can lose a witness;
        // the worklist propagates from there.
        let seeds = tightened
            .iter()
            .flat_map(|&i| g.in_neighbors_dense(i).iter().copied());
        let pool = std::sync::Arc::clone(ctx.pool());
        refine_par(
            &pool,
            &query.pattern,
            g,
            &mut partial.masks,
            fragment.inner_bitset(),
            seeds,
        );
        Self::publish_borders(fragment, partial, ctx);
    }

    fn assemble(&self, partials: Vec<SimPartial>) -> SimMatches {
        // Merge the masks of inner vertices only (mirror masks may be stale
        // supersets); each vertex is inner to exactly one fragment.
        let width = partials.iter().map(|p| p.pattern_width).max().unwrap_or(0);
        let mut out = vec![HashSet::new(); width];
        for partial in &partials {
            for (&v, &i) in partial.inner_ids.iter().zip(&partial.inner_dense) {
                let mask = partial.masks[i];
                for (u, bucket) in out.iter_mut().enumerate() {
                    if mask & (1 << u) != 0 {
                        bucket.insert(v);
                    }
                }
            }
        }
        out
    }

    fn aggregate(&self, a: &u64, b: &u64) -> u64 {
        a & b
    }

    fn monotonic(&self, old: &u64, new: &u64) -> Option<bool> {
        Some(new & old == *new)
    }

    fn snapshot_partial(&self, partial: &SimPartial) -> Option<Vec<u8>> {
        use grape_core::Wire;
        let mut out = Vec::new();
        // Same layout as Vec<u64>: u32 length prefix, then elements.
        out.extend_from_slice(&(partial.masks.len() as u32).to_le_bytes());
        for mask in partial.masks.as_slice() {
            mask.encode(&mut out);
        }
        partial.inner_ids.encode(&mut out);
        partial.inner_dense.encode(&mut out);
        partial.pattern_width.encode(&mut out);
        Some(out)
    }

    fn restore_partial(&self, bytes: &[u8]) -> Option<SimPartial> {
        use grape_core::{Wire, WireReader};
        let mut reader = WireReader::new(bytes);
        let masks = Vec::<u64>::decode(&mut reader).ok()?;
        let inner_ids = Vec::<VertexId>::decode(&mut reader).ok()?;
        let inner_dense = Vec::<u32>::decode(&mut reader).ok()?;
        let pattern_width = usize::decode(&mut reader).ok()?;
        reader.finish().ok()?;
        Some(SimPartial {
            masks: VertexDenseMap::from_vec(masks),
            inner_ids,
            inner_dense,
            pattern_width,
        })
    }

    fn incremental_eligible(&self, profile: &grape_core::MutationProfile) -> bool {
        // The greatest simulation only shrinks when edges disappear, so the
        // old fixpoint is a valid superset to refine down from. Insertions
        // could *add* matches (grow masks), which the decreasing worklist
        // cannot do — those fall back cold.
        profile.delete_only()
    }

    fn seed_partial(
        &self,
        query: &SimQuery,
        fragment: &Fragment<LabeledVertex, String>,
        snapshot: &[u8],
        dirty: &[VertexId],
        _profile: &grape_core::MutationProfile,
        ctx: &mut PieContext<u64>,
    ) -> Option<SimPartial> {
        let old = self.restore_partial(snapshot)?;
        let g = &fragment.graph;
        // Mirrors restart at the optimistic label masks exactly like PEval —
        // owners re-publish their authoritative masks in round 1 — while
        // inner vertices resume from the old converged masks (by global id;
        // delete-only updates never add vertices). The greatest simulation of
        // the pruned graph is a subset of the old one, and the decreasing
        // worklist converges to it from any superset, so only the deletion
        // sites need a first look: everything else still has every witness
        // it had at the old fixpoint.
        let mut partial = SimPartial {
            masks: initial_masks(&query.pattern, g),
            inner_ids: fragment.inner_vertices().to_vec(),
            inner_dense: fragment.inner_dense_indices().to_vec(),
            pattern_width: query.pattern.num_vertices(),
        };
        let old_mask: std::collections::HashMap<VertexId, u64> = old
            .inner_ids
            .iter()
            .zip(&old.inner_dense)
            .map(|(&v, &i)| (v, old.masks[i]))
            .collect();
        for (&v, &i) in partial.inner_ids.iter().zip(&partial.inner_dense) {
            if let Some(&mask) = old_mask.get(&v) {
                partial.masks[i] = mask;
            }
        }
        let seeds: Vec<u32> = dirty.iter().filter_map(|&v| g.dense_index(v)).collect();
        let pool = std::sync::Arc::clone(ctx.pool());
        refine_par(
            &pool,
            &query.pattern,
            g,
            &mut partial.masks,
            fragment.inner_bitset(),
            seeds,
        );
        Self::publish_borders(fragment, &partial, ctx);
        Some(partial)
    }

    fn name(&self) -> &str {
        "sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::{EngineConfig, GrapeEngine};
    use grape_graph::generators::{labeled_social, SocialGraphConfig};
    use grape_graph::labels::lv;
    use grape_graph::types::EdgeRecord;
    use grape_graph::LabeledGraph;
    use grape_partition::BuiltinStrategy;

    /// person --follows--> person --recommends--> product
    fn chain_pattern() -> PatternGraph {
        PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
            .edge_labeled(0, 1, "follows")
            .edge_labeled(1, 2, "recommends")
    }

    fn tiny_graph() -> LabeledGraph {
        let vs = vec![
            lv(0, "person", &[]),
            lv(1, "person", &[]),
            lv(2, "product", &[]),
            lv(3, "person", &[]), // follows nobody who recommends
        ];
        let es = vec![
            EdgeRecord::new(0, 1, "follows".to_string()),
            EdgeRecord::new(1, 2, "recommends".to_string()),
            EdgeRecord::new(3, 0, "follows".to_string()),
        ];
        LabeledGraph::from_records(vs, es, true).unwrap()
    }

    #[test]
    fn sequential_sim_small_example() {
        let g = tiny_graph();
        let matches = sequential_sim(&g, &chain_pattern());
        // Pattern vertex 0 (a person following a recommender): only vertex 0
        // qualifies (3 follows 0, but 0 does not recommend anything).
        assert_eq!(matches[0], HashSet::from([0]));
        // Pattern vertex 1 (a person who recommends a product): vertex 1.
        assert_eq!(matches[1], HashSet::from([1]));
        // Pattern vertex 2 (a product): vertex 2.
        assert_eq!(matches[2], HashSet::from([2]));
    }

    #[test]
    fn unlabeled_pattern_edge_matches_any_relation() {
        let g = tiny_graph();
        let pattern = PatternGraph::new(vec!["person".into(), "person".into()]).edge(0, 1);
        let matches = sequential_sim(&g, &pattern);
        // Any person with an out-edge (of any relation) to a person: 0 and 3.
        assert_eq!(matches[0], HashSet::from([0, 3]));
    }

    #[test]
    fn empty_result_when_label_absent() {
        let g = tiny_graph();
        let pattern = PatternGraph::new(vec!["robot".into()]);
        let matches = sequential_sim(&g, &pattern);
        assert!(matches[0].is_empty());
    }

    fn equal_matches(a: &SimMatches, b: &SimMatches) -> bool {
        if a.len() != b.len() {
            return false;
        }
        a.iter().zip(b.iter()).all(|(x, y)| x == y)
    }

    #[test]
    fn pie_sim_matches_sequential_on_social_graph() {
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 300,
                num_products: 8,
                ..Default::default()
            },
            42,
        )
        .unwrap();
        let query = SimQuery::new(chain_pattern());
        let reference = sequential_sim(&g, &query.pattern);
        for strategy in [BuiltinStrategy::Hash, BuiltinStrategy::Fennel] {
            let assignment = strategy.partition(&g, 4);
            let engine = GrapeEngine::new(SimProgram).with_config(EngineConfig {
                check_monotonicity: true,
                ..Default::default()
            });
            let result = engine.run_on_graph(&query, &g, &assignment).unwrap();
            assert!(
                equal_matches(&result.output, &reference),
                "strategy {:?} diverges from the sequential result",
                strategy
            );
            assert_eq!(result.stats.monotonicity_violations, 0);
        }
    }

    #[test]
    fn pie_sim_single_fragment_equals_sequential() {
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 120,
                num_products: 4,
                ..Default::default()
            },
            7,
        )
        .unwrap();
        let query = SimQuery::new(chain_pattern());
        let reference = sequential_sim(&g, &query.pattern);
        let assignment = BuiltinStrategy::Hash.partition(&g, 1);
        let result = GrapeEngine::new(SimProgram)
            .run_on_graph(&query, &g, &assignment)
            .unwrap();
        assert!(equal_matches(&result.output, &reference));
        assert_eq!(result.stats.supersteps, 1);
    }

    #[test]
    fn sim_is_identical_across_thread_counts() {
        use grape_core::par::ThreadCount;
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 250,
                num_products: 6,
                ..Default::default()
            },
            19,
        )
        .unwrap();
        let query = SimQuery::new(chain_pattern());
        let assignment = BuiltinStrategy::Hash.partition(&g, 3);
        let run = |threads: u32| {
            GrapeEngine::new(SimProgram)
                .with_config(EngineConfig {
                    threads_per_worker: ThreadCount::Fixed(threads),
                    ..Default::default()
                })
                .run_on_graph(&query, &g, &assignment)
                .unwrap()
        };
        let reference = run(1);
        for threads in [2u32, 4, 8] {
            let result = run(threads);
            assert!(
                equal_matches(&result.output, &reference.output),
                "threads={threads} diverges"
            );
            assert_eq!(result.stats.supersteps, reference.stats.supersteps);
            assert_eq!(result.stats.messages, reference.stats.messages);
        }
    }

    #[test]
    #[should_panic(expected = "64 vertices")]
    fn oversized_pattern_is_rejected() {
        let labels = vec![grape_graph::VertexLabel::from("x"); 65];
        SimQuery::new(PatternGraph::new(labels));
    }

    #[test]
    fn oversized_pattern_yields_typed_error() {
        // Regression: a 65-vertex pattern used to reach `1 << 64` in
        // label_mask/refine — a shift overflow (panic in debug, silent wrap
        // in release). Width is now validated at query construction.
        let labels = vec![grape_graph::VertexLabel::from("x"); 65];
        let err = SimQuery::try_new(PatternGraph::new(labels)).unwrap_err();
        assert_eq!(err, SimQueryError::PatternTooWide { width: 65 });
        assert!(err.to_string().contains("64 vertices"));
        assert!(err.to_string().contains("65"));

        // A 64-vertex pattern is exactly at the limit and must be accepted
        // (bit 63 is a valid shift) — and must survive a refinement pass.
        let labels = vec![grape_graph::VertexLabel::from("person"); 64];
        let query = SimQuery::try_new(PatternGraph::new(labels).edge(62, 63)).unwrap();
        let g = tiny_graph();
        let matches = sequential_sim(&g, &query.pattern);
        assert_eq!(matches.len(), 64);
        // Persons in tiny_graph: 0, 1, 3. Pattern vertex 63 (the top mask
        // bit) is any person; 62 needs an out-edge to a person (0 → 1,
        // 3 → 0); edge-free pattern vertices match every person.
        assert_eq!(matches[63], HashSet::from([0, 1, 3]));
        assert_eq!(matches[62], HashSet::from([0, 3]));
        assert_eq!(matches[0], HashSet::from([0, 1, 3]));
    }

    #[test]
    fn invalid_pattern_edges_yield_typed_error() {
        let bad = PatternGraph::new(vec!["x".into()]).edge(0, 5);
        match SimQuery::try_new(bad) {
            Err(SimQueryError::InvalidPattern(_)) => {}
            other => panic!("expected InvalidPattern, got {other:?}"),
        }
    }

    #[test]
    fn program_declarations() {
        assert_eq!(SimProgram.aggregate(&0b1101, &0b1011), 0b1001);
        assert_eq!(SimProgram.monotonic(&0b111, &0b011), Some(true));
        assert_eq!(SimProgram.monotonic(&0b011, &0b111), Some(false));
        assert_eq!(SimProgram.name(), "sim");
    }
}
