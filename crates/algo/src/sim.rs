//! Graph pattern matching via simulation (`Sim`), one of the registered
//! query classes of the demo.
//!
//! Graph simulation computes, for every pattern vertex `u`, the set of data
//! vertices `v` that can *simulate* it: `label(v) = label(u)` and for every
//! pattern edge `u → u'` there is a data edge `v → v'` (with a matching
//! relation type, when the pattern edge specifies one) such that `v'`
//! simulates `u'`. Unlike subgraph isomorphism, simulation is computable in
//! polynomial time and is the pattern-matching semantics GRAPE's
//! social-network analyses prefer.
//!
//! PIE formulation:
//!
//! * The candidate set of every data vertex is encoded as a **bitmask over
//!   pattern vertices** (`u64`, patterns are small).
//! * **PEval** runs the sequential Henzinger–Henzinger–Kopke-style fixpoint
//!   on the fragment, treating mirror vertices optimistically (any
//!   label-compatible pattern vertex).
//! * The **update parameter** of a border vertex is its bitmask, *owned* by
//!   the fragment that holds its out-edges; masks only lose bits, so the
//!   computation is monotonic (aggregate = bitwise AND) and the Assurance
//!   Theorem applies.
//! * **IncEval** shrinks mirror masks with the received values and re-runs
//!   the local fixpoint.

use grape_core::{Fragment, PieContext, PieProgram, VertexId};
use grape_graph::labels::{LabeledVertex, PatternGraph};
use grape_graph::CsrGraph;
use std::collections::{HashMap, HashSet};

/// A graph-simulation query: a small pattern graph.
#[derive(Debug, Clone, PartialEq)]
pub struct SimQuery {
    /// The pattern; at most 64 vertices (masks are `u64`).
    pub pattern: PatternGraph,
}

impl SimQuery {
    /// Creates a query, validating the pattern.
    ///
    /// # Panics
    /// Panics if the pattern has more than 64 vertices or dangling edge
    /// endpoints — both indicate programmer error in query construction.
    pub fn new(pattern: PatternGraph) -> Self {
        assert!(
            pattern.num_vertices() <= 64,
            "simulation patterns are limited to 64 vertices"
        );
        pattern.validate().expect("pattern edges must be valid");
        Self { pattern }
    }
}

/// The match relation produced by simulation: for each pattern vertex, the
/// set of data vertices simulating it.
pub type SimMatches = Vec<HashSet<VertexId>>;

fn label_mask(pattern: &PatternGraph, data: &LabeledVertex) -> u64 {
    let mut mask = 0u64;
    for (u, label) in pattern.labels.iter().enumerate() {
        if *label == data.label {
            mask |= 1 << u;
        }
    }
    mask
}

/// One pass of the simulation-refinement loop over the given vertices.
/// `check_out_edges(v)` tells whether `v`'s out-edges are fully known (inner
/// vertices of a fragment, or all vertices in the sequential case).
fn refine(
    pattern: &PatternGraph,
    graph: &CsrGraph<LabeledVertex, String>,
    masks: &mut HashMap<VertexId, u64>,
    check: &dyn Fn(VertexId) -> bool,
) -> bool {
    let mut changed_any = false;
    let mut changed = true;
    while changed {
        changed = false;
        let vertices: Vec<VertexId> = masks.keys().copied().collect();
        for v in vertices {
            if !check(v) {
                continue;
            }
            let current = masks[&v];
            if current == 0 {
                continue;
            }
            let mut next = current;
            for u in 0..pattern.num_vertices() {
                if next & (1 << u) == 0 {
                    continue;
                }
                // Every pattern out-edge of u must be witnessed.
                for (u_child, relation) in pattern.out_edges(u) {
                    let witnessed = graph.out_edges(v).any(|(v_child, rel)| {
                        relation.is_none_or(|r| r == rel)
                            && masks.get(&v_child).copied().unwrap_or(0) & (1 << u_child) != 0
                    });
                    if !witnessed {
                        next &= !(1 << u);
                        break;
                    }
                }
            }
            if next != current {
                masks.insert(v, next);
                changed = true;
                changed_any = true;
            }
        }
    }
    changed_any
}

/// Sequential graph simulation over a whole labeled graph — the reference
/// algorithm (and what a user would plug into PEval).
pub fn sequential_sim(
    graph: &CsrGraph<LabeledVertex, String>,
    pattern: &PatternGraph,
) -> SimMatches {
    let mut masks: HashMap<VertexId, u64> = graph
        .vertices()
        .map(|v| {
            (
                v,
                label_mask(pattern, graph.vertex_data(v).expect("present")),
            )
        })
        .collect();
    refine(pattern, graph, &mut masks, &|_| true);
    collect_matches(pattern, &masks, None)
}

fn collect_matches(
    pattern: &PatternGraph,
    masks: &HashMap<VertexId, u64>,
    only: Option<&HashSet<VertexId>>,
) -> SimMatches {
    let mut out = vec![HashSet::new(); pattern.num_vertices()];
    for (&v, &mask) in masks {
        if let Some(filter) = only {
            if !filter.contains(&v) {
                continue;
            }
        }
        for (u, bucket) in out.iter_mut().enumerate() {
            if mask & (1 << u) != 0 {
                bucket.insert(v);
            }
        }
    }
    out
}

/// Per-fragment partial state: the bitmask of every local vertex.
#[derive(Debug, Clone, Default)]
pub struct SimPartial {
    masks: HashMap<VertexId, u64>,
    inner: HashSet<VertexId>,
    /// Number of pattern vertices (needed by Assemble to size the result).
    pattern_width: usize,
}

/// The graph-simulation PIE program.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimProgram;

impl PieProgram for SimProgram {
    type Query = SimQuery;
    type VertexData = LabeledVertex;
    type EdgeData = String;
    type Value = u64;
    type Partial = SimPartial;
    type Output = SimMatches;

    fn peval(
        &self,
        query: &SimQuery,
        fragment: &Fragment<LabeledVertex, String>,
        ctx: &mut PieContext<u64>,
    ) -> SimPartial {
        let mut masks: HashMap<VertexId, u64> = fragment
            .graph
            .vertices()
            .map(|v| {
                (
                    v,
                    label_mask(
                        &query.pattern,
                        fragment.graph.vertex_data(v).expect("present"),
                    ),
                )
            })
            .collect();
        let inner: HashSet<VertexId> = fragment.inner_vertices().iter().copied().collect();
        {
            let inner_ref = &inner;
            refine(&query.pattern, &fragment.graph, &mut masks, &|v| {
                inner_ref.contains(&v)
            });
        }
        // The owner of each inner border vertex publishes its (authoritative)
        // mask so fragments holding it as a mirror can tighten their view.
        for &v in fragment.inner_vertices() {
            if !fragment.mirrors_of(v).is_empty() {
                ctx.update(v, masks[&v]);
            }
        }
        SimPartial {
            masks,
            inner,
            pattern_width: query.pattern.num_vertices(),
        }
    }

    fn inceval(
        &self,
        query: &SimQuery,
        fragment: &Fragment<LabeledVertex, String>,
        partial: &mut SimPartial,
        messages: &[(VertexId, u64)],
        ctx: &mut PieContext<u64>,
    ) {
        let mut changed = false;
        for (v, mask) in messages {
            if fragment.is_outer(*v) {
                let entry = partial.masks.entry(*v).or_insert(u64::MAX);
                let tightened = *entry & *mask;
                if tightened != *entry {
                    *entry = tightened;
                    changed = true;
                }
            }
        }
        if !changed {
            return;
        }
        let inner_ref = &partial.inner;
        refine(&query.pattern, &fragment.graph, &mut partial.masks, &|v| {
            inner_ref.contains(&v)
        });
        for &v in fragment.inner_vertices() {
            if !fragment.mirrors_of(v).is_empty() {
                let value = partial.masks[&v];
                ctx.update(v, value);
            }
        }
    }

    fn assemble(&self, partials: Vec<SimPartial>) -> SimMatches {
        // Merge the masks of inner vertices only (mirror masks may be stale
        // supersets).
        let width = partials.iter().map(|p| p.pattern_width).max().unwrap_or(0);
        let mut merged: HashMap<VertexId, u64> = HashMap::new();
        for partial in &partials {
            for (&v, &mask) in &partial.masks {
                if partial.inner.contains(&v) {
                    merged.insert(v, mask);
                }
            }
        }
        let pattern_stub = PatternGraph::new(vec![Default::default(); width]);
        collect_matches(&pattern_stub, &merged, None)
    }

    fn aggregate(&self, a: &u64, b: &u64) -> u64 {
        a & b
    }

    fn monotonic(&self, old: &u64, new: &u64) -> Option<bool> {
        Some(new & old == *new)
    }

    fn name(&self) -> &str {
        "sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::{EngineConfig, GrapeEngine};
    use grape_graph::generators::{labeled_social, SocialGraphConfig};
    use grape_graph::labels::lv;
    use grape_graph::types::EdgeRecord;
    use grape_graph::LabeledGraph;
    use grape_partition::BuiltinStrategy;

    /// person --follows--> person --recommends--> product
    fn chain_pattern() -> PatternGraph {
        PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
            .edge_labeled(0, 1, "follows")
            .edge_labeled(1, 2, "recommends")
    }

    fn tiny_graph() -> LabeledGraph {
        let vs = vec![
            lv(0, "person", &[]),
            lv(1, "person", &[]),
            lv(2, "product", &[]),
            lv(3, "person", &[]), // follows nobody who recommends
        ];
        let es = vec![
            EdgeRecord::new(0, 1, "follows".to_string()),
            EdgeRecord::new(1, 2, "recommends".to_string()),
            EdgeRecord::new(3, 0, "follows".to_string()),
        ];
        LabeledGraph::from_records(vs, es, true).unwrap()
    }

    #[test]
    fn sequential_sim_small_example() {
        let g = tiny_graph();
        let matches = sequential_sim(&g, &chain_pattern());
        // Pattern vertex 0 (a person following a recommender): only vertex 0
        // qualifies (3 follows 0, but 0 does not recommend anything).
        assert_eq!(matches[0], HashSet::from([0]));
        // Pattern vertex 1 (a person who recommends a product): vertex 1.
        assert_eq!(matches[1], HashSet::from([1]));
        // Pattern vertex 2 (a product): vertex 2.
        assert_eq!(matches[2], HashSet::from([2]));
    }

    #[test]
    fn unlabeled_pattern_edge_matches_any_relation() {
        let g = tiny_graph();
        let pattern = PatternGraph::new(vec!["person".into(), "person".into()]).edge(0, 1);
        let matches = sequential_sim(&g, &pattern);
        // Any person with an out-edge (of any relation) to a person: 0 and 3.
        assert_eq!(matches[0], HashSet::from([0, 3]));
    }

    #[test]
    fn empty_result_when_label_absent() {
        let g = tiny_graph();
        let pattern = PatternGraph::new(vec!["robot".into()]);
        let matches = sequential_sim(&g, &pattern);
        assert!(matches[0].is_empty());
    }

    fn equal_matches(a: &SimMatches, b: &SimMatches) -> bool {
        if a.len() != b.len() {
            return false;
        }
        a.iter().zip(b.iter()).all(|(x, y)| x == y)
    }

    #[test]
    fn pie_sim_matches_sequential_on_social_graph() {
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 300,
                num_products: 8,
                ..Default::default()
            },
            42,
        )
        .unwrap();
        let query = SimQuery::new(chain_pattern());
        let reference = sequential_sim(&g, &query.pattern);
        for strategy in [BuiltinStrategy::Hash, BuiltinStrategy::Fennel] {
            let assignment = strategy.partition(&g, 4);
            let engine = GrapeEngine::new(SimProgram).with_config(EngineConfig {
                check_monotonicity: true,
                ..Default::default()
            });
            let result = engine.run_on_graph(&query, &g, &assignment).unwrap();
            assert!(
                equal_matches(&result.output, &reference),
                "strategy {:?} diverges from the sequential result",
                strategy
            );
            assert_eq!(result.stats.monotonicity_violations, 0);
        }
    }

    #[test]
    fn pie_sim_single_fragment_equals_sequential() {
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 120,
                num_products: 4,
                ..Default::default()
            },
            7,
        )
        .unwrap();
        let query = SimQuery::new(chain_pattern());
        let reference = sequential_sim(&g, &query.pattern);
        let assignment = BuiltinStrategy::Hash.partition(&g, 1);
        let result = GrapeEngine::new(SimProgram)
            .run_on_graph(&query, &g, &assignment)
            .unwrap();
        assert!(equal_matches(&result.output, &reference));
        assert_eq!(result.stats.supersteps, 1);
    }

    #[test]
    #[should_panic(expected = "64 vertices")]
    fn oversized_pattern_is_rejected() {
        let labels = vec![grape_graph::VertexLabel::from("x"); 65];
        SimQuery::new(PatternGraph::new(labels));
    }

    #[test]
    fn program_declarations() {
        assert_eq!(SimProgram.aggregate(&0b1101, &0b1011), 0b1001);
        assert_eq!(SimProgram.monotonic(&0b111, &0b011), Some(true));
        assert_eq!(SimProgram.monotonic(&0b011, &0b111), Some(false));
        assert_eq!(SimProgram.name(), "sim");
    }
}
