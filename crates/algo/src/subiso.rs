//! Graph pattern matching via subgraph isomorphism (`SubIso`), the query
//! class behind the GPAR-based social-media-marketing demo (Fig. 4).
//!
//! Subgraph isomorphism asks for *injective* embeddings of a small pattern
//! `Q` into the data graph that preserve vertex labels, edge directions and
//! (optionally) edge relation types.
//!
//! PIE formulation — the data-locality argument of the paper: an embedding
//! whose pivot (pattern vertex 0) maps to data vertex `v` lies entirely
//! within the `radius(Q)`-hop neighbourhood of `v`. So:
//!
//! * **PEval** enumerates embeddings whose pivot is an *inner* vertex using a
//!   VF2-style backtracking matcher over the fragment, and publishes, for
//!   every border vertex, the part of its neighbourhood the fragment knows
//!   (a [`NeighborhoodDelta`]).
//! * **IncEval** merges arriving neighbourhood deltas into an extension
//!   graph, republishes the (now larger) neighbourhoods of its border
//!   vertices, and re-enumerates. After at most `radius(Q)` rounds every
//!   fragment knows the full ball around its inner vertices and the deltas
//!   stop growing.
//! * The **aggregate** is set union, which only grows — monotonic, so the
//!   Assurance Theorem applies.
//! * **Assemble** concatenates the per-fragment embeddings; pivots are inner
//!   to exactly one fragment, so no embedding is reported twice.
//!
//! The extension knowledge received from other fragments is kept in an
//! [`ExtIndex`]: flat sorted-id tables with CSR-style out/in adjacency
//! slices, rebuilt only when a superstep actually grows the knowledge. The
//! matcher's adjacency queries are a local CSR slice chained with an indexed
//! extension slice — the per-call linear scans over an edge `HashSet` (and
//! the `String` clone + sort + dedup of every neighbourhood query) of the
//! original formulation are gone, and the ball BFS marks visited vertices in
//! dense bitsets instead of a `HashMap`.

use grape_core::{Fragment, MessageSize, PieContext, PieProgram, VertexId};
use grape_graph::labels::{LabeledVertex, PatternGraph};
use grape_graph::DenseBitset;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A subgraph-isomorphism query.
#[derive(Debug, Clone, PartialEq)]
pub struct SubIsoQuery {
    /// The pattern graph; vertex 0 is the pivot.
    pub pattern: PatternGraph,
    /// Cap on the number of embeddings materialized per fragment (the total
    /// count is still exact up to this cap × fragments). `usize::MAX` keeps
    /// everything.
    pub max_matches: usize,
}

impl SubIsoQuery {
    /// Creates a query keeping every embedding.
    pub fn new(pattern: PatternGraph) -> Self {
        pattern.validate().expect("pattern edges must be valid");
        Self {
            pattern,
            max_matches: usize::MAX,
        }
    }

    /// Limits the number of embeddings materialized per fragment.
    pub fn with_max_matches(mut self, cap: usize) -> Self {
        self.max_matches = cap;
        self
    }
}

/// The piece of a vertex's neighbourhood a fragment knows and shares with the
/// fragments that mirror the vertex.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NeighborhoodDelta {
    /// Known vertices `(id, label)`, sorted by id.
    pub vertices: Vec<(VertexId, String)>,
    /// Known edges `(src, dst, relation)`, sorted.
    pub edges: Vec<(VertexId, VertexId, String)>,
}

impl NeighborhoodDelta {
    /// Merges another delta into this one, keeping the sorted-set invariants.
    pub fn merge(&self, other: &NeighborhoodDelta) -> NeighborhoodDelta {
        let vertices: BTreeMap<VertexId, String> = self
            .vertices
            .iter()
            .chain(other.vertices.iter())
            .cloned()
            .collect();
        let edges: BTreeSet<(VertexId, VertexId, String)> = self
            .edges
            .iter()
            .chain(other.edges.iter())
            .cloned()
            .collect();
        NeighborhoodDelta {
            vertices: vertices.into_iter().collect(),
            edges: edges.into_iter().collect(),
        }
    }

    /// Whether `other` is a subset of this delta. Both sides keep their
    /// vectors sorted, so this is a pair of binary-search probes per entry.
    pub fn contains(&self, other: &NeighborhoodDelta) -> bool {
        other
            .vertices
            .iter()
            .all(|v| self.vertices.binary_search(v).is_ok())
            && other
                .edges
                .iter()
                .all(|e| self.edges.binary_search(e).is_ok())
    }
}

impl MessageSize for NeighborhoodDelta {
    fn size_bytes(&self) -> usize {
        let v: usize = self.vertices.iter().map(|(_, l)| 8 + 4 + l.len()).sum();
        let e: usize = self.edges.iter().map(|(_, _, r)| 16 + 4 + r.len()).sum();
        8 + v + e
    }
}

impl grape_core::Wire for NeighborhoodDelta {
    // Two length-prefixed vectors: 4 + Σ(8 + 4 + |label|) for the vertices
    // and 4 + Σ(16 + 4 + |relation|) for the edges — exactly the
    // MessageSize estimate (its leading 8 is the two vector headers).
    fn encode(&self, out: &mut Vec<u8>) {
        self.vertices.encode(out);
        self.edges.encode(out);
    }

    fn decode(reader: &mut grape_core::WireReader<'_>) -> Result<Self, grape_core::WireError> {
        Ok(NeighborhoodDelta {
            vertices: Vec::decode(reader)?,
            edges: Vec::decode(reader)?,
        })
    }
}

/// The embeddings found by one run: each entry maps pattern vertex `i` to the
/// data vertex at position `i`.
pub type Embeddings = Vec<Vec<VertexId>>;

/// Indexed extension knowledge: everything a fragment has learned about
/// vertices and edges beyond its local graph, addressable without hashing.
///
/// Ids are kept in one sorted table (`ids`); labels and CSR-style out/in
/// adjacency slices are aligned with it. Rebuilt from the master stores only
/// when a superstep grows the knowledge (at most `radius(Q)` times), so the
/// matcher's million-fold adjacency queries amortize the build.
#[derive(Debug, Clone, Default)]
struct ExtIndex {
    /// Sorted ids of every vertex the extension knowledge mentions (labeled
    /// or appearing as an edge endpoint).
    ids: Vec<VertexId>,
    /// Label of each id, aligned with `ids` (`None` when only edges mention
    /// the vertex so far).
    labels: Vec<Option<String>>,
    /// CSR offsets into `out_entries`, aligned with `ids` (`len = ids + 1`).
    out_offsets: Vec<usize>,
    /// `(dst, relation)` pairs grouped by source.
    out_entries: Vec<(VertexId, String)>,
    /// CSR offsets into `in_entries`, aligned with `ids`.
    in_offsets: Vec<usize>,
    /// `(src, relation)` pairs grouped by destination.
    in_entries: Vec<(VertexId, String)>,
}

impl ExtIndex {
    fn build(
        labels: &BTreeMap<VertexId, String>,
        edges: &BTreeSet<(VertexId, VertexId, String)>,
    ) -> Self {
        let mut ids: Vec<VertexId> = labels.keys().copied().collect();
        for (s, d, _) in edges {
            ids.push(*s);
            ids.push(*d);
        }
        ids.sort_unstable();
        ids.dedup();
        let pos = |v: VertexId| ids.binary_search(&v).expect("endpoint indexed");
        let id_labels: Vec<Option<String>> = ids.iter().map(|v| labels.get(v).cloned()).collect();

        let mut out_degree = vec![0usize; ids.len()];
        let mut in_degree = vec![0usize; ids.len()];
        for (s, d, _) in edges {
            out_degree[pos(*s)] += 1;
            in_degree[pos(*d)] += 1;
        }
        let mut out_offsets = vec![0usize; ids.len() + 1];
        let mut in_offsets = vec![0usize; ids.len() + 1];
        for i in 0..ids.len() {
            out_offsets[i + 1] = out_offsets[i] + out_degree[i];
            in_offsets[i + 1] = in_offsets[i] + in_degree[i];
        }
        let mut out_entries = vec![(0, String::new()); edges.len()];
        let mut in_entries = vec![(0, String::new()); edges.len()];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for (s, d, rel) in edges {
            let sp = pos(*s);
            let dp = pos(*d);
            out_entries[out_cursor[sp]] = (*d, rel.clone());
            out_cursor[sp] += 1;
            in_entries[in_cursor[dp]] = (*s, rel.clone());
            in_cursor[dp] += 1;
        }
        Self {
            ids,
            labels: id_labels,
            out_offsets,
            out_entries,
            in_offsets,
            in_entries,
        }
    }

    #[inline]
    fn pos(&self, v: VertexId) -> Option<usize> {
        self.ids.binary_search(&v).ok()
    }

    fn label_of(&self, v: VertexId) -> Option<&str> {
        self.pos(v).and_then(|p| self.labels[p].as_deref())
    }

    fn out_edges(&self, v: VertexId) -> &[(VertexId, String)] {
        match self.pos(v) {
            Some(p) => &self.out_entries[self.out_offsets[p]..self.out_offsets[p + 1]],
            None => &[],
        }
    }

    fn in_edges(&self, v: VertexId) -> &[(VertexId, String)] {
        match self.pos(v) {
            Some(p) => &self.in_entries[self.in_offsets[p]..self.in_offsets[p + 1]],
            None => &[],
        }
    }
}

/// A combined view over the fragment's local graph and the indexed extension
/// knowledge received from other fragments.
struct KnowledgeGraph<'a> {
    fragment: Option<&'a Fragment<LabeledVertex, String>>,
    ext: &'a ExtIndex,
}

impl<'a> KnowledgeGraph<'a> {
    fn label_of(&self, v: VertexId) -> Option<&'a str> {
        if let Some(f) = self.fragment {
            if let Some(data) = f.graph.vertex_data(v) {
                return Some(&data.label.0);
            }
        }
        self.ext.label_of(v)
    }

    /// Out-edges of `v` as `(dst, relation)`: the local CSR slice chained
    /// with the indexed extension slice. The two are disjoint — IncEval
    /// never records an edge the local graph already stores.
    fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, &'a str)> + '_ {
        let local = self
            .fragment
            .into_iter()
            .flat_map(move |f| f.graph.out_edges(v).map(|(d, r)| (d, r.as_str())));
        local.chain(self.ext.out_edges(v).iter().map(|(d, r)| (*d, r.as_str())))
    }

    /// In-edges of `v` as `(src, relation)`.
    fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, &'a str)> + '_ {
        let local = self
            .fragment
            .into_iter()
            .flat_map(move |f| f.graph.in_edges(v).map(|(s, r)| (s, r.as_str())));
        local.chain(self.ext.in_edges(v).iter().map(|(s, r)| (*s, r.as_str())))
    }

    fn has_edge(&self, s: VertexId, d: VertexId, relation: Option<&str>) -> bool {
        self.out_edges(s)
            .any(|(t, r)| t == d && relation.is_none_or(|rel| rel == r))
    }
}

/// Order the pattern vertices so each one (after the first) is adjacent to an
/// already-placed vertex when the pattern is connected.
fn matching_order(pattern: &PatternGraph) -> Vec<usize> {
    let n = pattern.num_vertices();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for (f, t, _) in &pattern.edges {
                for (a, b) in [(*f, *t), (*t, *f)] {
                    if a == u && !seen[b] {
                        seen[b] = true;
                        queue.push_back(b);
                    }
                }
            }
        }
    }
    order
}

/// Backtracking enumeration of embeddings whose pivot (pattern vertex 0) maps
/// into `pivot_candidates`.
fn enumerate(
    pattern: &PatternGraph,
    graph: &KnowledgeGraph<'_>,
    pivot_candidates: &[VertexId],
    cap: usize,
) -> Embeddings {
    let n = pattern.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let order = matching_order(pattern);
    let mut results = Vec::new();
    let mut assignment: Vec<Option<VertexId>> = vec![None; n];

    fn consistent(
        pattern: &PatternGraph,
        graph: &KnowledgeGraph<'_>,
        assignment: &[Option<VertexId>],
        u: usize,
        v: VertexId,
    ) -> bool {
        // Injectivity.
        if assignment.iter().flatten().any(|&w| w == v) {
            return false;
        }
        // Label.
        match graph.label_of(v) {
            Some(l) if l == pattern.labels[u].0 => {}
            _ => return false,
        }
        // Every pattern edge between u and an already-assigned vertex must be
        // witnessed in the data.
        for (f, t, rel) in &pattern.edges {
            let rel = rel.as_deref();
            if *f == u {
                if let Some(Some(w)) = assignment.get(*t) {
                    if !graph.has_edge(v, *w, rel) {
                        return false;
                    }
                }
            }
            if *t == u {
                if let Some(Some(w)) = assignment.get(*f) {
                    if !graph.has_edge(*w, v, rel) {
                        return false;
                    }
                }
            }
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn backtrack(
        pattern: &PatternGraph,
        graph: &KnowledgeGraph<'_>,
        order: &[usize],
        depth: usize,
        assignment: &mut Vec<Option<VertexId>>,
        pivot_candidates: &[VertexId],
        results: &mut Embeddings,
        cap: usize,
    ) {
        if results.len() >= cap {
            return;
        }
        if depth == order.len() {
            results.push(assignment.iter().map(|a| a.expect("complete")).collect());
            return;
        }
        let u = order[depth];
        // Candidate data vertices for u.
        let candidates: Vec<VertexId> = if depth == 0 {
            pivot_candidates.to_vec()
        } else {
            // Prefer expanding from an already-assigned neighbour of u.
            let mut from_neighbours: Option<Vec<VertexId>> = None;
            for (f, t, _) in &pattern.edges {
                if *f == u {
                    if let Some(Some(w)) = assignment.get(*t) {
                        from_neighbours = Some(graph.in_edges(*w).map(|(s, _)| s).collect());
                        break;
                    }
                }
                if *t == u {
                    if let Some(Some(w)) = assignment.get(*f) {
                        from_neighbours = Some(graph.out_edges(*w).map(|(d, _)| d).collect());
                        break;
                    }
                }
            }
            match from_neighbours {
                Some(mut c) => {
                    c.sort_unstable();
                    c.dedup();
                    c
                }
                None => {
                    // Disconnected pattern vertex: consider every known vertex.
                    let mut all: Vec<VertexId> = graph
                        .ext
                        .ids
                        .iter()
                        .copied()
                        .chain(
                            graph
                                .fragment
                                .map(|f| f.graph.vertices().collect::<Vec<_>>())
                                .unwrap_or_default(),
                        )
                        .collect();
                    all.sort_unstable();
                    all.dedup();
                    all
                }
            }
        };
        for v in candidates {
            if consistent(pattern, graph, assignment, u, v) {
                assignment[u] = Some(v);
                backtrack(
                    pattern,
                    graph,
                    order,
                    depth + 1,
                    assignment,
                    pivot_candidates,
                    results,
                    cap,
                );
                assignment[u] = None;
                if results.len() >= cap {
                    return;
                }
            }
        }
    }

    backtrack(
        pattern,
        graph,
        &order,
        0,
        &mut assignment,
        pivot_candidates,
        &mut results,
        cap,
    );
    results
}

/// Sequential subgraph isomorphism over a whole labeled graph — the reference
/// algorithm.
pub fn sequential_subiso(graph: &grape_graph::LabeledGraph, pattern: &PatternGraph) -> Embeddings {
    // Reuse the fragment-based matcher by viewing the whole graph as one
    // fragment-less knowledge graph.
    let labels: BTreeMap<VertexId, String> = graph
        .vertices()
        .map(|v| (v, graph.vertex_data(v).expect("present").label.0.clone()))
        .collect();
    let edges: BTreeSet<(VertexId, VertexId, String)> =
        graph.edges().map(|(s, d, r)| (s, d, r.clone())).collect();
    let ext = ExtIndex::build(&labels, &edges);
    let kg = KnowledgeGraph {
        fragment: None,
        ext: &ext,
    };
    let pivots: Vec<VertexId> = graph.vertices().collect();
    enumerate(pattern, &kg, &pivots, usize::MAX)
}

/// Per-fragment partial state.
#[derive(Debug, Clone, Default)]
pub struct SubIsoPartial {
    /// Labels learned from other fragments (master store, ordered — no
    /// hashing).
    ext_labels: BTreeMap<VertexId, String>,
    /// Edges learned from other fragments (master store, ordered).
    ext_edges: BTreeSet<(VertexId, VertexId, String)>,
    /// Flat adjacency index over the stores, rebuilt when they grow.
    ext_index: ExtIndex,
    /// Embeddings found so far (pivot is always an inner vertex).
    pub matches: Embeddings,
}

/// The SubIso PIE program.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubIsoProgram;

impl SubIsoProgram {
    /// BFS ball of radius `radius` around `center` over the fragment's local
    /// graph plus the extension knowledge, packaged as a delta. Visited marks
    /// live in two dense bitsets (one over the local graph's CSR indices, one
    /// over the extension-id table) — no per-vertex hashing.
    fn ball(
        fragment: &Fragment<LabeledVertex, String>,
        partial: &SubIsoPartial,
        center: VertexId,
        radius: usize,
    ) -> NeighborhoodDelta {
        let kg = KnowledgeGraph {
            fragment: Some(fragment),
            ext: &partial.ext_index,
        };
        let mut seen_local = DenseBitset::new(fragment.graph.num_vertices());
        let mut seen_ext = DenseBitset::new(partial.ext_index.ids.len());
        // Marks `v` as visited; returns false if it already was. Every id the
        // knowledge graph can surface is local or in the extension-id table.
        let mut visit = |v: VertexId| -> bool {
            if let Some(i) = fragment.graph.dense_index(v) {
                if seen_local.contains(i) {
                    return false;
                }
                seen_local.set(i);
                return true;
            }
            let Some(p) = partial.ext_index.pos(v) else {
                debug_assert!(false, "knowledge-graph id {v} is neither local nor indexed");
                return false;
            };
            if seen_ext.contains(p as u32) {
                return false;
            }
            seen_ext.set(p as u32);
            true
        };
        let mut queue = VecDeque::from([(center, 0usize)]);
        visit(center);
        let mut vertices: BTreeMap<VertexId, String> = BTreeMap::new();
        let mut edges: BTreeSet<(VertexId, VertexId, String)> = BTreeSet::new();
        if let Some(l) = kg.label_of(center) {
            vertices.insert(center, l.to_string());
        }
        while let Some((u, du)) = queue.pop_front() {
            if du >= radius {
                continue;
            }
            for (v, rel) in kg.out_edges(u) {
                edges.insert((u, v, rel.to_string()));
                if visit(v) {
                    if let Some(l) = kg.label_of(v) {
                        vertices.insert(v, l.to_string());
                    }
                    queue.push_back((v, du + 1));
                }
            }
            for (v, rel) in kg.in_edges(u) {
                edges.insert((v, u, rel.to_string()));
                if visit(v) {
                    if let Some(l) = kg.label_of(v) {
                        vertices.insert(v, l.to_string());
                    }
                    queue.push_back((v, du + 1));
                }
            }
        }
        NeighborhoodDelta {
            vertices: vertices.into_iter().collect(),
            edges: edges.into_iter().collect(),
        }
    }

    fn publish_borders(
        query: &SubIsoQuery,
        fragment: &Fragment<LabeledVertex, String>,
        partial: &SubIsoPartial,
        ctx: &mut PieContext<NeighborhoodDelta>,
    ) {
        let radius = query.pattern.radius().max(1);
        // Position-addressed read-modify-write over the border list: the
        // published value only ever grows, and the context suppresses no-op
        // republication automatically via PartialEq.
        for (pos, &b) in fragment.border_vertices().iter().enumerate() {
            let ball = Self::ball(fragment, partial, b, radius);
            let merged = match ctx.get_at(pos as u32) {
                Some(existing) => existing.merge(&ball),
                None => ball,
            };
            ctx.update_at(pos as u32, merged);
        }
    }

    fn enumerate_local(
        query: &SubIsoQuery,
        fragment: &Fragment<LabeledVertex, String>,
        partial: &SubIsoPartial,
    ) -> Embeddings {
        let kg = KnowledgeGraph {
            fragment: Some(fragment),
            ext: &partial.ext_index,
        };
        let pivots: Vec<VertexId> = fragment.inner_vertices().to_vec();
        enumerate(&query.pattern, &kg, &pivots, query.max_matches)
    }
}

impl PieProgram for SubIsoProgram {
    type Query = SubIsoQuery;
    type VertexData = LabeledVertex;
    type EdgeData = String;
    type Value = NeighborhoodDelta;
    type Partial = SubIsoPartial;
    type Output = Embeddings;

    fn peval(
        &self,
        query: &SubIsoQuery,
        fragment: &Fragment<LabeledVertex, String>,
        ctx: &mut PieContext<NeighborhoodDelta>,
    ) -> SubIsoPartial {
        let mut partial = SubIsoPartial::default();
        partial.matches = Self::enumerate_local(query, fragment, &partial);
        Self::publish_borders(query, fragment, &partial, ctx);
        partial
    }

    fn inceval(
        &self,
        query: &SubIsoQuery,
        fragment: &Fragment<LabeledVertex, String>,
        partial: &mut SubIsoPartial,
        messages: &[(VertexId, NeighborhoodDelta)],
        ctx: &mut PieContext<NeighborhoodDelta>,
    ) {
        let mut grew = false;
        for (_, delta) in messages {
            for (v, label) in &delta.vertices {
                if fragment.graph.contains(*v) {
                    continue;
                }
                if partial.ext_labels.insert(*v, label.clone()).is_none() {
                    grew = true;
                }
            }
            for edge in &delta.edges {
                // Skip edges the local graph already stores.
                let locally_known = fragment
                    .graph
                    .out_edges(edge.0)
                    .any(|(d, r)| d == edge.1 && *r == edge.2);
                if !locally_known && partial.ext_edges.insert(edge.clone()) {
                    grew = true;
                }
            }
        }
        if !grew {
            return;
        }
        partial.ext_index = ExtIndex::build(&partial.ext_labels, &partial.ext_edges);
        partial.matches = Self::enumerate_local(query, fragment, partial);
        Self::publish_borders(query, fragment, partial, ctx);
    }

    fn assemble(&self, partials: Vec<SubIsoPartial>) -> Embeddings {
        let mut out = Vec::new();
        for partial in partials {
            out.extend(partial.matches);
        }
        out.sort();
        out.dedup();
        out
    }

    fn aggregate(&self, a: &NeighborhoodDelta, b: &NeighborhoodDelta) -> NeighborhoodDelta {
        a.merge(b)
    }

    fn monotonic(&self, old: &NeighborhoodDelta, new: &NeighborhoodDelta) -> Option<bool> {
        Some(new.contains(old))
    }

    fn snapshot_partial(&self, partial: &SubIsoPartial) -> Option<Vec<u8>> {
        use grape_core::Wire;
        let mut out = Vec::new();
        // The ordered stores serialize in their iteration order (ascending),
        // so the encoding is canonical; the flat index is derived state and
        // rebuilt on restore.
        let labels: Vec<(VertexId, String)> = partial
            .ext_labels
            .iter()
            .map(|(&v, l)| (v, l.clone()))
            .collect();
        labels.encode(&mut out);
        let edges: Vec<(VertexId, VertexId, String)> = partial.ext_edges.iter().cloned().collect();
        edges.encode(&mut out);
        partial.matches.encode(&mut out);
        Some(out)
    }

    fn restore_partial(&self, bytes: &[u8]) -> Option<SubIsoPartial> {
        use grape_core::{Wire, WireReader};
        let mut reader = WireReader::new(bytes);
        let labels = Vec::<(VertexId, String)>::decode(&mut reader).ok()?;
        let edges = Vec::<(VertexId, VertexId, String)>::decode(&mut reader).ok()?;
        let matches = Embeddings::decode(&mut reader).ok()?;
        reader.finish().ok()?;
        let ext_labels: BTreeMap<VertexId, String> = labels.into_iter().collect();
        let ext_edges: BTreeSet<(VertexId, VertexId, String)> = edges.into_iter().collect();
        let ext_index = ExtIndex::build(&ext_labels, &ext_edges);
        Some(SubIsoPartial {
            ext_labels,
            ext_edges,
            ext_index,
            matches,
        })
    }

    fn name(&self) -> &str {
        "subiso"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::{EngineConfig, GrapeEngine};
    use grape_graph::generators::{labeled_social, SocialGraphConfig};
    use grape_graph::labels::lv;
    use grape_graph::types::EdgeRecord;
    use grape_graph::LabeledGraph;
    use grape_partition::BuiltinStrategy;

    fn person_product_pattern() -> PatternGraph {
        // person --follows--> person --recommends--> product
        PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
            .edge_labeled(0, 1, "follows")
            .edge_labeled(1, 2, "recommends")
    }

    fn tiny_graph() -> LabeledGraph {
        let vs = vec![
            lv(0, "person", &[]),
            lv(1, "person", &[]),
            lv(2, "product", &[]),
            lv(3, "person", &[]),
            lv(4, "product", &[]),
        ];
        let es = vec![
            EdgeRecord::new(0, 1, "follows".to_string()),
            EdgeRecord::new(1, 2, "recommends".to_string()),
            EdgeRecord::new(1, 4, "recommends".to_string()),
            EdgeRecord::new(3, 1, "follows".to_string()),
        ];
        LabeledGraph::from_records(vs, es, true).unwrap()
    }

    #[test]
    fn sequential_subiso_counts_embeddings() {
        let matches = sequential_subiso(&tiny_graph(), &person_product_pattern());
        // Pivots 0 and 3 each follow person 1 who recommends products 2 and 4:
        // 4 embeddings in total.
        assert_eq!(matches.len(), 4);
        for m in &matches {
            assert_eq!(m.len(), 3);
            assert_eq!(m[1], 1);
        }
    }

    #[test]
    fn injectivity_is_enforced() {
        // Pattern person -> person (follows) on a graph with a self-loop-free
        // 2-cycle: 0 follows 1, 1 follows 0 -> exactly two embeddings, never
        // mapping both pattern vertices to the same data vertex.
        let vs = vec![lv(0, "person", &[]), lv(1, "person", &[])];
        let es = vec![
            EdgeRecord::new(0, 1, "follows".to_string()),
            EdgeRecord::new(1, 0, "follows".to_string()),
        ];
        let g = LabeledGraph::from_records(vs, es, true).unwrap();
        let p =
            PatternGraph::new(vec!["person".into(), "person".into()]).edge_labeled(0, 1, "follows");
        let matches = sequential_subiso(&g, &p);
        assert_eq!(matches.len(), 2);
        for m in matches {
            assert_ne!(m[0], m[1]);
        }
    }

    #[test]
    fn relation_constraint_filters_matches() {
        let g = tiny_graph();
        let wrong_rel = PatternGraph::new(vec!["person".into(), "product".into()]).edge_labeled(
            0,
            1,
            "rates_bad",
        );
        assert!(sequential_subiso(&g, &wrong_rel).is_empty());
        let right_rel = PatternGraph::new(vec!["person".into(), "product".into()]).edge_labeled(
            0,
            1,
            "recommends",
        );
        assert_eq!(sequential_subiso(&g, &right_rel).len(), 2);
    }

    #[test]
    fn neighborhood_delta_merge_and_order() {
        let a = NeighborhoodDelta {
            vertices: vec![(1, "x".into())],
            edges: vec![(1, 2, "e".into())],
        };
        let b = NeighborhoodDelta {
            vertices: vec![(2, "y".into())],
            edges: vec![(1, 2, "e".into()), (2, 3, "f".into())],
        };
        let m = a.merge(&b);
        assert_eq!(m.vertices.len(), 2);
        assert_eq!(m.edges.len(), 2);
        assert!(m.contains(&a));
        assert!(m.contains(&b));
        assert!(!a.contains(&b));
        assert!(m.size_bytes() > 0);
    }

    #[test]
    fn ext_index_adjacency_matches_the_stores() {
        let labels: BTreeMap<VertexId, String> =
            [(1, "a".to_string()), (2, "b".to_string())].into();
        let edges: BTreeSet<(VertexId, VertexId, String)> = [
            (1, 2, "x".to_string()),
            (1, 3, "y".to_string()),
            (3, 2, "z".to_string()),
        ]
        .into();
        let idx = ExtIndex::build(&labels, &edges);
        // Vertex 3 appears only as an endpoint: indexed, but unlabeled.
        assert_eq!(idx.ids, vec![1, 2, 3]);
        assert_eq!(idx.label_of(1), Some("a"));
        assert_eq!(idx.label_of(3), None);
        assert_eq!(idx.label_of(9), None);
        assert_eq!(
            idx.out_edges(1),
            &[(2, "x".to_string()), (3, "y".to_string())]
        );
        assert_eq!(idx.in_edges(2).len(), 2);
        assert!(idx.out_edges(2).is_empty());
        assert!(idx.out_edges(42).is_empty());
    }

    fn canonical(mut m: Embeddings) -> Embeddings {
        m.sort();
        m
    }

    #[test]
    fn pie_subiso_matches_sequential_on_social_graph() {
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 80,
                num_products: 4,
                follows_per_person: 4,
                recommend_prob: 0.2,
                ..Default::default()
            },
            19,
        )
        .unwrap();
        let query = SubIsoQuery::new(person_product_pattern());
        let reference = canonical(sequential_subiso(&g, &query.pattern));
        for strategy in [BuiltinStrategy::Hash, BuiltinStrategy::MetisLike] {
            let assignment = strategy.partition(&g, 3);
            let engine = GrapeEngine::new(SubIsoProgram).with_config(EngineConfig {
                check_monotonicity: true,
                ..Default::default()
            });
            let result = engine.run_on_graph(&query, &g, &assignment).unwrap();
            assert_eq!(
                canonical(result.output),
                reference,
                "strategy {strategy:?} must find exactly the sequential embeddings"
            );
            assert_eq!(result.stats.monotonicity_violations, 0);
        }
    }

    #[test]
    fn pie_subiso_single_fragment_equals_sequential() {
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 60,
                num_products: 3,
                ..Default::default()
            },
            3,
        )
        .unwrap();
        let query = SubIsoQuery::new(person_product_pattern());
        let reference = canonical(sequential_subiso(&g, &query.pattern));
        let assignment = BuiltinStrategy::Hash.partition(&g, 1);
        let result = GrapeEngine::new(SubIsoProgram)
            .run_on_graph(&query, &g, &assignment)
            .unwrap();
        assert_eq!(canonical(result.output), reference);
    }

    #[test]
    fn match_cap_limits_materialization() {
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 100,
                num_products: 5,
                ..Default::default()
            },
            8,
        )
        .unwrap();
        let query = SubIsoQuery::new(person_product_pattern()).with_max_matches(5);
        let assignment = BuiltinStrategy::Hash.partition(&g, 2);
        let result = GrapeEngine::new(SubIsoProgram)
            .run_on_graph(&query, &g, &assignment)
            .unwrap();
        assert!(result.output.len() <= 10, "at most cap × fragments");
    }

    #[test]
    fn program_declarations() {
        let d1 = NeighborhoodDelta::default();
        let d2 = NeighborhoodDelta {
            vertices: vec![(1, "a".into())],
            edges: vec![],
        };
        assert_eq!(SubIsoProgram.aggregate(&d1, &d2), d2);
        assert_eq!(SubIsoProgram.monotonic(&d1, &d2), Some(true));
        assert_eq!(SubIsoProgram.monotonic(&d2, &d1), Some(false));
        assert_eq!(SubIsoProgram.name(), "subiso");
    }
}
