//! PageRank — an extra iterative query class used by the analytics panel and
//! by the engine-comparison benches (it is the canonical workload of
//! vertex-centric systems, so it completes the Table-1-style comparison).
//!
//! The PIE formulation follows the GRAPE idea of running a *whole sequential
//! algorithm per fragment*:
//!
//! * **PEval** runs local power iteration over the fragment's inner vertices.
//! * The **update parameter** of a border vertex `u` is the *per-edge rank
//!   share* `rank(u) / outdeg(u)` computed by `u`'s owner fragment; mirrors
//!   of `u` use that share to account for rank flowing in over cut edges.
//!   Only the owner ever proposes a value for `u`, so no aggregation
//!   conflicts arise.
//! * **IncEval** re-runs local iteration after new mirror shares arrive.
//! * Values are rounded to the query tolerance, so once shares stop moving by
//!   more than the tolerance nothing changes and the engine reaches its
//!   fixpoint.
//!
//! PageRank is not monotonic, so (unlike SSSP/CC) it does not fall under the
//! Assurance Theorem; termination is ensured by the tolerance rounding, as in
//! every practical PageRank implementation.
//!
//! **Dangling vertices.** Vertices without out-edges would leak their rank
//! mass every iteration (the ranks would no longer sum to 1). The sequential
//! reference redistributes the dangling mass uniformly each sweep — the
//! standard "dangling node" correction. The distributed program reaches the
//! same answer without a per-iteration global reduction by exploiting a
//! classical identity: with uniform teleport, the redistributed fixpoint is
//! the *leaky* fixpoint rescaled to total mass 1 (fold the dangling term
//! `c·(dᵀx)/n · e` into the teleport and both systems differ only by that
//! scalar). Each fragment iterates the leaky system as before and Assemble
//! normalizes the merged ranks once.

use grape_core::par::{map_chunks, ThreadPool};
use grape_core::{Fragment, PieContext, PieProgram, VertexId};
use grape_graph::{CsrGraph, DenseBitset, VertexDenseMap};
use std::collections::HashMap;

/// PageRank query parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankQuery {
    /// Damping factor (0.85 in the original paper).
    pub damping: f64,
    /// Maximum local power-iteration sweeps per PEval/IncEval call.
    pub max_local_iterations: usize,
    /// Convergence tolerance on rank values and shipped shares.
    pub tolerance: f64,
}

impl Default for PageRankQuery {
    fn default() -> Self {
        Self {
            damping: 0.85,
            max_local_iterations: 30,
            tolerance: 1e-6,
        }
    }
}

impl PageRankQuery {
    /// Radius of the quantized-fixpoint cluster: any two self-consistent
    /// solutions of the tolerance-grid equations — e.g. a warm (incremental)
    /// run seeded from an old fixpoint and a cold run started from the
    /// uniform prior — differ per vertex by at most this much.
    ///
    /// The quantized Jacobi operator is a contraction only up to the grid
    /// resolution: around short cycles (a self-loop in the extreme) the
    /// condition `|S − (1−d)·g| < tol/2` admits `O(1/(1−d))` adjacent grid
    /// values, so the fixpoint is a *cluster*, not a point. Each of the `m`
    /// quantizations contributes at most `tol/2` of slack and the leaky
    /// system amplifies ℓ₁ differences by `d/(1−d)`, giving the (pessimistic)
    /// bound `d·tol·m/(1−d)` on any per-vertex gap, which survives the final
    /// normalization up to a factor absorbed by the slack in the ℓ₁ argument.
    pub fn fixpoint_cluster_radius(&self, num_edges: usize) -> f64 {
        self.damping * self.tolerance * num_edges.max(1) as f64 / (1.0 - self.damping)
    }
}

/// Sequential PageRank over a whole graph — the reference implementation.
///
/// The rank mass of dangling vertices (no out-edges) is redistributed
/// uniformly every sweep, so the ranks always sum to 1 — previously that
/// mass was silently dropped (`out == 0 => continue`) and the totals on
/// graphs with sinks drifted below 1.
pub fn sequential_pagerank(
    graph: &CsrGraph<(), f64>,
    query: &PageRankQuery,
    iterations: usize,
) -> HashMap<VertexId, f64> {
    let n = graph.num_vertices();
    if n == 0 {
        return HashMap::new();
    }
    let mut rank: HashMap<VertexId, f64> = graph.vertices().map(|v| (v, 1.0 / n as f64)).collect();
    for _ in 0..iterations {
        let mut next: HashMap<VertexId, f64> = graph
            .vertices()
            .map(|v| (v, (1.0 - query.damping) / n as f64))
            .collect();
        let mut dangling = 0.0f64;
        for v in graph.vertices() {
            let out = graph.out_degree(v);
            let r = rank[&v];
            if out == 0 {
                dangling += r;
                continue;
            }
            let share = query.damping * r / out as f64;
            for (u, _) in graph.out_edges(v) {
                *next.get_mut(&u).expect("vertex exists") += share;
            }
        }
        if dangling > 0.0 {
            let correction = query.damping * dangling / n as f64;
            for r in next.values_mut() {
                *r += correction;
            }
        }
        rank = next;
    }
    rank
}

/// Rounds a value to the tolerance grid so equality (and thus convergence of
/// the update parameters) is well defined.
fn quantize(value: f64, tolerance: f64) -> f64 {
    (value / tolerance).round() * tolerance
}

/// Per-fragment partial state, kept in flat per-vertex arrays over the
/// fragment's dense CSR indices.
#[derive(Debug, Clone, Default)]
pub struct PageRankPartial {
    /// Current rank by local dense index; only the slots of inner vertices
    /// are meaningful (mirror slots are scratch space for the iteration).
    rank: VertexDenseMap<f64>,
    /// Per-edge rank share of each outer (mirror) vertex by local dense
    /// index, as received from its owner (0.0 until the first message).
    mirror_share: VertexDenseMap<f64>,
    /// Global ids of the inner vertices, aligned with `inner_dense`, so
    /// Assemble can translate without the fragments at hand.
    inner_ids: Vec<VertexId>,
    /// Dense indices of the inner vertices.
    inner_dense: Vec<u32>,
    /// Damping-scaled per-edge contribution of every local vertex: for inner
    /// vertices `damping * rank / outdeg` (0 for sinks), for mirrors
    /// `damping * mirror_share`. Kept in lockstep with `rank`/`mirror_share`
    /// so a sweep can pull contributions without re-deriving them.
    contrib: VertexDenseMap<f64>,
    /// Inner vertices whose in-contributions changed since they were last
    /// recomputed. Invariant between sweeps: a vertex *not* in this set would
    /// recompute to its current rank bit-for-bit, so it can be skipped.
    pending: DenseBitset,
}

/// The PageRank PIE program.
///
/// The `global_vertices` field must be set to the vertex count of the whole
/// graph (fragments only know their own slice).
#[derive(Debug, Clone, Copy)]
pub struct PageRankProgram {
    /// Number of vertices of the global graph.
    pub global_vertices: usize,
}

impl PageRankProgram {
    /// Creates the program for a graph with `global_vertices` vertices.
    pub fn new(global_vertices: usize) -> Self {
        Self { global_vertices }
    }

    /// The contribution a local vertex feeds each of its out-edges: rank
    /// share for inner vertices, owner-published share for mirrors.
    ///
    /// Inner shares are *quantized to the tolerance grid* — the same grid
    /// [`PageRankProgram::emit_shares`] publishes on — so the contribution a
    /// vertex feeds its local out-neighbours is bitwise the one its mirrors
    /// feed theirs. That makes every in-contribution a grid value,
    /// independent of whether the contributor is inner or mirrored, which is
    /// what makes a run deterministic given its start point: the trajectory
    /// depends only on the grid equations and the initial ranks. The grid
    /// equations themselves admit a *cluster* of self-consistent solutions
    /// (see [`PageRankQuery::fixpoint_cluster_radius`]), so different starts
    /// — warm from an old fixpoint vs cold from the uniform prior — may
    /// settle on different members of that cluster.
    #[inline]
    fn contribution_of(
        &self,
        query: &PageRankQuery,
        fragment: &Fragment<(), f64>,
        partial: &PageRankPartial,
        i: u32,
    ) -> f64 {
        if fragment.is_inner_dense(i) {
            let out = fragment.graph.out_degree_dense(i);
            if out == 0 {
                0.0
            } else {
                query.damping * quantize(partial.rank[i] / out as f64, query.tolerance)
            }
        } else {
            query.damping * partial.mirror_share[i]
        }
    }

    /// Local power iteration over the fragment's inner vertices, treating the
    /// mirror shares as fixed external input.
    ///
    /// Each sweep is a *pull* over the `pending` delta frontier: only
    /// vertices whose in-contributions changed bit-for-bit since their last
    /// recompute are re-evaluated, in ascending dense order, reading a frozen
    /// snapshot of `contrib` (Jacobi style). A vertex outside the frontier
    /// would pull exactly the same inputs in the same order and reproduce its
    /// current rank bitwise, so skipping it cannot change the fixpoint — and
    /// the same argument makes the result independent of the pool's thread
    /// count. The frontier persists across PEval/IncEval calls, so a
    /// superstep that only moves a few mirror shares touches only the cone
    /// those shares reach instead of re-sweeping the whole fragment.
    fn local_iterate(
        &self,
        query: &PageRankQuery,
        fragment: &Fragment<(), f64>,
        partial: &mut PageRankPartial,
        pool: &ThreadPool,
    ) {
        let g = &fragment.graph;
        debug_assert!(g.has_reverse(), "PageRank pulls over reverse adjacency");
        let base = (1.0 - query.damping) / self.global_vertices.max(1) as f64;
        for _ in 0..query.max_local_iterations {
            let frontier: Vec<u32> = partial.pending.iter_ones().collect();
            if frontier.is_empty() {
                break;
            }
            partial.pending.clear_all();
            let rank = &partial.rank;
            let contrib = &partial.contrib;
            let frontier_ref: &[u32] = &frontier;
            let updates = map_chunks(pool, frontier.len(), |range, out: &mut Vec<(u32, f64)>| {
                for &v in &frontier_ref[range] {
                    let mut new = base;
                    for &u in g.in_neighbors_dense(v) {
                        new += contrib[u];
                    }
                    if new.to_bits() != rank[v].to_bits() {
                        out.push((v, new));
                    }
                }
            });
            // Apply in chunk order (ascending frontier order) so the next
            // frontier is schedule-independent. A neighbour is requeued only
            // when the *quantized contribution* moved bits: rank drift below
            // the grid resolution feeds out-neighbours the same inputs, so
            // skipping them cannot change anything. The sweep terminates
            // exactly when the frontier empties (contributions frozen on the
            // grid), making the converged state independent of thread count
            // and chunking — there is no early exit on a residual norm. It
            // still depends on the *start point*: see `contribution_of` on
            // the fixpoint cluster.
            for chunk in &updates {
                for &(v, new) in chunk {
                    partial.rank[v] = new;
                    let out = g.out_degree_dense(v);
                    let contrib = if out == 0 {
                        0.0
                    } else {
                        query.damping * quantize(new / out as f64, query.tolerance)
                    };
                    if contrib.to_bits() != partial.contrib[v].to_bits() {
                        partial.contrib[v] = contrib;
                        for &w in g.out_neighbors_dense(v) {
                            if fragment.is_inner_dense(w) {
                                partial.pending.set(w);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Posts the rank share of every inner border vertex (vertices mirrored
    /// at other fragments).
    fn emit_shares(
        &self,
        query: &PageRankQuery,
        fragment: &Fragment<(), f64>,
        partial: &PageRankPartial,
        ctx: &mut PieContext<f64>,
    ) {
        // Position-addressed via the precomputed border positions of the
        // mirrored-inner vertices: an indexed compare per vertex, no lookup.
        for (&pos, &i) in fragment
            .mirrored_inner_border_positions()
            .iter()
            .zip(fragment.mirrored_inner_dense_indices())
        {
            let out = fragment.graph.out_degree_dense(i);
            if out == 0 {
                continue;
            }
            let share = partial.rank[i] / out as f64;
            ctx.update_at(pos, quantize(share, query.tolerance));
        }
    }
}

impl PieProgram for PageRankProgram {
    type Query = PageRankQuery;
    type VertexData = ();
    type EdgeData = f64;
    type Value = f64;
    type Partial = PageRankPartial;
    type Output = HashMap<VertexId, f64>;

    fn peval(
        &self,
        query: &PageRankQuery,
        fragment: &Fragment<(), f64>,
        ctx: &mut PieContext<f64>,
    ) -> PageRankPartial {
        let pool = std::sync::Arc::clone(ctx.pool());
        let n = self.global_vertices.max(1) as f64;
        let g = &fragment.graph;
        let n_local = g.num_vertices();
        let mut partial = PageRankPartial {
            rank: VertexDenseMap::for_graph(g, 1.0 / n),
            mirror_share: VertexDenseMap::for_graph(g, 0.0),
            inner_ids: fragment.inner_vertices().to_vec(),
            inner_dense: fragment.inner_dense_indices().to_vec(),
            contrib: VertexDenseMap::new(n_local, 0.0),
            pending: DenseBitset::new(n_local),
        };
        for i in 0..n_local as u32 {
            partial.contrib[i] = self.contribution_of(query, fragment, &partial, i);
        }
        for &i in fragment.inner_dense_indices() {
            partial.pending.set(i);
        }
        self.local_iterate(query, fragment, &mut partial, &pool);
        self.emit_shares(query, fragment, &partial, ctx);
        partial
    }

    fn inceval(
        &self,
        query: &PageRankQuery,
        fragment: &Fragment<(), f64>,
        partial: &mut PageRankPartial,
        messages: &[(VertexId, f64)],
        ctx: &mut PieContext<f64>,
    ) {
        let g = &fragment.graph;
        let mut changed = false;
        for &(u, share) in messages {
            if let Some(o) = g.dense_index(u) {
                if fragment.is_outer_dense(o)
                    && (partial.mirror_share[o] - share).abs() >= query.tolerance / 2.0
                {
                    partial.mirror_share[o] = share;
                    partial.contrib[o] = query.damping * share;
                    // Only the cone downstream of the moved mirror needs
                    // re-sweeping; everything else is bitwise at fixpoint.
                    for &w in g.out_neighbors_dense(o) {
                        if fragment.is_inner_dense(w) {
                            partial.pending.set(w);
                        }
                    }
                    changed = true;
                }
            }
        }
        if !changed {
            return;
        }
        let pool = std::sync::Arc::clone(ctx.pool());
        self.local_iterate(query, fragment, partial, &pool);
        self.emit_shares(query, fragment, partial, ctx);
    }

    fn assemble(&self, partials: Vec<PageRankPartial>) -> HashMap<VertexId, f64> {
        let mut out = HashMap::new();
        // Accumulate the total leaked-system mass in deterministic fragment /
        // inner-vertex order, then rescale once: at the fixpoint this equals
        // redistributing the dangling mass uniformly every iteration (see the
        // module docs), and it keeps the distributed path free of global
        // per-iteration reductions.
        let mut total = 0.0f64;
        for partial in &partials {
            for &i in &partial.inner_dense {
                total += partial.rank[i];
            }
        }
        for partial in partials {
            for (&v, &i) in partial.inner_ids.iter().zip(&partial.inner_dense) {
                let r = partial.rank[i];
                out.insert(v, if total > 0.0 { r / total } else { r });
            }
        }
        out
    }

    fn aggregate(&self, a: &f64, b: &f64) -> f64 {
        // Only the owner of a vertex proposes its share, so conflicts should
        // not arise; prefer the larger share if they ever do.
        a.max(*b)
    }

    fn snapshot_partial(&self, partial: &PageRankPartial) -> Option<Vec<u8>> {
        use grape_core::Wire;
        let mut out = Vec::new();
        // Dense maps use the Vec layout: u32 length prefix, then elements.
        for dense in [&partial.rank, &partial.mirror_share, &partial.contrib] {
            out.extend_from_slice(&(dense.len() as u32).to_le_bytes());
            for value in dense.as_slice() {
                value.encode(&mut out);
            }
        }
        partial.inner_ids.encode(&mut out);
        partial.inner_dense.encode(&mut out);
        // The pending frontier: domain size, then the set indices. Restoring
        // it exactly matters — a replacement with a stale frontier would
        // re-sweep (or skip) different vertices than the lost worker.
        (partial.pending.len() as u32).encode(&mut out);
        partial
            .pending
            .iter_ones()
            .collect::<Vec<u32>>()
            .encode(&mut out);
        Some(out)
    }

    fn restore_partial(&self, bytes: &[u8]) -> Option<PageRankPartial> {
        use grape_core::{Wire, WireReader};
        let mut reader = WireReader::new(bytes);
        let rank = Vec::<f64>::decode(&mut reader).ok()?;
        let mirror_share = Vec::<f64>::decode(&mut reader).ok()?;
        let contrib = Vec::<f64>::decode(&mut reader).ok()?;
        let inner_ids = Vec::<VertexId>::decode(&mut reader).ok()?;
        let inner_dense = Vec::<u32>::decode(&mut reader).ok()?;
        let pending_len = u32::decode(&mut reader).ok()? as usize;
        let pending_ones = Vec::<u32>::decode(&mut reader).ok()?;
        reader.finish().ok()?;
        let mut pending = DenseBitset::new(pending_len);
        for i in pending_ones {
            if i as usize >= pending_len {
                return None;
            }
            pending.set(i);
        }
        Some(PageRankPartial {
            rank: VertexDenseMap::from_vec(rank),
            mirror_share: VertexDenseMap::from_vec(mirror_share),
            inner_ids,
            inner_dense,
            contrib: VertexDenseMap::from_vec(contrib),
            pending,
        })
    }

    fn incremental_eligible(&self, _profile: &grape_core::MutationProfile) -> bool {
        // Any mutation batch can be answered from the old converged ranks:
        // seeding from them converges to a valid quantized fixpoint. Unlike
        // SSSP/CC (unique fixpoints), the grid equations admit a cluster of
        // solutions, so a warm answer may differ from a cold run on the
        // updated graph — by at most
        // `PageRankQuery::fixpoint_cluster_radius(num_edges)` per vertex.
        true
    }

    fn seed_partial(
        &self,
        query: &PageRankQuery,
        fragment: &Fragment<(), f64>,
        snapshot: &[u8],
        dirty: &[VertexId],
        profile: &grape_core::MutationProfile,
        ctx: &mut PieContext<f64>,
    ) -> Option<PageRankPartial> {
        let old = self.restore_partial(snapshot)?;
        let pool = std::sync::Arc::clone(ctx.pool());
        let n = self.global_vertices.max(1) as f64;
        let g = &fragment.graph;
        let n_local = g.num_vertices();
        let mut partial = PageRankPartial {
            rank: VertexDenseMap::for_graph(g, 1.0 / n),
            mirror_share: VertexDenseMap::for_graph(g, 0.0),
            inner_ids: fragment.inner_vertices().to_vec(),
            inner_dense: fragment.inner_dense_indices().to_vec(),
            contrib: VertexDenseMap::new(n_local, 0.0),
            pending: DenseBitset::new(n_local),
        };
        // Carry the old converged inner ranks over by global id; vertices
        // inserted since start at the uniform prior like a cold run. Mirror
        // shares start at 0 exactly as in PEval — superstep-0 publications
        // re-deliver every owner share in round 1 and requeue the cones.
        let old_rank: std::collections::HashMap<VertexId, f64> = old
            .inner_ids
            .iter()
            .zip(&old.inner_dense)
            .map(|(&v, &i)| (v, old.rank[i]))
            .collect();
        for (&v, &i) in partial.inner_ids.iter().zip(&partial.inner_dense) {
            if let Some(&r) = old_rank.get(&v) {
                partial.rank[i] = r;
            }
        }
        for i in 0..n_local as u32 {
            partial.contrib[i] = self.contribution_of(query, fragment, &partial, i);
        }
        if profile.vertex_set_changed() {
            // The teleport base (1-d)/n changed for everyone: full frontier.
            for &i in fragment.inner_dense_indices() {
                partial.pending.set(i);
            }
        } else {
            // Only vertices whose in-contributions can differ from the old
            // fixpoint need a first look: the dirty vertices themselves
            // (their in-edge sets may have changed) and their out-neighbours
            // (a changed out-degree moves the per-edge share).
            for &v in dirty {
                let Some(i) = g.dense_index(v) else { continue };
                if fragment.is_inner_dense(i) {
                    partial.pending.set(i);
                }
                for &w in g.out_neighbors_dense(i) {
                    if fragment.is_inner_dense(w) {
                        partial.pending.set(w);
                    }
                }
            }
        }
        self.local_iterate(query, fragment, &mut partial, &pool);
        self.emit_shares(query, fragment, &partial, ctx);
        Some(partial)
    }

    fn name(&self) -> &str {
        "pagerank"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_core::GrapeEngine;
    use grape_graph::generators::{barabasi_albert, erdos_renyi};
    use grape_graph::GraphBuilder;
    use grape_partition::{BuiltinStrategy, HashPartitioner, Partitioner};

    #[test]
    fn partial_snapshot_roundtrips_bit_identically() {
        let g = barabasi_albert(150, 2, 17).unwrap();
        let assignment = HashPartitioner.partition(&g, 2);
        let frags = grape_partition::build_fragments(&g, &assignment);
        let program = PageRankProgram {
            global_vertices: g.num_vertices(),
        };
        let mut ctx = PieContext::new();
        let slots: Vec<u32> = (0..frags[1].border_vertices().len() as u32).collect();
        ctx.configure_borders(frags[1].border_vertices(), &slots);
        let mut partial = program.peval(&PageRankQuery::default(), &frags[1], &mut ctx);
        // Leave a non-trivial pending frontier in the snapshot.
        for &i in frags[1].inner_dense_indices().iter().take(3) {
            partial.pending.set(i);
        }
        let bytes = program
            .snapshot_partial(&partial)
            .expect("pagerank snapshots");
        let back = program.restore_partial(&bytes).expect("restore");
        assert_eq!(partial.rank.as_slice(), back.rank.as_slice());
        assert_eq!(
            partial.mirror_share.as_slice(),
            back.mirror_share.as_slice()
        );
        assert_eq!(partial.inner_ids, back.inner_ids);
        assert_eq!(partial.inner_dense, back.inner_dense);
        assert_eq!(partial.contrib.as_slice(), back.contrib.as_slice());
        assert_eq!(
            partial.pending.iter_ones().collect::<Vec<_>>(),
            back.pending.iter_ones().collect::<Vec<_>>()
        );
        assert_eq!(partial.pending.len(), back.pending.len());
        assert!(program.restore_partial(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn sequential_pagerank_sums_to_one_even_with_dangling_vertices() {
        // A hub-and-spoke graph where every sink is dangling: vertices
        // 301..=330 receive edges but have no out-edges. Dropping their rank
        // mass used to make the totals drift below 1; the uniform
        // redistribution keeps the distribution normalized.
        let mut b = GraphBuilder::<(), f64>::new();
        let base = barabasi_albert(300, 3, 17).unwrap();
        for (s, d, w) in base.edges() {
            b.add_edge(s, d, *w);
        }
        for sink in 301..=330u64 {
            b.add_edge(sink % 300, sink, 1.0);
        }
        let g = b.build().unwrap();
        assert!(
            g.vertices().filter(|v| g.out_degree(*v) == 0).count() >= 30,
            "the test graph must actually contain dangling vertices"
        );
        let pr = sequential_pagerank(&g, &PageRankQuery::default(), 40);
        let total: f64 = pr.values().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "ranks must sum to 1 even with dangling vertices, got {total}"
        );
        let hub = g
            .vertices()
            .max_by_key(|v| g.in_degree(*v) + g.out_degree(*v))
            .unwrap();
        let avg = 1.0 / g.num_vertices() as f64;
        assert!(pr[&hub] > 2.0 * avg);
    }

    #[test]
    fn distributed_pagerank_matches_sequential_on_dangling_graph() {
        // The distributed program folds the dangling correction into a single
        // Assemble-time rescale; at the fixpoint that equals the sequential
        // per-iteration redistribution.
        let mut b = GraphBuilder::<(), f64>::new();
        let base = erdos_renyi(120, 0.05, 3).unwrap();
        for (s, d, w) in base.edges() {
            b.add_edge(s, d, *w);
        }
        for sink in 200..215u64 {
            b.add_edge(sink % 120, sink, 1.0);
        }
        let g = b.build().unwrap();
        assert!(g.vertices().any(|v| g.out_degree(v) == 0));
        let query = PageRankQuery {
            max_local_iterations: 120,
            tolerance: 1e-10,
            ..Default::default()
        };
        let reference = sequential_pagerank(&g, &query, 120);
        let program = PageRankProgram::new(g.num_vertices());
        for k in [1usize, 4] {
            let result = GrapeEngine::new(program)
                .run_on_graph(&query, &g, &HashPartitioner.partition(&g, k))
                .unwrap();
            let total: f64 = result.output.values().sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "k={k}: distributed ranks must sum to 1, got {total}"
            );
            for (v, r) in &reference {
                let got = result.output.get(v).copied().unwrap_or(0.0);
                assert!(
                    (got - r).abs() < 5e-3,
                    "k={k} vertex {v}: {got} vs sequential {r}"
                );
            }
        }
    }

    #[test]
    fn star_graph_centre_dominates() {
        let mut b = GraphBuilder::<(), f64>::new().symmetric(true);
        for leaf in 1..=20u64 {
            b.add_edge(leaf, 0, 1.0);
        }
        let g = b.build().unwrap();
        let pr = sequential_pagerank(&g, &PageRankQuery::default(), 30);
        for leaf in 1..=20u64 {
            assert!(pr[&0] > pr[&leaf] * 5.0);
        }
    }

    #[test]
    fn pie_pagerank_approximates_sequential() {
        let g = erdos_renyi(150, 0.05, 9).unwrap();
        let query = PageRankQuery {
            max_local_iterations: 80,
            tolerance: 1e-9,
            ..Default::default()
        };
        let reference = sequential_pagerank(&g, &query, 80);
        let assignment = HashPartitioner.partition(&g, 4);
        let program = PageRankProgram::new(g.num_vertices());
        let result = GrapeEngine::new(program)
            .run_on_graph(&query, &g, &assignment)
            .unwrap();
        let mut max_err = 0.0f64;
        for (v, r) in &reference {
            let got = result.output.get(v).copied().unwrap_or(0.0);
            max_err = max_err.max((got - r).abs());
        }
        assert!(
            max_err < 5e-3,
            "distributed PageRank deviates too much: {max_err}"
        );
        let total: f64 = result.output.values().sum();
        assert!(
            (total - 1.0).abs() < 0.05,
            "mass roughly preserved: {total}"
        );
    }

    #[test]
    fn pie_pagerank_is_partition_invariant() {
        let g = barabasi_albert(200, 3, 23).unwrap();
        let query = PageRankQuery {
            tolerance: 1e-9,
            max_local_iterations: 80,
            ..Default::default()
        };
        let program = PageRankProgram::new(g.num_vertices());
        let r1 = GrapeEngine::new(program)
            .run_on_graph(&query, &g, &BuiltinStrategy::Hash.partition(&g, 3))
            .unwrap();
        let r2 = GrapeEngine::new(program)
            .run_on_graph(&query, &g, &BuiltinStrategy::MetisLike.partition(&g, 6))
            .unwrap();
        for v in g.vertices() {
            let a = r1.output[&v];
            let b = r2.output[&v];
            assert!(
                (a - b).abs() < 5e-3,
                "vertex {v} rank differs across partitions: {a} vs {b}"
            );
        }
    }

    #[test]
    fn single_fragment_matches_sequential_exactly_in_shape() {
        let g = barabasi_albert(100, 2, 5).unwrap();
        let query = PageRankQuery {
            tolerance: 1e-10,
            max_local_iterations: 100,
            ..Default::default()
        };
        let program = PageRankProgram::new(g.num_vertices());
        let result = GrapeEngine::new(program)
            .run_on_graph(&query, &g, &HashPartitioner.partition(&g, 1))
            .unwrap();
        let reference = sequential_pagerank(&g, &query, 100);
        for v in g.vertices() {
            assert!((result.output[&v] - reference[&v]).abs() < 1e-6);
        }
        assert_eq!(result.stats.supersteps, 1);
    }

    #[test]
    fn frontier_sweep_is_bitwise_equal_to_a_full_jacobi_pull() {
        // On a single fragment, the delta-frontier sweep must reproduce a
        // naive full Jacobi pull bit-for-bit: skipped vertices would have
        // pulled identical inputs in the identical order.
        let g = barabasi_albert(300, 3, 7).unwrap();
        let n = g.num_vertices();
        let query = PageRankQuery {
            max_local_iterations: 50,
            tolerance: 1e-12,
            ..Default::default()
        };
        let assignment = HashPartitioner.partition(&g, 1);
        let fragments = grape_core::build_fragments(&g, &assignment);
        let fragment = &fragments[0];
        let fg = &fragment.graph;
        let program = PageRankProgram::new(n);
        let mut ctx = grape_core::PieContext::<f64>::new();
        let partial = program.peval(&query, fragment, &mut ctx);

        let base = (1.0 - query.damping) / n as f64;
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..query.max_local_iterations {
            // Same grid equations as the program: quantized per-edge shares.
            let contrib: Vec<f64> = (0..n as u32)
                .map(|i| {
                    let out = fg.out_degree_dense(i);
                    if out == 0 {
                        0.0
                    } else {
                        query.damping * quantize(rank[i as usize] / out as f64, query.tolerance)
                    }
                })
                .collect();
            let mut next = vec![0.0f64; n];
            let mut moved = false;
            for v in 0..n as u32 {
                let mut new = base;
                for &u in fg.in_neighbors_dense(v) {
                    new += contrib[u as usize];
                }
                moved |= new.to_bits() != rank[v as usize].to_bits();
                next[v as usize] = new;
            }
            rank = next;
            if !moved {
                break;
            }
        }
        for i in 0..n as u32 {
            assert_eq!(
                partial.rank[i].to_bits(),
                rank[i as usize].to_bits(),
                "dense index {i}"
            );
        }
    }

    #[test]
    fn pagerank_is_bit_identical_across_thread_counts() {
        use grape_core::par::ThreadCount;
        use grape_core::EngineConfig;
        let g = barabasi_albert(400, 3, 29).unwrap();
        let query = PageRankQuery {
            tolerance: 1e-9,
            max_local_iterations: 80,
            ..Default::default()
        };
        let program = PageRankProgram::new(g.num_vertices());
        let assignment = HashPartitioner.partition(&g, 4);
        let run = |threads: u32| {
            GrapeEngine::new(program)
                .with_config(EngineConfig {
                    threads_per_worker: ThreadCount::Fixed(threads),
                    ..Default::default()
                })
                .run_on_graph(&query, &g, &assignment)
                .unwrap()
        };
        let reference = run(1);
        for threads in [2u32, 4, 8] {
            let result = run(threads);
            assert_eq!(result.stats.supersteps, reference.stats.supersteps);
            for (v, r) in &reference.output {
                assert_eq!(
                    result.output[v].to_bits(),
                    r.to_bits(),
                    "vertex {v} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn query_defaults_and_declarations() {
        let q = PageRankQuery::default();
        assert_eq!(q.damping, 0.85);
        assert!(q.tolerance > 0.0);
        assert_eq!(PageRankProgram::new(10).global_vertices, 10);
        assert_eq!(PageRankProgram::new(10).name(), "pagerank");
        assert_eq!(PageRankProgram::new(10).aggregate(&0.25, &0.5), 0.5);
        assert_eq!(quantize(0.123456, 1e-3), 0.123);
    }
}
