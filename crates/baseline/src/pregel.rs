//! Pregel-like vertex-centric BSP engine (the Giraph stand-in of Table 1).
//!
//! Users implement [`VertexProgram`] — the "think like a vertex" model the
//! paper contrasts with GRAPE: a `compute` function invoked per active vertex
//! per superstep, communicating only through messages along edges and
//! halting by vote. The engine partitions vertices over worker threads,
//! executes supersteps with a barrier between them, optionally applies a
//! combiner, and accounts every message that crosses a worker boundary.
//!
//! Internally every per-vertex table (state, active flag, inbox) is a flat
//! array keyed by the graph's dense CSR indices, sharded contiguously per
//! worker — the per-superstep shard/merge dance over `HashMap`s of the
//! original formulation is gone, and the only id translation left is one
//! `dense_index` lookup per *sent* message at the routing boundary (the
//! public [`VertexContext`] API stays in global ids).

use crate::stats::BaselineStats;
use grape_comm::MessageSize;
use grape_graph::{CsrGraph, VertexId};
use std::collections::HashMap;
use std::time::Instant;

/// A vertex-centric program in the Pregel style.
pub trait VertexProgram: Send + Sync {
    /// Query parameters (e.g. the SSSP source).
    type Query: Clone + Send + Sync;
    /// Per-vertex state.
    type State: Clone + Send + Sync;
    /// Message type exchanged along edges.
    type Message: Clone + Send + Sync + MessageSize;

    /// Initial state of a vertex.
    fn init(&self, query: &Self::Query, vertex: VertexId) -> Self::State;

    /// Whether the vertex starts active in superstep 0 (default: all do).
    fn initially_active(&self, _query: &Self::Query, _vertex: VertexId) -> bool {
        true
    }

    /// The per-vertex compute function.
    fn compute(
        &self,
        query: &Self::Query,
        vertex: VertexId,
        state: &mut Self::State,
        messages: &[Self::Message],
        ctx: &mut VertexContext<'_, Self::Message>,
    );

    /// Optional message combiner (e.g. `min` for SSSP): combines two messages
    /// headed to the same destination. Returning `None` disables combining.
    fn combine(&self, _a: &Self::Message, _b: &Self::Message) -> Option<Self::Message> {
        None
    }

    /// Program name used in statistics.
    fn name(&self) -> &str {
        "vertex-program"
    }
}

/// What a vertex sees while computing: its out-edges, the current superstep,
/// an outbox and a halt flag.
pub struct VertexContext<'a, M> {
    superstep: usize,
    out_edges: &'a [(VertexId, f64)],
    outbox: &'a mut Vec<(VertexId, M)>,
    halt: bool,
}

impl<'a, M> VertexContext<'a, M> {
    /// Current superstep number (0-based).
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// The vertex's out-edges as `(neighbour, weight)` pairs.
    pub fn out_edges(&self) -> &[(VertexId, f64)] {
        self.out_edges
    }

    /// Sends a message to any vertex (usually a neighbour).
    pub fn send(&mut self, to: VertexId, message: M) {
        self.outbox.push((to, message));
    }

    /// Votes to halt; the vertex is reactivated by incoming messages.
    pub fn vote_to_halt(&mut self) {
        self.halt = true;
    }
}

/// The Pregel-like engine.
#[derive(Debug, Clone, Copy)]
pub struct PregelEngine {
    /// Number of worker threads.
    pub num_workers: usize,
    /// Safety bound on supersteps.
    pub max_supersteps: usize,
    /// Whether the program's combiner (if any) is applied before shipping.
    pub use_combiner: bool,
}

impl PregelEngine {
    /// Creates an engine with `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        Self {
            num_workers: num_workers.max(1),
            max_supersteps: 100_000,
            use_combiner: true,
        }
    }

    fn worker_of(&self, v: VertexId) -> usize {
        (v.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.num_workers as u64) as usize
    }

    /// Runs the program to quiescence and returns the final vertex states
    /// plus run statistics.
    pub fn run<P: VertexProgram>(
        &self,
        program: &P,
        query: &P::Query,
        graph: &CsrGraph<(), f64>,
    ) -> (HashMap<VertexId, P::State>, BaselineStats) {
        let started = Instant::now();
        let n = graph.num_vertices();

        // Shard the dense index space contiguously per worker: vertex at
        // dense index i lives at slot `local_of[i]` of worker `worker_of[i]`.
        let mut worker_of_dense = vec![0u32; n];
        let mut local_of_dense = vec![0u32; n];
        let mut vertices_of: Vec<Vec<u32>> = vec![Vec::new(); self.num_workers];
        for i in 0..n as u32 {
            let w = self.worker_of(graph.vertex_of(i));
            worker_of_dense[i as usize] = w as u32;
            local_of_dense[i as usize] = vertices_of[w].len() as u32;
            vertices_of[w].push(i);
        }
        // One flat adjacency snapshot in the public (global-id) shape, so the
        // context can expose `&[(VertexId, f64)]` without per-call allocation.
        let mut adj_offsets = Vec::with_capacity(n + 1);
        let mut adj_entries: Vec<(VertexId, f64)> = Vec::with_capacity(graph.num_edges());
        adj_offsets.push(0usize);
        for i in 0..n as u32 {
            adj_entries.extend(
                graph
                    .out_edges_dense(i)
                    .map(|(d, w)| (graph.vertex_of(d), *w)),
            );
            adj_offsets.push(adj_entries.len());
        }

        // Per-worker flat tables, aligned with `vertices_of[w]`.
        let mut states: Vec<Vec<P::State>> = vertices_of
            .iter()
            .map(|vs| {
                vs.iter()
                    .map(|&i| program.init(query, graph.vertex_of(i)))
                    .collect()
            })
            .collect();
        let mut active: Vec<Vec<bool>> = vertices_of
            .iter()
            .map(|vs| {
                vs.iter()
                    .map(|&i| program.initially_active(query, graph.vertex_of(i)))
                    .collect()
            })
            .collect();
        let mut inbox: Vec<Vec<Vec<P::Message>>> = vertices_of
            .iter()
            .map(|vs| vec![Vec::new(); vs.len()])
            .collect();
        let mut pending_messages = 0usize;

        let mut stats = BaselineStats {
            engine: format!("pregel/{}", program.name()),
            num_workers: self.num_workers,
            ..Default::default()
        };

        // Combiner scratch: one pending message slot per dense vertex,
        // reused across workers and supersteps (cleared via the touched
        // list).
        let mut combine_slot: Vec<Option<P::Message>> = vec![None; n];

        for superstep in 0..self.max_supersteps {
            let any_active = pending_messages > 0 || active.iter().any(|w| w.iter().any(|a| *a));
            if !any_active {
                break;
            }
            stats.supersteps = superstep + 1;

            // Each worker computes its vertices over its own shard slices and
            // returns its outbox.
            let adj_offsets = &adj_offsets;
            let adj_entries = &adj_entries;
            let outboxes: Vec<Vec<(VertexId, P::Message)>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (((w_states, w_active), w_inbox), w_vertices) in states
                    .iter_mut()
                    .zip(active.iter_mut())
                    .zip(inbox.iter_mut())
                    .zip(vertices_of.iter())
                {
                    handles.push(scope.spawn(move || {
                        let mut outbox: Vec<(VertexId, P::Message)> = Vec::new();
                        for (li, &i) in w_vertices.iter().enumerate() {
                            let messages = std::mem::take(&mut w_inbox[li]);
                            let is_active = w_active[li] || !messages.is_empty();
                            if !is_active {
                                continue;
                            }
                            let i = i as usize;
                            let out_edges = &adj_entries[adj_offsets[i]..adj_offsets[i + 1]];
                            let mut ctx = VertexContext {
                                superstep,
                                out_edges,
                                outbox: &mut outbox,
                                halt: false,
                            };
                            program.compute(
                                query,
                                graph.vertex_of(i as u32),
                                &mut w_states[li],
                                &messages,
                                &mut ctx,
                            );
                            w_active[li] = !ctx.halt;
                        }
                        outbox
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker"))
                    .collect()
            });

            // Route messages into the per-vertex inboxes. The single
            // `dense_index` probe per message is the id-translation boundary;
            // everything after it is indexed.
            pending_messages = 0;
            let mut touched: Vec<u32> = Vec::new();
            for (worker, outbox) in outboxes.into_iter().enumerate() {
                let mut deliver = |dst_dense: u32,
                                   msg: P::Message,
                                   inbox: &mut Vec<Vec<Vec<P::Message>>>,
                                   pending: &mut usize| {
                    let dw = worker_of_dense[dst_dense as usize] as usize;
                    if dw != worker {
                        stats.messages += 1;
                        stats.bytes += msg.size_bytes() as u64 + 8;
                    }
                    inbox[dw][local_of_dense[dst_dense as usize] as usize].push(msg);
                    *pending += 1;
                };
                for (dst, msg) in outbox {
                    let Some(dense) = graph.dense_index(dst) else {
                        // Message to a vertex outside the graph: dropped.
                        continue;
                    };
                    if !self.use_combiner {
                        deliver(dense, msg, &mut inbox, &mut pending_messages);
                        continue;
                    }
                    // Combine per (source worker, destination vertex), as
                    // Giraph combiners do, before the message leaves the
                    // worker.
                    match combine_slot[dense as usize].take() {
                        None => {
                            combine_slot[dense as usize] = Some(msg);
                            touched.push(dense);
                        }
                        Some(existing) => match program.combine(&existing, &msg) {
                            Some(folded) => {
                                combine_slot[dense as usize] = Some(folded);
                            }
                            None => {
                                // No combiner: ship the existing one now.
                                deliver(dense, existing, &mut inbox, &mut pending_messages);
                                combine_slot[dense as usize] = Some(msg);
                            }
                        },
                    }
                }
                // Ship this worker's combined messages.
                for dense in touched.drain(..) {
                    if let Some(msg) = combine_slot[dense as usize].take() {
                        deliver(dense, msg, &mut inbox, &mut pending_messages);
                    }
                }
            }
        }

        stats.wall_time = started.elapsed();
        let mut merged = HashMap::with_capacity(n);
        for (w_states, w_vertices) in states.into_iter().zip(vertices_of.iter()) {
            for (s, &i) in w_states.into_iter().zip(w_vertices.iter()) {
                merged.insert(graph.vertex_of(i), s);
            }
        }
        (merged, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{PregelCc, PregelSssp};
    use grape_graph::generators::barabasi_albert;
    use grape_graph::GraphBuilder;

    #[test]
    fn sssp_on_a_chain_takes_one_superstep_per_hop() {
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..20u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let engine = PregelEngine::new(4);
        let (states, stats) = engine.run(&PregelSssp, &0, &g);
        for v in 0..=20u64 {
            assert_eq!(states[&v], v as f64);
        }
        assert!(
            stats.supersteps >= 20,
            "vertex-centric SSSP needs O(diameter) supersteps, got {}",
            stats.supersteps
        );
        assert!(stats.messages > 0);
    }

    #[test]
    fn sssp_matches_dijkstra_on_random_graph() {
        let g = barabasi_albert(300, 3, 3).unwrap();
        let reference = grape_algo::sssp::sequential_sssp(&g, 0);
        let engine = PregelEngine::new(6);
        let (states, _) = engine.run(&PregelSssp, &0, &g);
        for (v, d) in &reference {
            assert!((states[v] - d).abs() < 1e-9, "vertex {v}");
        }
        for (v, d) in &states {
            if d.is_finite() {
                assert!(reference.contains_key(v), "vertex {v} wrongly reached");
            }
        }
    }

    #[test]
    fn cc_matches_reference() {
        let g = barabasi_albert(200, 2, 8).unwrap();
        let reference = grape_algo::cc::sequential_cc(&g);
        let engine = PregelEngine::new(4);
        let (states, _) = engine.run(&PregelCc, &(), &g);
        for v in g.vertices() {
            assert_eq!(states[&v], reference[&v], "vertex {v}");
        }
    }

    #[test]
    fn combiner_reduces_messages() {
        let g = barabasi_albert(400, 4, 5).unwrap();
        let with = PregelEngine {
            use_combiner: true,
            ..PregelEngine::new(4)
        };
        let without = PregelEngine {
            use_combiner: false,
            ..PregelEngine::new(4)
        };
        let (_, s_with) = with.run(&PregelSssp, &0, &g);
        let (_, s_without) = without.run(&PregelSssp, &0, &g);
        assert!(
            s_with.messages <= s_without.messages,
            "combining can only reduce traffic: {} vs {}",
            s_with.messages,
            s_without.messages
        );
    }

    #[test]
    fn empty_graph_terminates_immediately() {
        let g = CsrGraph::<(), f64>::from_records(vec![], vec![], true).unwrap();
        let engine = PregelEngine::new(2);
        let (states, stats) = engine.run(&PregelSssp, &0, &g);
        assert!(states.is_empty());
        assert!(stats.supersteps <= 1);
    }
}
