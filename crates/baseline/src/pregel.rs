//! Pregel-like vertex-centric BSP engine (the Giraph stand-in of Table 1).
//!
//! Users implement [`VertexProgram`] — the "think like a vertex" model the
//! paper contrasts with GRAPE: a `compute` function invoked per active vertex
//! per superstep, communicating only through messages along edges and
//! halting by vote. The engine partitions vertices over worker threads,
//! executes supersteps with a barrier between them, optionally applies a
//! combiner, and accounts every message that crosses a worker boundary.

use crate::stats::BaselineStats;
use grape_comm::MessageSize;
use grape_graph::{CsrGraph, VertexId};
use std::collections::HashMap;
use std::time::Instant;

/// Per-worker outcome of one superstep: updated vertex states, updated
/// active flags, and the outbox of `(target, message)` pairs.
type WorkerOutcome<S, M> = (
    HashMap<VertexId, S>,
    HashMap<VertexId, bool>,
    Vec<(VertexId, M)>,
);

/// A vertex-centric program in the Pregel style.
pub trait VertexProgram: Send + Sync {
    /// Query parameters (e.g. the SSSP source).
    type Query: Clone + Send + Sync;
    /// Per-vertex state.
    type State: Clone + Send + Sync;
    /// Message type exchanged along edges.
    type Message: Clone + Send + Sync + MessageSize;

    /// Initial state of a vertex.
    fn init(&self, query: &Self::Query, vertex: VertexId) -> Self::State;

    /// Whether the vertex starts active in superstep 0 (default: all do).
    fn initially_active(&self, _query: &Self::Query, _vertex: VertexId) -> bool {
        true
    }

    /// The per-vertex compute function.
    fn compute(
        &self,
        query: &Self::Query,
        vertex: VertexId,
        state: &mut Self::State,
        messages: &[Self::Message],
        ctx: &mut VertexContext<'_, Self::Message>,
    );

    /// Optional message combiner (e.g. `min` for SSSP): combines two messages
    /// headed to the same destination. Returning `None` disables combining.
    fn combine(&self, _a: &Self::Message, _b: &Self::Message) -> Option<Self::Message> {
        None
    }

    /// Program name used in statistics.
    fn name(&self) -> &str {
        "vertex-program"
    }
}

/// What a vertex sees while computing: its out-edges, the current superstep,
/// an outbox and a halt flag.
pub struct VertexContext<'a, M> {
    superstep: usize,
    out_edges: &'a [(VertexId, f64)],
    outbox: &'a mut Vec<(VertexId, M)>,
    halt: bool,
}

impl<'a, M> VertexContext<'a, M> {
    /// Current superstep number (0-based).
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// The vertex's out-edges as `(neighbour, weight)` pairs.
    pub fn out_edges(&self) -> &[(VertexId, f64)] {
        self.out_edges
    }

    /// Sends a message to any vertex (usually a neighbour).
    pub fn send(&mut self, to: VertexId, message: M) {
        self.outbox.push((to, message));
    }

    /// Votes to halt; the vertex is reactivated by incoming messages.
    pub fn vote_to_halt(&mut self) {
        self.halt = true;
    }
}

/// The Pregel-like engine.
#[derive(Debug, Clone, Copy)]
pub struct PregelEngine {
    /// Number of worker threads.
    pub num_workers: usize,
    /// Safety bound on supersteps.
    pub max_supersteps: usize,
    /// Whether the program's combiner (if any) is applied before shipping.
    pub use_combiner: bool,
}

impl PregelEngine {
    /// Creates an engine with `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        Self {
            num_workers: num_workers.max(1),
            max_supersteps: 100_000,
            use_combiner: true,
        }
    }

    fn worker_of(&self, v: VertexId) -> usize {
        (v.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.num_workers as u64) as usize
    }

    /// Runs the program to quiescence and returns the final vertex states
    /// plus run statistics.
    pub fn run<P: VertexProgram>(
        &self,
        program: &P,
        query: &P::Query,
        graph: &CsrGraph<(), f64>,
    ) -> (HashMap<VertexId, P::State>, BaselineStats) {
        let started = Instant::now();
        // Per-worker vertex lists and adjacency snapshots.
        let mut vertices_of: Vec<Vec<VertexId>> = vec![Vec::new(); self.num_workers];
        for v in graph.vertices() {
            vertices_of[self.worker_of(v)].push(v);
        }
        let adjacency: HashMap<VertexId, Vec<(VertexId, f64)>> = graph
            .vertices()
            .map(|v| (v, graph.out_edges(v).map(|(d, w)| (d, *w)).collect()))
            .collect();

        // Global state / activity tables (indexed by vertex).
        let mut states: HashMap<VertexId, P::State> = graph
            .vertices()
            .map(|v| (v, program.init(query, v)))
            .collect();
        let mut active: HashMap<VertexId, bool> = graph
            .vertices()
            .map(|v| (v, program.initially_active(query, v)))
            .collect();
        let mut inboxes: HashMap<VertexId, Vec<P::Message>> = HashMap::new();

        let mut stats = BaselineStats {
            engine: format!("pregel/{}", program.name()),
            num_workers: self.num_workers,
            ..Default::default()
        };

        for superstep in 0..self.max_supersteps {
            let any_active = active.values().any(|a| *a) || !inboxes.is_empty();
            if !any_active {
                break;
            }
            stats.supersteps = superstep + 1;

            // Move state/inbox entries into per-worker shards so worker
            // threads can mutate them independently.
            let mut shard_states: Vec<HashMap<VertexId, P::State>> =
                vec![HashMap::new(); self.num_workers];
            let mut shard_inbox: Vec<HashMap<VertexId, Vec<P::Message>>> =
                vec![HashMap::new(); self.num_workers];
            let mut shard_active: Vec<HashMap<VertexId, bool>> =
                vec![HashMap::new(); self.num_workers];
            for (v, s) in states.drain() {
                shard_states[self.worker_of(v)].insert(v, s);
            }
            for (v, m) in inboxes.drain() {
                shard_inbox[self.worker_of(v)].insert(v, m);
            }
            for (v, a) in active.drain() {
                shard_active[self.worker_of(v)].insert(v, a);
            }

            // Each worker computes its vertices and returns its outbox.
            let results: Vec<WorkerOutcome<P::State, P::Message>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for ((mut w_states, w_inbox), (mut w_active, w_vertices)) in shard_states
                    .into_iter()
                    .zip(shard_inbox)
                    .zip(shard_active.into_iter().zip(vertices_of.iter()))
                {
                    let adjacency = &adjacency;
                    handles.push(scope.spawn(move || {
                        let mut outbox: Vec<(VertexId, P::Message)> = Vec::new();
                        for &v in w_vertices {
                            let messages = w_inbox.get(&v).map(|m| m.as_slice()).unwrap_or(&[]);
                            let is_active =
                                w_active.get(&v).copied().unwrap_or(false) || !messages.is_empty();
                            if !is_active {
                                continue;
                            }
                            let state = w_states.get_mut(&v).expect("state exists");
                            let empty: Vec<(VertexId, f64)> = Vec::new();
                            let out_edges = adjacency.get(&v).unwrap_or(&empty);
                            let mut ctx = VertexContext {
                                superstep,
                                out_edges,
                                outbox: &mut outbox,
                                halt: false,
                            };
                            program.compute(query, v, state, messages, &mut ctx);
                            w_active.insert(v, !ctx.halt);
                        }
                        (w_states, w_active, outbox)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker"))
                    .collect()
            });

            // Merge shards back and route messages.
            let mut combined: HashMap<(usize, VertexId), P::Message> = HashMap::new();
            let mut routed: HashMap<VertexId, Vec<P::Message>> = HashMap::new();
            for (worker, (w_states, w_active, outbox)) in results.into_iter().enumerate() {
                states.extend(w_states);
                active.extend(w_active);
                for (dst, msg) in outbox {
                    let dst_worker = self.worker_of(dst);
                    if self.use_combiner {
                        // Combine per (source worker, destination vertex), as
                        // Giraph combiners do, before the message leaves the
                        // worker.
                        match combined.remove(&(worker, dst)) {
                            None => {
                                combined.insert((worker, dst), msg);
                            }
                            Some(existing) => match program.combine(&existing, &msg) {
                                Some(folded) => {
                                    combined.insert((worker, dst), folded);
                                }
                                None => {
                                    // No combiner: ship the existing one now.
                                    if dst_worker != worker {
                                        stats.messages += 1;
                                        stats.bytes += existing.size_bytes() as u64 + 8;
                                    }
                                    routed.entry(dst).or_default().push(existing);
                                    combined.insert((worker, dst), msg);
                                }
                            },
                        }
                    } else {
                        if dst_worker != worker {
                            stats.messages += 1;
                            stats.bytes += msg.size_bytes() as u64 + 8;
                        }
                        routed.entry(dst).or_default().push(msg);
                    }
                }
            }
            for ((worker, dst), msg) in combined {
                if self.worker_of(dst) != worker {
                    stats.messages += 1;
                    stats.bytes += msg.size_bytes() as u64 + 8;
                }
                routed.entry(dst).or_default().push(msg);
            }
            inboxes = routed;
        }

        stats.wall_time = started.elapsed();
        (states, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{PregelCc, PregelSssp};
    use grape_graph::generators::barabasi_albert;
    use grape_graph::GraphBuilder;

    #[test]
    fn sssp_on_a_chain_takes_one_superstep_per_hop() {
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..20u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let engine = PregelEngine::new(4);
        let (states, stats) = engine.run(&PregelSssp, &0, &g);
        for v in 0..=20u64 {
            assert_eq!(states[&v], v as f64);
        }
        assert!(
            stats.supersteps >= 20,
            "vertex-centric SSSP needs O(diameter) supersteps, got {}",
            stats.supersteps
        );
        assert!(stats.messages > 0);
    }

    #[test]
    fn sssp_matches_dijkstra_on_random_graph() {
        let g = barabasi_albert(300, 3, 3).unwrap();
        let reference = grape_algo::sssp::sequential_sssp(&g, 0);
        let engine = PregelEngine::new(6);
        let (states, _) = engine.run(&PregelSssp, &0, &g);
        for (v, d) in &reference {
            assert!((states[v] - d).abs() < 1e-9, "vertex {v}");
        }
        for (v, d) in &states {
            if d.is_finite() {
                assert!(reference.contains_key(v), "vertex {v} wrongly reached");
            }
        }
    }

    #[test]
    fn cc_matches_reference() {
        let g = barabasi_albert(200, 2, 8).unwrap();
        let reference = grape_algo::cc::sequential_cc(&g);
        let engine = PregelEngine::new(4);
        let (states, _) = engine.run(&PregelCc, &(), &g);
        for v in g.vertices() {
            assert_eq!(states[&v], reference[&v], "vertex {v}");
        }
    }

    #[test]
    fn combiner_reduces_messages() {
        let g = barabasi_albert(400, 4, 5).unwrap();
        let with = PregelEngine {
            use_combiner: true,
            ..PregelEngine::new(4)
        };
        let without = PregelEngine {
            use_combiner: false,
            ..PregelEngine::new(4)
        };
        let (_, s_with) = with.run(&PregelSssp, &0, &g);
        let (_, s_without) = without.run(&PregelSssp, &0, &g);
        assert!(
            s_with.messages <= s_without.messages,
            "combining can only reduce traffic: {} vs {}",
            s_with.messages,
            s_without.messages
        );
    }

    #[test]
    fn empty_graph_terminates_immediately() {
        let g = CsrGraph::<(), f64>::from_records(vec![], vec![], true).unwrap();
        let engine = PregelEngine::new(2);
        let (states, stats) = engine.run(&PregelSssp, &0, &g);
        assert!(states.is_empty());
        assert!(stats.supersteps <= 1);
    }
}
