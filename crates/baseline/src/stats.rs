//! Statistics shared by all baseline engines.

use std::time::Duration;

/// Run statistics of a baseline engine, mirroring the fields the paper
/// reports for Giraph / GraphLab / Blogel in Table 1.
#[derive(Debug, Clone, Default)]
pub struct BaselineStats {
    /// Engine name (`pregel`, `gas`, `blogel`).
    pub engine: String,
    /// Number of workers.
    pub num_workers: usize,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Messages crossing worker boundaries.
    pub messages: u64,
    /// Bytes crossing worker boundaries.
    pub bytes: u64,
    /// Wall-clock time of the run.
    pub wall_time: Duration,
}

impl BaselineStats {
    /// Communication volume in megabytes (10^6 bytes).
    pub fn megabytes(&self) -> f64 {
        self.bytes as f64 / 1_000_000.0
    }

    /// One-line summary used in benchmark tables.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} workers, {} supersteps, {:.3}s, {} msgs, {:.3} MB",
            self.engine,
            self.num_workers,
            self.supersteps,
            self.wall_time.as_secs_f64(),
            self.messages,
            self.megabytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_and_megabytes() {
        let s = BaselineStats {
            engine: "pregel".into(),
            num_workers: 4,
            supersteps: 30,
            messages: 1_000,
            bytes: 3_000_000,
            wall_time: Duration::from_secs(2),
        };
        assert!((s.megabytes() - 3.0).abs() < 1e-9);
        assert!(s.summary().contains("pregel"));
        assert!(s.summary().contains("30 supersteps"));
    }
}
