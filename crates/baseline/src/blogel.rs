//! Blogel-like block-centric engine.
//!
//! Blogel ("think like a block") groups vertices into blocks and lets a
//! *block* compute function process a whole block sequentially per
//! superstep, exchanging messages between blocks. It removes much of
//! Pregel's per-vertex messaging overhead — in Table 1 it is ~40× faster
//! than Giraph on road-network SSSP — but, unlike GRAPE, it re-runs the
//! block computation from the incoming messages each superstep instead of
//! performing *bounded incremental* evaluation, and it cannot reuse existing
//! sequential algorithms unchanged.
//!
//! Block state is a flat [`VertexDenseMap`] keyed by the block's local dense
//! CSR indices (the [`BlockProgram`] trait works in that shape directly),
//! and inter-block routing resolves a destination's owner with a binary
//! search over one sorted owner table — no per-superstep `HashMap`s.

use crate::stats::BaselineStats;
use grape_comm::MessageSize;
use grape_graph::{CsrGraph, VertexDenseMap, VertexId};
use grape_partition::{build_fragments, Fragment, PartitionAssignment};
use std::collections::HashMap;
use std::time::Instant;

/// A block-centric program.
pub trait BlockProgram: Send + Sync {
    /// Query parameters.
    type Query: Clone + Send + Sync;
    /// Per-vertex state within a block.
    type State: Clone + Send + Sync;
    /// Message exchanged between blocks, addressed to a vertex.
    type Message: Clone + Send + Sync + MessageSize;

    /// Initializes the state of every vertex of a block, keyed by the block
    /// graph's dense indices.
    fn init_block(
        &self,
        query: &Self::Query,
        block: &Fragment<(), f64>,
    ) -> VertexDenseMap<Self::State>;

    /// Block compute: processes the whole block given the messages addressed
    /// to its vertices, mutating the states and pushing outgoing messages for
    /// vertices of other blocks into `outbox`. Returns `true` if the block
    /// wants to stay active even without incoming messages.
    fn block_compute(
        &self,
        query: &Self::Query,
        block: &Fragment<(), f64>,
        states: &mut VertexDenseMap<Self::State>,
        inbox: &[(VertexId, Self::Message)],
        superstep: usize,
        outbox: &mut Vec<(VertexId, Self::Message)>,
    ) -> bool;

    /// Program name for statistics.
    fn name(&self) -> &str {
        "block-program"
    }
}

/// The block-centric engine: one block per fragment of the supplied
/// partition, one worker thread per block.
#[derive(Debug, Clone, Copy)]
pub struct BlogelEngine {
    /// Safety bound on supersteps.
    pub max_supersteps: usize,
}

impl Default for BlogelEngine {
    fn default() -> Self {
        Self {
            max_supersteps: 100_000,
        }
    }
}

impl BlogelEngine {
    /// Creates an engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the program over `graph` partitioned into blocks by `assignment`.
    pub fn run<P: BlockProgram>(
        &self,
        program: &P,
        query: &P::Query,
        graph: &CsrGraph<(), f64>,
        assignment: &PartitionAssignment,
    ) -> (HashMap<VertexId, P::State>, BaselineStats) {
        let started = Instant::now();
        let blocks = build_fragments(graph, assignment);
        // Sorted (vertex, owner block) table: message routing is one binary
        // search per message.
        let mut owner: Vec<(VertexId, usize)> = blocks
            .iter()
            .flat_map(|b| b.inner_vertices().iter().map(move |&v| (v, b.id)))
            .collect();
        owner.sort_unstable();

        let mut states: Vec<VertexDenseMap<P::State>> = blocks
            .iter()
            .map(|b| program.init_block(query, b))
            .collect();
        let mut inboxes: Vec<Vec<(VertexId, P::Message)>> = vec![Vec::new(); blocks.len()];
        let mut stats = BaselineStats {
            engine: format!("blogel/{}", program.name()),
            num_workers: blocks.len(),
            ..Default::default()
        };

        let mut first = true;
        for superstep in 0..self.max_supersteps {
            let any_input = first || inboxes.iter().any(|i| !i.is_empty());
            if !any_input {
                break;
            }
            stats.supersteps = superstep + 1;

            let current_inboxes: Vec<Vec<(VertexId, P::Message)>> =
                std::mem::replace(&mut inboxes, vec![Vec::new(); blocks.len()]);
            let outboxes: Vec<Vec<(VertexId, P::Message)>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for ((block, block_states), inbox) in blocks
                    .iter()
                    .zip(states.iter_mut())
                    .zip(current_inboxes.iter())
                {
                    let run_this_block = first || !inbox.is_empty();
                    handles.push(scope.spawn(move || {
                        let mut outbox = Vec::new();
                        if run_this_block {
                            program.block_compute(
                                query,
                                block,
                                block_states,
                                inbox,
                                superstep,
                                &mut outbox,
                            );
                        }
                        outbox
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker"))
                    .collect()
            });
            first = false;

            // Route messages block-to-block and account the traffic.
            for (src_block, outbox) in outboxes.into_iter().enumerate() {
                for (dst, msg) in outbox {
                    let Ok(pos) = owner.binary_search_by_key(&dst, |(v, _)| *v) else {
                        continue;
                    };
                    let dst_block = owner[pos].1;
                    if dst_block != src_block {
                        stats.messages += 1;
                        stats.bytes += msg.size_bytes() as u64 + 8;
                        inboxes[dst_block].push((dst, msg));
                    }
                    // Messages to the own block are ignored: the block
                    // already processed its local information.
                }
            }
        }

        stats.wall_time = started.elapsed();
        let mut merged = HashMap::new();
        for (block, block_states) in blocks.iter().zip(states) {
            for (&v, &i) in block
                .inner_vertices()
                .iter()
                .zip(block.inner_dense_indices())
            {
                merged.insert(v, block_states[i].clone());
            }
        }
        (merged, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::BlockSssp;
    use grape_graph::generators::{barabasi_albert, road_network, RoadNetworkConfig};
    use grape_partition::{BuiltinStrategy, Partitioner, RangePartitioner};

    #[test]
    fn block_sssp_matches_dijkstra() {
        let g = barabasi_albert(300, 3, 6).unwrap();
        let reference = grape_algo::sssp::sequential_sssp(&g, 0);
        let assignment = BuiltinStrategy::Hash.partition(&g, 4);
        let (states, stats) = BlogelEngine::new().run(&BlockSssp, &0, &g, &assignment);
        for (v, d) in &reference {
            assert!((states[v] - d).abs() < 1e-9, "vertex {v}");
        }
        assert!(stats.supersteps >= 2);
    }

    #[test]
    fn block_sssp_uses_far_fewer_supersteps_than_vertex_centric() {
        let g = road_network(
            RoadNetworkConfig {
                width: 24,
                height: 24,
                removal_prob: 0.0,
                shortcut_prob: 0.0,
                ..Default::default()
            },
            2,
        )
        .unwrap();
        let assignment = BuiltinStrategy::MetisLike.partition(&g, 4);
        let (_, blogel_stats) = BlogelEngine::new().run(&BlockSssp, &0, &g, &assignment);
        let pregel = crate::pregel::PregelEngine::new(4);
        let (_, pregel_stats) = pregel.run(&crate::programs::PregelSssp, &0, &g);
        assert!(
            blogel_stats.supersteps * 4 < pregel_stats.supersteps,
            "block-centric {} supersteps vs vertex-centric {}",
            blogel_stats.supersteps,
            pregel_stats.supersteps
        );
    }

    #[test]
    fn unreachable_blocks_stay_at_infinity() {
        let mut b = grape_graph::GraphBuilder::<(), f64>::new();
        for v in 0..10u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        for v in 100..105u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let assignment = RangePartitioner.partition(&g, 3);
        let (states, _) = BlogelEngine::new().run(&BlockSssp, &0, &g, &assignment);
        assert_eq!(states[&10], 10.0);
        for v in 100..=105u64 {
            assert!(states[&v].is_infinite());
        }
    }
}
