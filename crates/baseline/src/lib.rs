//! # grape-baseline
//!
//! The comparator engines of Table 1: a **Pregel-like vertex-centric BSP
//! engine** (standing in for Giraph), a **GAS engine** (gather–apply–scatter,
//! standing in for GraphLab's synchronous mode) and a **Blogel-like
//! block-centric engine**. The paper's argument is architectural — "think
//! like a vertex" forces traversal queries into one superstep per hop and a
//! message per relaxed edge, while GRAPE runs whole sequential algorithms per
//! fragment — so faithful reproductions of those cost structures (supersteps,
//! messages, bytes) are what these engines provide. They run in-process on
//! threads, exactly like the GRAPE engine, so wall-clock comparisons are
//! apples-to-apples.

#![warn(missing_docs)]

pub mod blogel;
pub mod gas;
pub mod pregel;
pub mod programs;
pub mod stats;

pub use blogel::{BlockProgram, BlogelEngine};
pub use gas::{GasEngine, GasProgram};
pub use pregel::{PregelEngine, VertexContext, VertexProgram};
pub use programs::{
    normalize_for_pagerank, BlockSssp, GasPageRank, GasSssp, PregelCc, PregelPageRank, PregelSssp,
};
pub use stats::BaselineStats;
