//! GAS (gather–apply–scatter) engine — the GraphLab stand-in of Table 1.
//!
//! GraphLab programs are expressed as three phases per active vertex:
//! **gather** folds information over the vertex's in-edges, **apply** updates
//! the vertex state, and **scatter** activates out-neighbours whose input
//! changed. Distributed GraphLab keeps *ghost* copies of every cut vertex on
//! the remote side and synchronizes them whenever the master copy changes;
//! that ghost synchronization is what dominates its communication bill, and
//! it is what this engine accounts: one message per remote worker holding a
//! ghost of a changed vertex, per superstep.
//!
//! The vertex states live in one flat array keyed by the graph's dense CSR
//! indices, the active set is a [`DenseBitset`], and the ghost-worker set of
//! a changed vertex is collected in a packed word-mask — the per-superstep
//! `HashMap`/`HashSet` state of the original formulation is gone.

use crate::stats::BaselineStats;
use grape_comm::MessageSize;
use grape_graph::{CsrGraph, DenseBitset, VertexId};
use std::collections::HashMap;
use std::time::Instant;

/// A GAS program.
pub trait GasProgram: Send + Sync {
    /// Query parameters.
    type Query: Clone + Send + Sync;
    /// Per-vertex state; `PartialEq` is used to detect changes for scatter.
    type State: Clone + Send + Sync + PartialEq + MessageSize;
    /// The value gathered along one in-edge.
    type Gather: Clone + Send;

    /// Initial state of a vertex.
    fn init(&self, query: &Self::Query, vertex: VertexId) -> Self::State;

    /// Whether the vertex starts active.
    fn initially_active(&self, _query: &Self::Query, _vertex: VertexId) -> bool {
        true
    }

    /// Gather along one in-edge `(src, weight)` given the source's state.
    fn gather(&self, query: &Self::Query, src_state: &Self::State, weight: f64) -> Self::Gather;

    /// Merges two gathered values.
    fn merge(&self, a: Self::Gather, b: Self::Gather) -> Self::Gather;

    /// Applies the gathered value, producing the new state.
    fn apply(
        &self,
        query: &Self::Query,
        vertex: VertexId,
        state: &Self::State,
        gathered: Option<Self::Gather>,
    ) -> Self::State;

    /// Program name for statistics.
    fn name(&self) -> &str {
        "gas-program"
    }
}

/// The synchronous GAS engine.
#[derive(Debug, Clone, Copy)]
pub struct GasEngine {
    /// Number of workers (vertex shards).
    pub num_workers: usize,
    /// Safety bound on supersteps.
    pub max_supersteps: usize,
}

impl GasEngine {
    /// Creates an engine.
    pub fn new(num_workers: usize) -> Self {
        Self {
            num_workers: num_workers.max(1),
            max_supersteps: 100_000,
        }
    }

    fn worker_of(&self, v: VertexId) -> usize {
        (v.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.num_workers as u64) as usize
    }

    /// Runs the program to quiescence.
    pub fn run<P: GasProgram>(
        &self,
        program: &P,
        query: &P::Query,
        graph: &CsrGraph<(), f64>,
    ) -> (HashMap<VertexId, P::State>, BaselineStats) {
        let started = Instant::now();
        let n = graph.num_vertices();
        let worker_of_dense: Vec<u32> = (0..n as u32)
            .map(|i| self.worker_of(graph.vertex_of(i)) as u32)
            .collect();

        let mut states: Vec<P::State> = (0..n as u32)
            .map(|i| program.init(query, graph.vertex_of(i)))
            .collect();
        let mut active = DenseBitset::new(n);
        for i in 0..n as u32 {
            if program.initially_active(query, graph.vertex_of(i)) {
                active.set(i);
            }
        }
        let mut stats = BaselineStats {
            engine: format!("gas/{}", program.name()),
            num_workers: self.num_workers,
            ..Default::default()
        };
        // Ghost-worker scratch: one bit per worker, cleared per changed
        // vertex.
        let mut ghost_words = vec![0u64; self.num_workers.div_ceil(64)];

        for superstep in 0..self.max_supersteps {
            if active.count_ones() == 0 {
                break;
            }
            stats.supersteps = superstep + 1;

            // Gather + apply for every active vertex, in parallel over worker
            // shards; the previous superstep's states are read-only.
            let mut shards: Vec<Vec<u32>> = vec![Vec::new(); self.num_workers];
            for i in active.iter_ones() {
                shards[worker_of_dense[i as usize] as usize].push(i);
            }
            let states_ref = &states;
            let updates: Vec<Vec<(u32, P::State)>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for shard in &shards {
                    handles.push(scope.spawn(move || {
                        let mut out = Vec::new();
                        for &i in shard {
                            let mut gathered: Option<P::Gather> = None;
                            for (src, w) in graph.in_edges_dense(i) {
                                let g = program.gather(query, &states_ref[src as usize], *w);
                                gathered = Some(match gathered {
                                    None => g,
                                    Some(acc) => program.merge(acc, g),
                                });
                            }
                            let new_state = program.apply(
                                query,
                                graph.vertex_of(i),
                                &states_ref[i as usize],
                                gathered,
                            );
                            if new_state != states_ref[i as usize] {
                                out.push((i, new_state));
                            }
                        }
                        out
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker"))
                    .collect()
            });

            // Commit the changes, account ghost synchronization and scatter.
            let mut next_active = DenseBitset::new(n);
            for (i, new_state) in updates.into_iter().flatten() {
                let home = worker_of_dense[i as usize];
                // Ghost sync: one message per remote worker that holds a copy
                // of the vertex (i.e. hosts one of its neighbours).
                ghost_words.fill(0);
                for &u in graph
                    .out_neighbors_dense(i)
                    .iter()
                    .chain(graph.in_neighbors_dense(i))
                {
                    let w = worker_of_dense[u as usize];
                    if w != home {
                        ghost_words[w as usize / 64] |= 1u64 << (w % 64);
                    }
                }
                let remote: u64 = ghost_words.iter().map(|w| w.count_ones() as u64).sum();
                stats.messages += remote;
                stats.bytes += remote * (new_state.size_bytes() as u64 + 8);
                // Scatter: activate the out-neighbours (they must re-gather).
                for &u in graph.out_neighbors_dense(i) {
                    next_active.set(u);
                }
                states[i as usize] = new_state;
            }
            active = next_active;
        }

        stats.wall_time = started.elapsed();
        let merged = states
            .into_iter()
            .enumerate()
            .map(|(i, s)| (graph.vertex_of(i as u32), s))
            .collect();
        (merged, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{GasPageRank, GasSssp};
    use grape_graph::generators::barabasi_albert;
    use grape_graph::GraphBuilder;

    #[test]
    fn gas_sssp_matches_dijkstra() {
        let g = barabasi_albert(250, 3, 4).unwrap();
        let reference = grape_algo::sssp::sequential_sssp(&g, 0);
        let engine = GasEngine::new(4);
        let (states, stats) = engine.run(&GasSssp, &0, &g);
        for (v, d) in &reference {
            assert!((states[v] - d).abs() < 1e-9, "vertex {v}");
        }
        assert!(stats.supersteps > 1);
        assert!(stats.messages > 0);
    }

    #[test]
    fn gas_sssp_needs_superstep_per_hop_on_chains() {
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..30u64 {
            b.add_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let engine = GasEngine::new(3);
        let (states, stats) = engine.run(&GasSssp, &0, &g);
        assert_eq!(states[&30], 30.0);
        assert!(stats.supersteps >= 30);
    }

    #[test]
    fn gas_pagerank_converges_and_ranks_hub_highest() {
        let mut b = GraphBuilder::<(), f64>::new().symmetric(true);
        for leaf in 1..=10u64 {
            b.add_edge(leaf, 0, 1.0);
        }
        let g = crate::programs::normalize_for_pagerank(&b.build().unwrap());
        let engine = GasEngine::new(2);
        let program = GasPageRank {
            damping: 0.85,
            tolerance: 1e-6,
            num_vertices: g.num_vertices(),
        };
        let (states, stats) = engine.run(&program, &(), &g);
        for leaf in 1..=10u64 {
            assert!(states[&0] > states[&leaf]);
        }
        assert!(stats.supersteps > 2);
    }

    #[test]
    fn quiescence_on_empty_active_set() {
        let g = GraphBuilder::<(), f64>::new().build().unwrap();
        let engine = GasEngine::new(2);
        let (states, stats) = engine.run(&GasSssp, &0, &g);
        assert!(states.is_empty());
        assert_eq!(stats.supersteps, 0);
    }
}
