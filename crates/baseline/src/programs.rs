//! Vertex-centric, GAS and block-centric programs used by the comparison
//! benches: SSSP (the Table 1 workload), connected components and PageRank.

use crate::blogel::BlockProgram;
use crate::gas::GasProgram;
use crate::pregel::{VertexContext, VertexProgram};
use grape_graph::{VertexDenseMap, VertexId};
use grape_partition::Fragment;

// ---------------------------------------------------------------------------
// Pregel programs
// ---------------------------------------------------------------------------

/// Pregel SSSP: the textbook "think like a vertex" formulation — a vertex
/// keeps its best known distance, relaxes it with incoming messages and sends
/// `distance + weight` along its out-edges whenever it improves.
#[derive(Debug, Clone, Copy, Default)]
pub struct PregelSssp;

impl VertexProgram for PregelSssp {
    type Query = VertexId;
    type State = f64;
    type Message = f64;

    fn init(&self, query: &VertexId, vertex: VertexId) -> f64 {
        if vertex == *query {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn initially_active(&self, query: &VertexId, vertex: VertexId) -> bool {
        vertex == *query
    }

    fn compute(
        &self,
        _query: &VertexId,
        _vertex: VertexId,
        state: &mut f64,
        messages: &[f64],
        ctx: &mut VertexContext<'_, f64>,
    ) {
        let best_incoming = messages.iter().copied().fold(f64::INFINITY, f64::min);
        let improved = best_incoming < *state;
        if improved {
            *state = best_incoming;
        }
        if (improved || ctx.superstep() == 0) && state.is_finite() {
            let out: Vec<(VertexId, f64)> = ctx.out_edges().to_vec();
            for (neighbour, weight) in out {
                ctx.send(neighbour, *state + weight);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a.min(*b))
    }

    fn name(&self) -> &str {
        "sssp"
    }
}

/// Pregel connected components by min-label flooding.
#[derive(Debug, Clone, Copy, Default)]
pub struct PregelCc;

impl VertexProgram for PregelCc {
    type Query = ();
    type State = VertexId;
    type Message = VertexId;

    fn init(&self, _query: &(), vertex: VertexId) -> VertexId {
        vertex
    }

    fn compute(
        &self,
        _query: &(),
        _vertex: VertexId,
        state: &mut VertexId,
        messages: &[VertexId],
        ctx: &mut VertexContext<'_, VertexId>,
    ) {
        let best = messages.iter().copied().min().unwrap_or(VertexId::MAX);
        let improved = best < *state;
        if improved {
            *state = best;
        }
        if improved || ctx.superstep() == 0 {
            let out: Vec<(VertexId, f64)> = ctx.out_edges().to_vec();
            for (neighbour, _) in out {
                ctx.send(neighbour, *state);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, a: &VertexId, b: &VertexId) -> Option<VertexId> {
        Some(*a.min(b))
    }

    fn name(&self) -> &str {
        "cc"
    }
}

/// Pregel PageRank with a fixed number of iterations (the standard Pregel
/// example program).
#[derive(Debug, Clone, Copy)]
pub struct PregelPageRank {
    /// Damping factor.
    pub damping: f64,
    /// Number of iterations to run.
    pub iterations: usize,
    /// Number of vertices of the graph (for the teleport term).
    pub num_vertices: usize,
}

impl VertexProgram for PregelPageRank {
    type Query = ();
    type State = f64;
    type Message = f64;

    fn init(&self, _query: &(), _vertex: VertexId) -> f64 {
        1.0 / self.num_vertices.max(1) as f64
    }

    fn compute(
        &self,
        _query: &(),
        _vertex: VertexId,
        state: &mut f64,
        messages: &[f64],
        ctx: &mut VertexContext<'_, f64>,
    ) {
        if ctx.superstep() > 0 {
            let sum: f64 = messages.iter().sum();
            *state = (1.0 - self.damping) / self.num_vertices.max(1) as f64 + self.damping * sum;
        }
        if ctx.superstep() < self.iterations {
            let out: Vec<(VertexId, f64)> = ctx.out_edges().to_vec();
            if !out.is_empty() {
                let share = *state / out.len() as f64;
                for (neighbour, _) in out {
                    ctx.send(neighbour, share);
                }
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a + b)
    }

    fn name(&self) -> &str {
        "pagerank"
    }
}

// ---------------------------------------------------------------------------
// GAS programs
// ---------------------------------------------------------------------------

/// GAS SSSP: gather the minimum of `dist(src) + weight` over in-edges.
#[derive(Debug, Clone, Copy, Default)]
pub struct GasSssp;

impl GasProgram for GasSssp {
    type Query = VertexId;
    type State = f64;
    type Gather = f64;

    fn init(&self, query: &VertexId, vertex: VertexId) -> f64 {
        if vertex == *query {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn gather(&self, _query: &VertexId, src_state: &f64, weight: f64) -> f64 {
        src_state + weight
    }

    fn merge(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }

    fn apply(
        &self,
        _query: &VertexId,
        _vertex: VertexId,
        state: &f64,
        gathered: Option<f64>,
    ) -> f64 {
        match gathered {
            Some(g) => state.min(g),
            None => *state,
        }
    }

    fn name(&self) -> &str {
        "sssp"
    }
}

/// GAS PageRank with tolerance-based convergence.
///
/// The program expects the graph to be *pre-normalized* with
/// [`normalize_for_pagerank`]: each edge `u → v` carries weight
/// `1 / outdeg(u)`, so the gather of an in-edge is exactly the rank share the
/// source pushes along it — the way GraphLab's PageRank toolkit stores the
/// transition matrix.
#[derive(Debug, Clone, Copy)]
pub struct GasPageRank {
    /// Damping factor.
    pub damping: f64,
    /// Convergence tolerance: a vertex stops changing when its rank moves by
    /// less than this.
    pub tolerance: f64,
    /// Number of vertices of the graph.
    pub num_vertices: usize,
}

/// Rewrites every edge weight to `1 / outdeg(src)`, the transition
/// probability [`GasPageRank`] gathers over.
pub fn normalize_for_pagerank(
    graph: &grape_graph::CsrGraph<(), f64>,
) -> grape_graph::CsrGraph<(), f64> {
    let vertices: Vec<(VertexId, ())> = graph.vertices().map(|v| (v, ())).collect();
    let edges: Vec<grape_graph::types::EdgeRecord<f64>> = graph
        .edges()
        .map(|(s, d, _)| {
            grape_graph::types::EdgeRecord::new(s, d, 1.0 / graph.out_degree(s).max(1) as f64)
        })
        .collect();
    grape_graph::CsrGraph::from_records(vertices, edges, true).expect("same vertex set")
}

impl GasProgram for GasPageRank {
    type Query = ();
    type State = f64;
    type Gather = f64;

    fn init(&self, _query: &(), _vertex: VertexId) -> f64 {
        1.0 / self.num_vertices.max(1) as f64
    }

    fn gather(&self, _query: &(), src_state: &f64, weight: f64) -> f64 {
        // weight = 1 / outdeg(src), so this is the source's rank share.
        src_state * weight
    }

    fn merge(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn apply(&self, _query: &(), _vertex: VertexId, state: &f64, gathered: Option<f64>) -> f64 {
        let sum = gathered.unwrap_or(0.0);
        let next = (1.0 - self.damping) / self.num_vertices.max(1) as f64 + self.damping * sum;
        if (next - state).abs() < self.tolerance {
            *state
        } else {
            next
        }
    }

    fn name(&self) -> &str {
        "pagerank"
    }
}

// ---------------------------------------------------------------------------
// Blogel programs
// ---------------------------------------------------------------------------

/// Block-centric SSSP: each superstep runs Bellman–Ford over the whole block
/// seeded by the incoming border distances, then ships improved border
/// distances to neighbouring blocks. Unlike GRAPE's IncEval this recomputes
/// within the block from scratch every superstep — the cost difference the
/// paper attributes to bounded incremental evaluation. The block state is a
/// flat distance array over the block graph's dense indices; the relaxation
/// loop runs over the flat CSR slices.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockSssp;

impl BlockProgram for BlockSssp {
    type Query = VertexId;
    type State = f64;
    type Message = f64;

    fn init_block(&self, query: &VertexId, block: &Fragment<(), f64>) -> VertexDenseMap<f64> {
        let g = &block.graph;
        VertexDenseMap::from_fn(g.num_vertices(), |i| {
            if g.vertex_of(i) == *query {
                0.0
            } else {
                f64::INFINITY
            }
        })
    }

    fn block_compute(
        &self,
        _query: &VertexId,
        block: &Fragment<(), f64>,
        states: &mut VertexDenseMap<f64>,
        inbox: &[(VertexId, f64)],
        _superstep: usize,
        outbox: &mut Vec<(VertexId, f64)>,
    ) -> bool {
        let g = &block.graph;
        // Fold in the messages; they only ever name this block's border
        // vertices, so the dense translation goes through the precomputed
        // border tables (binary search over the sorted border list).
        let mut improved_any = false;
        for &(v, d) in inbox {
            let Some(pos) = block.border_position(v) else {
                continue;
            };
            let i = block.border_dense_indices()[pos as usize];
            if d < states[i] {
                states[i] = d;
                improved_any = true;
            }
        }
        let before = states.clone();
        // Full Bellman–Ford over the block (not incremental, by design).
        let mut changed = true;
        while changed {
            changed = false;
            for s in 0..g.num_vertices() as u32 {
                let ds = states[s];
                if !ds.is_finite() {
                    continue;
                }
                for (&d, &w) in g
                    .out_neighbors_dense(s)
                    .iter()
                    .zip(g.out_edge_data_dense(s))
                {
                    let candidate = ds + w;
                    if candidate < states[d] {
                        states[d] = candidate;
                        changed = true;
                        improved_any = true;
                    }
                }
            }
        }
        // Ship improved distances of vertices owned by other blocks. This
        // carries all cross-block propagation: a block relaxes every edge
        // incident to its inner vertices itself, so improvements of *own*
        // border vertices reach the neighbouring blocks through their outer
        // mirrors of the shared cut, never by messaging.
        for (&v, &i) in block
            .outer_vertices()
            .iter()
            .zip(block.outer_dense_indices())
        {
            if states[i] < before[i] {
                outbox.push((v, states[i]));
            }
        }
        improved_any
    }

    fn name(&self) -> &str {
        "sssp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gas::GasEngine;
    use crate::pregel::PregelEngine;
    use grape_graph::generators::barabasi_albert;

    #[test]
    fn pregel_pagerank_ranks_hub_highest() {
        let g = barabasi_albert(200, 3, 12).unwrap();
        let engine = PregelEngine::new(4);
        let program = PregelPageRank {
            damping: 0.85,
            iterations: 20,
            num_vertices: g.num_vertices(),
        };
        let (states, stats) = engine.run(&program, &(), &g);
        let hub = g
            .vertices()
            .max_by_key(|v| g.in_degree(*v) + g.out_degree(*v))
            .unwrap();
        let avg = 1.0 / g.num_vertices() as f64;
        assert!(states[&hub] > avg, "hub should beat the average rank");
        // Messages are emitted in supersteps 0..iterations and absorbed one
        // superstep later, so the run spans iterations + 1 supersteps.
        assert_eq!(stats.supersteps, program.iterations + 1);
    }

    #[test]
    fn pregel_and_gas_sssp_agree() {
        let g = barabasi_albert(200, 3, 14).unwrap();
        let (pregel_states, _) = PregelEngine::new(4).run(&PregelSssp, &0, &g);
        let (gas_states, _) = GasEngine::new(4).run(&GasSssp, &0, &g);
        for v in g.vertices() {
            let a = pregel_states[&v];
            let b = gas_states[&v];
            assert!(
                (a == b) || (a - b).abs() < 1e-9,
                "vertex {v}: pregel {a} vs gas {b}"
            );
        }
    }

    #[test]
    fn program_names() {
        assert_eq!(VertexProgram::name(&PregelSssp), "sssp");
        assert_eq!(VertexProgram::name(&PregelCc), "cc");
        assert_eq!(GasProgram::name(&GasSssp), "sssp");
        assert_eq!(BlockProgram::name(&BlockSssp), "sssp");
    }
}
