//! Plain-text edge-list input/output.
//!
//! The paper's datasets (US road network, LiveJournal, Weibo) ship as
//! whitespace-separated edge lists. This module reads and writes that format
//! for the two common instantiations (unweighted and weighted graphs) so the
//! examples and the bench harness can persist generated workloads and reload
//! them, exercising the same path a user would with a real dataset.
//!
//! Format, one edge per line:
//!
//! ```text
//! # comment lines start with '#' or '%'
//! <src> <dst> [<weight>]
//! ```

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::{GraphError, VertexId};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Options controlling how an edge list is interpreted.
#[derive(Debug, Clone, Copy)]
pub struct EdgeListOptions {
    /// Insert the reverse of every edge as well (undirected semantics).
    pub symmetric: bool,
    /// Build the reverse adjacency in the resulting CSR.
    pub with_reverse: bool,
    /// Default weight when a line has no weight column.
    pub default_weight: f64,
}

impl Default for EdgeListOptions {
    fn default() -> Self {
        Self {
            symmetric: false,
            with_reverse: true,
            default_weight: 1.0,
        }
    }
}

/// Parses a weighted edge list from any reader.
pub fn read_weighted_edge_list<R: std::io::Read>(
    reader: R,
    opts: EdgeListOptions,
) -> Result<CsrGraph<(), f64>, GraphError> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::<(), f64>::new()
        .symmetric(opts.symmetric)
        .with_reverse(opts.with_reverse);
    let mut line_buf = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        line_buf.clear();
        let n = reader.read_line(&mut line_buf)?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let src: VertexId = it
            .next()
            .ok_or_else(|| parse_err(line_no, "missing source"))?
            .parse()
            .map_err(|_| parse_err(line_no, "source is not an integer"))?;
        let dst: VertexId = it
            .next()
            .ok_or_else(|| parse_err(line_no, "missing destination"))?
            .parse()
            .map_err(|_| parse_err(line_no, "destination is not an integer"))?;
        let weight = match it.next() {
            Some(w) => w
                .parse::<f64>()
                .map_err(|_| parse_err(line_no, "weight is not a number"))?,
            None => opts.default_weight,
        };
        builder.add_edge(src, dst, weight);
    }
    builder.build()
}

/// Loads a weighted edge list from a file path.
pub fn load_weighted_edge_list(
    path: impl AsRef<Path>,
    opts: EdgeListOptions,
) -> Result<CsrGraph<(), f64>, GraphError> {
    let file = std::fs::File::open(path)?;
    read_weighted_edge_list(file, opts)
}

/// Writes a weighted graph as an edge list (one `src dst weight` per line).
pub fn write_weighted_edge_list(
    graph: &CsrGraph<(), f64>,
    path: impl AsRef<Path>,
) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# grape-rs weighted edge list")?;
    writeln!(
        w,
        "# vertices: {} edges: {}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (s, d, weight) in graph.edges() {
        writeln!(w, "{s} {d} {weight}")?;
    }
    w.flush()?;
    Ok(())
}

/// Parses an unweighted edge list from any reader.
pub fn read_edge_list<R: std::io::Read>(
    reader: R,
    opts: EdgeListOptions,
) -> Result<CsrGraph<(), ()>, GraphError> {
    let weighted = read_weighted_edge_list(reader, opts)?;
    // Re-build dropping the weights; cheap compared to parsing.
    let vertices: Vec<(VertexId, ())> = weighted.vertices().map(|v| (v, ())).collect();
    let edges = weighted
        .edges()
        .map(|(s, d, _)| crate::types::EdgeRecord::new(s, d, ()))
        .collect();
    CsrGraph::from_records(vertices, edges, opts.with_reverse)
}

fn parse_err(line: usize, message: &str) -> GraphError {
    GraphError::Parse {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "# test graph\n0 1 2.5\n1 2\n% another comment\n2 0 0.5\n";

    #[test]
    fn reads_weighted_edge_list() {
        let g = read_weighted_edge_list(SAMPLE.as_bytes(), EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        let (_, w) = g.out_edges(0).next().unwrap();
        assert_eq!(*w, 2.5);
        let (_, w) = g.out_edges(1).next().unwrap();
        assert_eq!(*w, 1.0, "missing weight falls back to default");
    }

    #[test]
    fn symmetric_option_doubles_edges() {
        let opts = EdgeListOptions {
            symmetric: true,
            ..Default::default()
        };
        let g = read_weighted_edge_list("0 1 1.0\n".as_bytes(), opts).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(1), 1);
    }

    #[test]
    fn unweighted_reader() {
        let g = read_edge_list("0 1\n1 2\n".as_bytes(), EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let err = read_weighted_edge_list("0 1\nxyz 2\n".as_bytes(), EdgeListOptions::default())
            .unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let err =
            read_weighted_edge_list("0\n".as_bytes(), EdgeListOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_weighted_edge_list("0 1 heavy\n".as_bytes(), EdgeListOptions::default())
            .unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn round_trip_through_file() {
        let dir = std::env::temp_dir().join("grape_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.el");
        let g = read_weighted_edge_list(SAMPLE.as_bytes(), EdgeListOptions::default()).unwrap();
        write_weighted_edge_list(&g, &path).unwrap();
        let g2 = load_weighted_edge_list(&path, EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        let mut e1: Vec<(u64, u64, String)> =
            g.edges().map(|(s, d, w)| (s, d, format!("{w}"))).collect();
        let mut e2: Vec<(u64, u64, String)> =
            g2.edges().map(|(s, d, w)| (s, d, format!("{w}"))).collect();
        e1.sort();
        e2.sort();
        assert_eq!(e1, e2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_weighted_edge_list("/definitely/not/here.el", EdgeListOptions::default())
            .unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
