//! Labeled property graphs for pattern matching, keyword search and GPARs.
//!
//! The pattern-matching query classes of the paper (graph simulation,
//! subgraph isomorphism, keyword search and the GPAR-based social-media
//! marketing use case) operate on graphs whose vertices carry a label (e.g.
//! `"person"`, `"product"`) and a small set of keyword attributes, and whose
//! edges carry a relation type (e.g. `"follows"`, `"recommends"`). This
//! module provides that instantiation of [`CsrGraph`] plus the pattern-graph
//! type used as queries.

use crate::csr::CsrGraph;
use crate::types::{GraphError, VertexId};
use grape_comm::wire::{Wire, WireError, WireReader};
use serde::{Deserialize, Serialize};

/// A vertex label: an interned small string such as `"person"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct VertexLabel(pub String);

impl From<&str> for VertexLabel {
    fn from(s: &str) -> Self {
        VertexLabel(s.to_string())
    }
}

impl std::fmt::Display for VertexLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-vertex payload of a labeled graph: a label plus keyword attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LabeledVertex {
    /// The type label of the vertex (`person`, `product`, …).
    pub label: VertexLabel,
    /// Keyword attributes attached to the vertex, used by keyword search.
    pub keywords: Vec<String>,
}

impl LabeledVertex {
    /// Creates a labeled vertex without keywords.
    pub fn new(label: impl Into<VertexLabel>) -> Self {
        Self {
            label: label.into(),
            keywords: Vec::new(),
        }
    }

    /// Creates a labeled vertex with keywords.
    pub fn with_keywords(
        label: impl Into<VertexLabel>,
        keywords: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Self {
            label: label.into(),
            keywords: keywords.into_iter().map(Into::into).collect(),
        }
    }

    /// Whether the vertex carries the given keyword.
    pub fn has_keyword(&self, kw: &str) -> bool {
        self.keywords.iter().any(|k| k == kw)
    }
}

impl Wire for VertexLabel {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out)
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(VertexLabel(String::decode(reader)?))
    }
}

// Labeled vertices ship over the fragment-placement codec exactly like the
// numeric payloads of the traversal classes, so the pattern-matching query
// classes run multi-process too.
impl Wire for LabeledVertex {
    fn encode(&self, out: &mut Vec<u8>) {
        self.label.encode(out);
        self.keywords.encode(out);
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            label: VertexLabel::decode(reader)?,
            keywords: Vec::<String>::decode(reader)?,
        })
    }
}

/// Edge payload of a labeled graph: a relation type.
pub type EdgeRelation = String;

/// Labeled property graph: vertices carry [`LabeledVertex`], edges carry a
/// relation-type string.
pub type LabeledGraph = CsrGraph<LabeledVertex, EdgeRelation>;

/// A small pattern graph used as a query by graph simulation, subgraph
/// isomorphism and GPARs.
///
/// Pattern vertices are numbered `0..n` and carry a label predicate; pattern
/// edges optionally constrain the relation type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternGraph {
    /// Label required at each pattern vertex, indexed by pattern-vertex id.
    pub labels: Vec<VertexLabel>,
    /// Directed pattern edges `(from, to, relation)`; `None` relation matches
    /// any edge.
    pub edges: Vec<(usize, usize, Option<String>)>,
}

impl PatternGraph {
    /// Creates a pattern with the given vertex labels and no edges.
    pub fn new(labels: Vec<VertexLabel>) -> Self {
        Self {
            labels,
            edges: Vec::new(),
        }
    }

    /// Adds a pattern edge that matches any relation type.
    pub fn edge(mut self, from: usize, to: usize) -> Self {
        self.edges.push((from, to, None));
        self
    }

    /// Adds a pattern edge that requires a specific relation type.
    pub fn edge_labeled(mut self, from: usize, to: usize, relation: impl Into<String>) -> Self {
        self.edges.push((from, to, Some(relation.into())));
        self
    }

    /// Number of pattern vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of pattern edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Out-neighbours of a pattern vertex: `(to, relation)`.
    pub fn out_edges(&self, from: usize) -> impl Iterator<Item = (usize, Option<&str>)> + '_ {
        self.edges
            .iter()
            .filter(move |(f, _, _)| *f == from)
            .map(|(_, t, r)| (*t, r.as_deref()))
    }

    /// In-neighbours of a pattern vertex: `(from, relation)`.
    pub fn in_edges(&self, to: usize) -> impl Iterator<Item = (usize, Option<&str>)> + '_ {
        self.edges
            .iter()
            .filter(move |(_, t, _)| *t == to)
            .map(|(f, _, r)| (*f, r.as_deref()))
    }

    /// Validates that every edge endpoint names an existing pattern vertex.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (f, t, _) in &self.edges {
            if *f >= self.labels.len() || *t >= self.labels.len() {
                return Err(GraphError::InvalidParameter(format!(
                    "pattern edge ({f},{t}) references a missing pattern vertex"
                )));
            }
        }
        Ok(())
    }

    /// The radius of the pattern from vertex 0 treating edges as undirected:
    /// used by distributed SubIso to decide how many hops of replication a
    /// fragment needs.
    pub fn radius(&self) -> usize {
        let n = self.num_vertices();
        if n == 0 {
            return 0;
        }
        let mut dist = vec![usize::MAX; n];
        dist[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(u) = queue.pop_front() {
            for (f, t, _) in &self.edges {
                for (a, b) in [(*f, *t), (*t, *f)] {
                    if a == u && dist[b] == usize::MAX {
                        dist[b] = dist[u] + 1;
                        queue.push_back(b);
                    }
                }
            }
        }
        dist.iter()
            .filter(|d| **d != usize::MAX)
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// Convenience constructor for a labeled-graph vertex list entry.
pub fn lv(id: VertexId, label: &str, keywords: &[&str]) -> (VertexId, LabeledVertex) {
    (
        id,
        LabeledVertex::with_keywords(label, keywords.iter().copied()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EdgeRecord;

    fn tiny_labeled() -> LabeledGraph {
        let vs = vec![
            lv(0, "person", &["alice"]),
            lv(1, "person", &["bob"]),
            lv(2, "product", &["phone", "huawei"]),
        ];
        let es = vec![
            EdgeRecord::new(0, 1, "follows".to_string()),
            EdgeRecord::new(1, 2, "recommends".to_string()),
        ];
        LabeledGraph::from_records(vs, es, true).unwrap()
    }

    #[test]
    fn labeled_vertex_accessors() {
        let g = tiny_labeled();
        let v = g.vertex_data(2).unwrap();
        assert_eq!(v.label, VertexLabel::from("product"));
        assert!(v.has_keyword("huawei"));
        assert!(!v.has_keyword("xiaomi"));
    }

    #[test]
    fn relation_types_on_edges() {
        let g = tiny_labeled();
        let (_, rel) = g.out_edges(1).next().unwrap();
        assert_eq!(rel, "recommends");
    }

    #[test]
    fn pattern_graph_edges_and_validation() {
        let p = PatternGraph::new(vec!["person".into(), "product".into()]).edge_labeled(
            0,
            1,
            "recommends",
        );
        assert_eq!(p.num_vertices(), 2);
        assert_eq!(p.num_edges(), 1);
        assert!(p.validate().is_ok());
        let bad = PatternGraph::new(vec!["person".into()]).edge(0, 5);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn pattern_adjacency_iterators() {
        let p = PatternGraph::new(vec!["a".into(), "b".into(), "c".into()])
            .edge(0, 1)
            .edge_labeled(0, 2, "likes");
        let outs: Vec<_> = p.out_edges(0).collect();
        assert_eq!(outs.len(), 2);
        let ins: Vec<_> = p.in_edges(2).collect();
        assert_eq!(ins, vec![(0, Some("likes"))]);
    }

    #[test]
    fn pattern_radius() {
        // chain 0 - 1 - 2 has radius 2 from vertex 0
        let p = PatternGraph::new(vec!["a".into(), "b".into(), "c".into()])
            .edge(0, 1)
            .edge(1, 2);
        assert_eq!(p.radius(), 2);
        // star centred at 0 has radius 1
        let star = PatternGraph::new(vec!["a".into(), "b".into(), "c".into()])
            .edge(0, 1)
            .edge(0, 2);
        assert_eq!(star.radius(), 1);
        let empty = PatternGraph::new(vec![]);
        assert_eq!(empty.radius(), 0);
    }

    #[test]
    fn display_and_from_for_labels() {
        let l: VertexLabel = "city".into();
        assert_eq!(l.to_string(), "city");
    }

    #[test]
    fn labeled_vertices_roundtrip_on_the_wire() {
        let v = LabeledVertex::with_keywords("product", ["phone", "huawei"]);
        let bytes = v.encode_to_vec();
        let mut reader = WireReader::new(&bytes);
        assert_eq!(LabeledVertex::decode(&mut reader).unwrap(), v);
        reader.finish().unwrap();
        // Truncated payloads are rejected, not misread.
        let mut truncated = WireReader::new(&bytes[..bytes.len() - 1]);
        assert!(LabeledVertex::decode(&mut truncated).is_err());
    }
}
