//! Deterministic, seeded synthetic graph generators.
//!
//! The paper evaluates GRAPE on real datasets (US road network, LiveJournal,
//! Weibo, movie-rating data). Those datasets cannot be shipped here, so this
//! module produces synthetic graphs with the structural properties that drive
//! the paper's results:
//!
//! * [`road_network`] — a 2-D grid with weighted edges, a few diagonal
//!   shortcuts and removed cells. Like a real road network it has a *large
//!   diameter* and a small, nearly constant degree — the regime where
//!   vertex-centric engines need thousands of supersteps for SSSP and GRAPE's
//!   fragment-level Dijkstra shines (Table 1).
//! * [`barabasi_albert`] — a power-law social graph (LiveJournal/Weibo
//!   stand-in) with small diameter and heavy-tailed degrees.
//! * [`rmat`] — Kronecker-style R-MAT graphs used in many BSP benchmarks.
//! * [`erdos_renyi`] — uniform random graphs for unit tests and property
//!   tests.
//! * [`bipartite_ratings`] — user × item rating graph for collaborative
//!   filtering.
//! * [`labeled_social`] — a labeled property graph with `person`, `product`
//!   and rating edges (`follows`, `recommends`, `rates_bad`, `buys`) used by
//!   graph simulation, subgraph isomorphism, keyword search and the GPAR
//!   social-media-marketing demo (Fig. 4).
//!
//! Every generator takes an explicit seed and is fully deterministic.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::labels::{LabeledGraph, LabeledVertex};
use crate::types::{EdgeRecord, GraphError, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A weighted graph produced by the generators in this module.
pub type WeightedGraph = CsrGraph<(), f64>;

/// Parameters for the road-network-like grid generator.
#[derive(Debug, Clone, Copy)]
pub struct RoadNetworkConfig {
    /// Grid width (number of columns).
    pub width: usize,
    /// Grid height (number of rows).
    pub height: usize,
    /// Probability that a grid cell is removed (a "lake"/obstacle).
    pub removal_prob: f64,
    /// Probability of adding a diagonal shortcut at a cell.
    pub shortcut_prob: f64,
    /// Minimum edge weight (e.g. road length).
    pub min_weight: f64,
    /// Maximum edge weight.
    pub max_weight: f64,
}

impl Default for RoadNetworkConfig {
    fn default() -> Self {
        Self {
            width: 64,
            height: 64,
            removal_prob: 0.03,
            shortcut_prob: 0.05,
            min_weight: 1.0,
            max_weight: 10.0,
        }
    }
}

/// Generates a road-network-like weighted graph: a `width × height` grid with
/// bidirectional weighted edges between 4-neighbours, occasional removed
/// cells and occasional diagonal shortcuts.
pub fn road_network(config: RoadNetworkConfig, seed: u64) -> Result<WeightedGraph, GraphError> {
    if config.width == 0 || config.height == 0 {
        return Err(GraphError::InvalidParameter(
            "road_network: width and height must be positive".into(),
        ));
    }
    if config.max_weight < config.min_weight {
        return Err(GraphError::InvalidParameter(
            "road_network: max_weight must be >= min_weight".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let w = config.width;
    let h = config.height;
    let idx = |x: usize, y: usize| (y * w + x) as VertexId;
    let mut removed = vec![false; w * h];
    for cell in removed.iter_mut() {
        *cell = rng.random::<f64>() < config.removal_prob;
    }
    // Keep the corners so sources used by the benches always exist.
    removed[0] = false;
    removed[w * h - 1] = false;

    let mut builder = GraphBuilder::<(), f64>::new().symmetric(true);
    let weight = |rng: &mut StdRng| {
        config.min_weight + rng.random::<f64>() * (config.max_weight - config.min_weight)
    };
    for y in 0..h {
        for x in 0..w {
            if removed[y * w + x] {
                continue;
            }
            builder.ensure_vertex(idx(x, y));
            if x + 1 < w && !removed[y * w + x + 1] {
                let wt = weight(&mut rng);
                builder.add_edge(idx(x, y), idx(x + 1, y), wt);
            }
            if y + 1 < h && !removed[(y + 1) * w + x] {
                let wt = weight(&mut rng);
                builder.add_edge(idx(x, y), idx(x, y + 1), wt);
            }
            if x + 1 < w
                && y + 1 < h
                && !removed[(y + 1) * w + x + 1]
                && rng.random::<f64>() < config.shortcut_prob
            {
                let wt = weight(&mut rng);
                builder.add_edge(idx(x, y), idx(x + 1, y + 1), wt);
            }
        }
    }
    builder.build()
}

/// Generates a Barabási–Albert preferential-attachment graph with `n`
/// vertices, each new vertex attaching to `m` existing vertices. Edges are
/// directed from the new vertex to its chosen targets and weighted 1.0;
/// symmetric edges are added so the graph is usable for undirected traversal.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Result<WeightedGraph, GraphError> {
    if m == 0 || n < m + 1 {
        return Err(GraphError::InvalidParameter(
            "barabasi_albert: need m >= 1 and n >= m + 1".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::<(), f64>::new().symmetric(true);
    // Repeated-endpoint list for preferential attachment.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    // Start with a small clique of m + 1 vertices.
    for u in 0..=(m as VertexId) {
        for v in 0..u {
            builder.add_edge(u, v, 1.0);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in (m as VertexId + 1)..(n as VertexId) {
        // A small insertion-ordered list instead of a `HashSet`: iterating a
        // std hash set would replay in per-process-random order (SipHash
        // keys) and leak into the attachment sequence, making the "seeded"
        // graph differ between processes.
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            let target = if endpoints.is_empty() {
                rng.random_range(0..u)
            } else {
                endpoints[rng.random_range(0..endpoints.len())]
            };
            if target != u && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &v in &chosen {
            builder.add_edge(u, v, 1.0);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    builder.build()
}

/// Parameters of the R-MAT generator.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average directed edges per vertex.
    pub edge_factor: usize,
    /// R-MAT quadrant probabilities; must sum to ~1.
    pub a: f64,
    /// Probability of the upper-right quadrant.
    pub b: f64,
    /// Probability of the lower-left quadrant.
    pub c: f64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        Self {
            scale: 10,
            edge_factor: 8,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generates an R-MAT graph (Graph500-style skewed random graph).
pub fn rmat(config: RmatConfig, seed: u64) -> Result<WeightedGraph, GraphError> {
    let d = 1.0 - config.a - config.b - config.c;
    if !(0.0..=1.0).contains(&d) {
        return Err(GraphError::InvalidParameter(
            "rmat: a + b + c must be <= 1".into(),
        ));
    }
    let n: u64 = 1u64 << config.scale;
    let m = (n as usize) * config.edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::<(), f64>::new();
    for v in 0..n {
        builder.ensure_vertex(v);
    }
    for _ in 0..m {
        let (mut x0, mut x1) = (0u64, n - 1);
        let (mut y0, mut y1) = (0u64, n - 1);
        while x0 < x1 {
            let r = rng.random::<f64>();
            let (right, down) = if r < config.a {
                (false, false)
            } else if r < config.a + config.b {
                (true, false)
            } else if r < config.a + config.b + config.c {
                (false, true)
            } else {
                (true, true)
            };
            let xm = (x0 + x1) / 2;
            let ym = (y0 + y1) / 2;
            if right {
                y0 = ym + 1;
            } else {
                y1 = ym;
            }
            if down {
                x0 = xm + 1;
            } else {
                x1 = xm;
            }
        }
        let weight = 1.0 + rng.random::<f64>() * 9.0;
        builder.add_edge(x0, y0, weight);
    }
    builder.build()
}

/// Generates a directed Erdős–Rényi `G(n, p)` graph with unit weights.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Result<WeightedGraph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter(
            "erdos_renyi: p must be in [0, 1]".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::<(), f64>::new();
    for v in 0..n as VertexId {
        builder.ensure_vertex(v);
    }
    for u in 0..n as VertexId {
        for v in 0..n as VertexId {
            if u != v && rng.random::<f64>() < p {
                builder.add_edge(u, v, 1.0 + rng.random::<f64>() * 4.0);
            }
        }
    }
    builder.build()
}

/// A user–item rating edge produced by [`bipartite_ratings`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// The user (vertex ids `0..num_users`).
    pub user: VertexId,
    /// The item (vertex ids `num_users..num_users + num_items`).
    pub item: VertexId,
    /// Rating value in `[1, 5]`.
    pub score: f64,
}

/// Output of [`bipartite_ratings`]: a rating graph plus the raw rating list,
/// together with a "ground truth" latent model so collaborative-filtering
/// experiments can measure reconstruction error.
#[derive(Debug, Clone)]
pub struct RatingData {
    /// Bipartite graph; edge weight is the rating score.
    pub graph: WeightedGraph,
    /// Flat list of ratings (train split).
    pub train: Vec<Rating>,
    /// Held-out ratings (test split).
    pub test: Vec<Rating>,
    /// Number of user vertices (ids `0..num_users`).
    pub num_users: usize,
    /// Number of item vertices (ids `num_users..num_users+num_items`).
    pub num_items: usize,
}

/// Generates a bipartite user–item rating graph from a planted latent-factor
/// model, splitting ratings into train/test.
pub fn bipartite_ratings(
    num_users: usize,
    num_items: usize,
    ratings_per_user: usize,
    rank: usize,
    seed: u64,
) -> Result<RatingData, GraphError> {
    if num_users == 0 || num_items == 0 || ratings_per_user == 0 || rank == 0 {
        return Err(GraphError::InvalidParameter(
            "bipartite_ratings: all parameters must be positive".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let user_factors: Vec<Vec<f64>> = (0..num_users)
        .map(|_| (0..rank).map(|_| rng.random::<f64>()).collect())
        .collect();
    let item_factors: Vec<Vec<f64>> = (0..num_items)
        .map(|_| (0..rank).map(|_| rng.random::<f64>()).collect())
        .collect();
    let mut train = Vec::new();
    let mut test = Vec::new();
    let mut builder = GraphBuilder::<(), f64>::new();
    for u in 0..num_users as VertexId {
        builder.ensure_vertex(u);
    }
    for i in 0..num_items as VertexId {
        builder.ensure_vertex(num_users as VertexId + i);
    }
    for (u, user_factor) in user_factors.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..ratings_per_user {
            let item = rng.random_range(0..num_items);
            if !seen.insert(item) {
                continue;
            }
            let dot: f64 = user_factor
                .iter()
                .zip(&item_factors[item])
                .map(|(a, b)| a * b)
                .sum();
            let noise = (rng.random::<f64>() - 0.5) * 0.2;
            #[allow(clippy::manual_clamp)]
            let score = (1.0 + 4.0 * (dot / rank as f64) + noise).clamp(1.0, 5.0);
            let rating = Rating {
                user: u as VertexId,
                item: (num_users + item) as VertexId,
                score,
            };
            if rng.random::<f64>() < 0.9 {
                builder.add_edge(rating.user, rating.item, score);
                builder.add_edge(rating.item, rating.user, score);
                train.push(rating);
            } else {
                test.push(rating);
            }
        }
    }
    Ok(RatingData {
        graph: builder.build()?,
        train,
        test,
        num_users,
        num_items,
    })
}

/// Parameters of the labeled social-graph generator.
#[derive(Debug, Clone, Copy)]
pub struct SocialGraphConfig {
    /// Number of `person` vertices.
    pub num_persons: usize,
    /// Number of `product` vertices.
    pub num_products: usize,
    /// Preferential-attachment out-degree for `follows` edges.
    pub follows_per_person: usize,
    /// Probability that a person recommends a product they are exposed to.
    pub recommend_prob: f64,
    /// Probability that a person gives a bad rating to a product.
    pub bad_rating_prob: f64,
    /// Probability that a person has already bought a product.
    pub buy_prob: f64,
}

impl Default for SocialGraphConfig {
    fn default() -> Self {
        Self {
            num_persons: 1_000,
            num_products: 20,
            follows_per_person: 8,
            recommend_prob: 0.25,
            bad_rating_prob: 0.02,
            buy_prob: 0.05,
        }
    }
}

/// Keywords attached to some person vertices, used by keyword search tests.
const PERSON_KEYWORDS: &[&str] = &["student", "engineer", "artist", "doctor", "teacher"];
/// Product names used as both labels' keywords and GPAR targets.
const PRODUCT_KEYWORDS: &[&str] = &["phone", "laptop", "camera", "tablet", "watch"];

/// Generates a labeled social graph for pattern matching, keyword search and
/// the GPAR social-media-marketing use case of Fig. 4.
///
/// Vertices: `person` (ids `0..num_persons`) and `product`
/// (ids `num_persons..num_persons+num_products`).
/// Edges: `follows` (person → person, power-law), `recommends`
/// (person → product), `rates_bad` (person → product), `buys`
/// (person → product).
pub fn labeled_social(config: SocialGraphConfig, seed: u64) -> Result<LabeledGraph, GraphError> {
    if config.num_persons < 2 || config.num_products == 0 {
        return Err(GraphError::InvalidParameter(
            "labeled_social: need at least 2 persons and 1 product".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let np = config.num_persons as VertexId;
    let mut vertices: Vec<(VertexId, LabeledVertex)> = Vec::new();
    for p in 0..np {
        let kw = PERSON_KEYWORDS[rng.random_range(0..PERSON_KEYWORDS.len())];
        vertices.push((
            p,
            LabeledVertex::with_keywords("person", [kw, &format!("user{p}")]),
        ));
    }
    for i in 0..config.num_products as VertexId {
        let kw = PRODUCT_KEYWORDS[(i as usize) % PRODUCT_KEYWORDS.len()];
        vertices.push((
            np + i,
            LabeledVertex::with_keywords("product", [kw, &format!("model{i}")]),
        ));
    }

    let mut edges: Vec<EdgeRecord<String>> = Vec::new();
    // `follows` edges with preferential attachment (heavy-tailed in-degree).
    let mut endpoints: Vec<VertexId> = vec![0, 1];
    edges.push(EdgeRecord::new(1, 0, "follows".to_string()));
    for p in 2..np {
        let k = config.follows_per_person.min(p as usize);
        // Insertion-ordered for cross-process determinism (see
        // `barabasi_albert`).
        let mut chosen: Vec<VertexId> = Vec::with_capacity(k);
        let mut guard = 0;
        while chosen.len() < k && guard < 20 * k {
            guard += 1;
            let t = if rng.random::<f64>() < 0.7 && !endpoints.is_empty() {
                endpoints[rng.random_range(0..endpoints.len())]
            } else {
                rng.random_range(0..p)
            };
            if t != p && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push(EdgeRecord::new(p, t, "follows".to_string()));
            endpoints.push(t);
            endpoints.push(p);
        }
    }
    // Product interactions.
    for p in 0..np {
        for i in 0..config.num_products as VertexId {
            let product = np + i;
            let r = rng.random::<f64>();
            if r < config.recommend_prob {
                edges.push(EdgeRecord::new(p, product, "recommends".to_string()));
            } else if r < config.recommend_prob + config.bad_rating_prob {
                edges.push(EdgeRecord::new(p, product, "rates_bad".to_string()));
            }
            if rng.random::<f64>() < config.buy_prob {
                edges.push(EdgeRecord::new(p, product, "buys".to_string()));
            }
        }
    }
    LabeledGraph::from_records(vertices, edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn road_network_is_deterministic_and_connected_enough() {
        let cfg = RoadNetworkConfig {
            width: 16,
            height: 16,
            ..Default::default()
        };
        let g1 = road_network(cfg, 7).unwrap();
        let g2 = road_network(cfg, 7).unwrap();
        assert_eq!(g1.num_vertices(), g2.num_vertices());
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert!(g1.num_vertices() > 200, "most cells survive removal");
        // Undirected representation: every edge has its reverse.
        for (s, d, _) in g1.edges().take(50) {
            assert!(g1.out_edges(d).any(|(t, _)| t == s));
        }
    }

    #[test]
    fn road_network_rejects_bad_config() {
        let cfg = RoadNetworkConfig {
            width: 0,
            ..Default::default()
        };
        assert!(road_network(cfg, 1).is_err());
        let cfg = RoadNetworkConfig {
            min_weight: 5.0,
            max_weight: 1.0,
            ..Default::default()
        };
        assert!(road_network(cfg, 1).is_err());
    }

    #[test]
    fn barabasi_albert_has_heavy_tail() {
        let g = barabasi_albert(2_000, 4, 13).unwrap();
        assert_eq!(g.num_vertices(), 2_000);
        let max_deg = g
            .vertices()
            .map(|v| g.degree(v, crate::types::Direction::Both))
            .max()
            .unwrap();
        let avg_deg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max_deg as f64 > 4.0 * avg_deg,
            "power-law graphs have hubs: max {max_deg} vs avg {avg_deg}"
        );
    }

    #[test]
    fn barabasi_albert_rejects_bad_params() {
        assert!(barabasi_albert(3, 0, 1).is_err());
        assert!(barabasi_albert(3, 5, 1).is_err());
    }

    #[test]
    fn rmat_sizes() {
        let g = rmat(
            RmatConfig {
                scale: 8,
                edge_factor: 4,
                ..Default::default()
            },
            3,
        )
        .unwrap();
        assert_eq!(g.num_vertices(), 256);
        assert_eq!(g.num_edges(), 1024);
    }

    #[test]
    fn rmat_rejects_bad_probabilities() {
        let cfg = RmatConfig {
            a: 0.6,
            b: 0.3,
            c: 0.3,
            ..Default::default()
        };
        assert!(rmat(cfg, 1).is_err());
    }

    #[test]
    fn erdos_renyi_edge_count_close_to_expectation() {
        let n = 200;
        let p = 0.05;
        let g = erdos_renyi(n, p, 11).unwrap();
        let expected = (n * (n - 1)) as f64 * p;
        let actual = g.num_edges() as f64;
        assert!(
            (actual - expected).abs() < 0.3 * expected,
            "edge count {actual} should be near {expected}"
        );
        assert!(erdos_renyi(10, 1.5, 1).is_err());
    }

    #[test]
    fn bipartite_ratings_structure() {
        let data = bipartite_ratings(50, 20, 10, 4, 17).unwrap();
        assert_eq!(data.num_users, 50);
        assert_eq!(data.num_items, 20);
        assert!(!data.train.is_empty());
        for r in data.train.iter().chain(data.test.iter()) {
            assert!(r.user < 50);
            assert!(r.item >= 50 && r.item < 70);
            assert!((1.0..=5.0).contains(&r.score));
        }
        assert!(bipartite_ratings(0, 1, 1, 1, 1).is_err());
    }

    #[test]
    fn labeled_social_has_expected_labels_and_relations() {
        let g = labeled_social(
            SocialGraphConfig {
                num_persons: 200,
                num_products: 5,
                ..Default::default()
            },
            23,
        )
        .unwrap();
        assert_eq!(g.num_vertices(), 205);
        let mut relations = std::collections::HashSet::new();
        for (_, _, rel) in g.edges() {
            relations.insert(rel.clone());
        }
        assert!(relations.contains("follows"));
        assert!(relations.contains("recommends"));
        let person = g.vertex_data(0).unwrap();
        assert_eq!(person.label.0, "person");
        let product = g.vertex_data(200).unwrap();
        assert_eq!(product.label.0, "product");
        assert!(labeled_social(
            SocialGraphConfig {
                num_persons: 1,
                ..Default::default()
            },
            1
        )
        .is_err());
    }

    #[test]
    fn generators_are_seed_sensitive() {
        let a = barabasi_albert(300, 3, 1).unwrap();
        let b = barabasi_albert(300, 3, 2).unwrap();
        let ea: Vec<_> = a.edges().map(|(s, d, _)| (s, d)).collect();
        let eb: Vec<_> = b.edges().map(|(s, d, _)| (s, d)).collect();
        assert_ne!(ea, eb, "different seeds give different graphs");
    }
}
