//! Fundamental identifier and error types shared across the workspace.

use std::fmt;

/// Global vertex identifier. The paper's graphs have billions of nodes, so a
/// 64-bit id is used for the global namespace; fragments map these to dense
/// 32-bit local ids.
pub type VertexId = u64;

/// Edge identifier: the position of the edge in the CSR edge arrays.
pub type EdgeId = usize;

/// Sentinel value representing "no vertex".
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

/// Direction of traversal over a directed graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow edges from source to destination.
    Out,
    /// Follow edges from destination to source (requires the reverse CSR).
    In,
    /// Treat the graph as undirected: union of `Out` and `In`.
    Both,
}

/// Errors produced while building, loading or validating graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge referenced a vertex id that is not part of the graph.
    UnknownVertex(VertexId),
    /// The input file / text could not be parsed.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// An I/O error occurred while reading or writing graph data.
    Io(String),
    /// The requested operation needs the reverse adjacency but the graph was
    /// built without it.
    MissingReverseAdjacency,
    /// A generator or builder was given inconsistent parameters.
    InvalidParameter(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex id {v}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::MissingReverseAdjacency => {
                write!(f, "graph was built without reverse adjacency")
            }
            GraphError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

/// A single directed edge record `(src, dst, data)` used by builders,
/// loaders and generators before CSR construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRecord<E> {
    /// Source vertex (global id).
    pub src: VertexId,
    /// Destination vertex (global id).
    pub dst: VertexId,
    /// Edge payload (e.g. a weight).
    pub data: E,
}

impl<E> EdgeRecord<E> {
    /// Creates a new edge record.
    pub fn new(src: VertexId, dst: VertexId, data: E) -> Self {
        Self { src, dst, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::UnknownVertex(7);
        assert!(e.to_string().contains('7'));
        let e = GraphError::Parse {
            line: 3,
            message: "bad weight".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("bad weight"));
        let e = GraphError::InvalidParameter("k must be > 0".into());
        assert!(e.to_string().contains("k must be > 0"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }

    #[test]
    fn edge_record_constructor() {
        let r = EdgeRecord::new(1, 2, 3.5);
        assert_eq!(r.src, 1);
        assert_eq!(r.dst, 2);
        assert_eq!(r.data, 3.5);
    }

    #[test]
    fn invalid_vertex_is_max() {
        assert_eq!(INVALID_VERTEX, u64::MAX);
    }
}
