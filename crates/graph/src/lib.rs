//! # grape-graph
//!
//! Graph storage, construction, input/output and synthetic workload
//! generation for GRAPE-RS, a Rust reproduction of
//! *GRAPE: Parallelizing Sequential Graph Computations* (PVLDB 2017).
//!
//! The crate provides:
//!
//! * [`CsrGraph`] — an immutable, cache-friendly compressed-sparse-row graph
//!   with optional reverse (in-edge) adjacency, generic over vertex and edge
//!   data.
//! * [`GraphBuilder`] — an edge-at-a-time builder that produces a
//!   [`CsrGraph`].
//! * [`delta`] — a mutation overlay ([`DeltaGraph`]) that makes the immutable
//!   CSR updatable: edge/vertex insert + delete with tombstones, stable dense
//!   indices, and threshold-triggered compaction — the substrate of the
//!   cross-run incremental (streaming-update) path.
//! * [`dense`] — flat per-vertex state keyed by the dense `0..n` CSR indices
//!   ([`VertexDenseMap`], [`DenseBitset`]), the fast path used by the hot
//!   algorithm loops instead of `HashMap<VertexId, T>`.
//! * [`io`] — a plain-text edge-list loader / writer compatible with the
//!   formats used by SNAP-style datasets.
//! * [`generators`] — deterministic, seeded generators for the workload
//!   families used in the paper's evaluation: road-network-like grids,
//!   power-law (Barabási–Albert) social graphs, R-MAT graphs, Erdős–Rényi
//!   graphs, bipartite rating graphs for collaborative filtering and labeled
//!   property graphs for pattern matching / keyword search.
//! * [`metrics`] — degree distributions, component counts and other summary
//!   statistics used by the load balancer and by the benchmark harness.
//!
//! All identifiers are global [`VertexId`]s (`u64`). Partition-local dense
//! ids live in `grape-partition`.

#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod delta;
pub mod dense;
pub mod generators;
pub mod io;
pub mod labels;
pub mod metrics;
pub mod types;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use delta::{AppliedBatch, DeltaGraph, GraphMutation, MutationProfile, NetMutations};
pub use dense::{DenseBitset, VertexDenseMap};
pub use labels::{LabeledGraph, VertexLabel};
pub use types::{Direction, EdgeId, GraphError, VertexId, INVALID_VERTEX};

/// A weighted directed graph with unit vertex payloads and `f64` edge
/// weights — the workhorse instantiation used by SSSP and most benches.
pub type WeightedGraph = CsrGraph<(), f64>;

/// An unweighted directed graph (unit payloads on vertices and edges).
pub type PlainGraph = CsrGraph<(), ()>;
