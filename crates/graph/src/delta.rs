//! Mutable-graph support: a delta overlay over the immutable [`CsrGraph`].
//!
//! GRAPE's IncEval is a *bounded incremental* algorithm, which only pays off
//! if the graph can actually change between runs. [`CsrGraph`] is deliberately
//! immutable (its packed arrays are what make the superstep loop fast), so
//! mutability lives one layer up: a [`DeltaGraph`] wraps a CSR base and
//! absorbs [`GraphMutation`] batches into small side structures —
//!
//! * **inserted vertices** are appended after the base's dense range, so every
//!   base vertex keeps its dense index (border tables, bitsets and slot maps
//!   built against the base stay valid);
//! * **deleted vertices and edges** become tombstones consulted by the
//!   read-through accessors, never holes in the packed arrays;
//! * **inserted edges** live in a per-source overlay adjacency.
//!
//! Once the overlay grows past a threshold the delta is **compacted**: the
//! live view is rebuilt into a fresh CSR base and the overlay reset. Dense
//! indices may be reassigned at that point, which is why everything that
//! survives across batches (converged run state, fragment seeds) is keyed by
//! global [`VertexId`], not by dense index.
//!
//! Each [`DeltaGraph::apply`] call returns the batch's [`AppliedBatch`]
//! receipt: the *dirty set* (live vertices whose local neighbourhood changed
//! — the initial IncEval frontier of an incremental run) and a
//! [`MutationProfile`] that incremental seeders use to decide whether a warm
//! start is sound for their algorithm (e.g. SSSP only for insert-only
//! batches).

use crate::csr::CsrGraph;
use crate::types::{EdgeRecord, GraphError, VertexId};
use grape_comm::wire::{Wire, WireError, WireReader};
use std::collections::{BTreeSet, HashMap, HashSet};

/// A single graph update.
///
/// Mutations are applied in batch order by [`DeltaGraph::apply`]; a batch is
/// validated against the evolving state, so e.g. an edge may target a vertex
/// inserted earlier in the same batch.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphMutation<V, E> {
    /// Insert a new vertex. Fails if the id is already live, and also if it
    /// was previously removed and not yet compacted away (resurrecting a
    /// tombstoned dense slot would silently revive stale per-index state).
    AddVertex {
        /// Global id of the new vertex.
        id: VertexId,
        /// Its payload.
        data: V,
    },
    /// Remove a vertex and every edge incident to it. Fails if not live.
    RemoveVertex {
        /// Global id of the vertex to remove.
        id: VertexId,
    },
    /// Insert one directed edge. Both endpoints must be live.
    AddEdge {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
        /// Edge payload.
        data: E,
    },
    /// Remove **all** parallel copies of the directed edge `src -> dst`.
    /// Fails if no copy is live.
    RemoveEdge {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
    },
}

impl<V: Wire, E: Wire> Wire for GraphMutation<V, E> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GraphMutation::AddVertex { id, data } => {
                out.push(0);
                id.encode(out);
                data.encode(out);
            }
            GraphMutation::RemoveVertex { id } => {
                out.push(1);
                id.encode(out);
            }
            GraphMutation::AddEdge { src, dst, data } => {
                out.push(2);
                src.encode(out);
                dst.encode(out);
                data.encode(out);
            }
            GraphMutation::RemoveEdge { src, dst } => {
                out.push(3);
                src.encode(out);
                dst.encode(out);
            }
        }
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(GraphMutation::AddVertex {
                id: VertexId::decode(reader)?,
                data: V::decode(reader)?,
            }),
            1 => Ok(GraphMutation::RemoveVertex {
                id: VertexId::decode(reader)?,
            }),
            2 => Ok(GraphMutation::AddEdge {
                src: VertexId::decode(reader)?,
                dst: VertexId::decode(reader)?,
                data: E::decode(reader)?,
            }),
            3 => Ok(GraphMutation::RemoveEdge {
                src: VertexId::decode(reader)?,
                dst: VertexId::decode(reader)?,
            }),
            _ => Err(WireError::Malformed("unknown graph-mutation kind")),
        }
    }
}

/// Shape summary of one or more mutation batches.
///
/// Incremental seeders branch on this: a warm start that is only sound for,
/// say, insert-only updates checks `edge_deletes == 0 && vertex_deletes == 0`
/// and falls back to a cold run otherwise. Profiles from successive batches
/// [`merge`](MutationProfile::merge) into the profile of their concatenation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationProfile {
    /// Number of `AddEdge` mutations.
    pub edge_inserts: usize,
    /// Number of `RemoveEdge` mutations.
    pub edge_deletes: usize,
    /// Number of `AddVertex` mutations.
    pub vertex_inserts: usize,
    /// Number of `RemoveVertex` mutations.
    pub vertex_deletes: usize,
}

impl MutationProfile {
    /// Whether the profile records no mutations at all.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Whether every recorded mutation is an insertion.
    pub fn insert_only(&self) -> bool {
        self.edge_deletes == 0 && self.vertex_deletes == 0
    }

    /// Whether every recorded mutation is a deletion.
    pub fn delete_only(&self) -> bool {
        self.edge_inserts == 0 && self.vertex_inserts == 0
    }

    /// Whether the live vertex set changed (inserts or deletes).
    pub fn vertex_set_changed(&self) -> bool {
        self.vertex_inserts > 0 || self.vertex_deletes > 0
    }

    /// Folds another profile in (profile of the concatenated batches).
    pub fn merge(&mut self, other: &MutationProfile) {
        self.edge_inserts += other.edge_inserts;
        self.edge_deletes += other.edge_deletes;
        self.vertex_inserts += other.vertex_inserts;
        self.vertex_deletes += other.vertex_deletes;
    }

    fn record<V, E>(&mut self, m: &GraphMutation<V, E>) {
        match m {
            GraphMutation::AddVertex { .. } => self.vertex_inserts += 1,
            GraphMutation::RemoveVertex { .. } => self.vertex_deletes += 1,
            GraphMutation::AddEdge { .. } => self.edge_inserts += 1,
            GraphMutation::RemoveEdge { .. } => self.edge_deletes += 1,
        }
    }
}

impl Wire for MutationProfile {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.edge_inserts as u64).encode(out);
        (self.edge_deletes as u64).encode(out);
        (self.vertex_inserts as u64).encode(out);
        (self.vertex_deletes as u64).encode(out);
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            edge_inserts: u64::decode(reader)? as usize,
            edge_deletes: u64::decode(reader)? as usize,
            vertex_inserts: u64::decode(reader)? as usize,
            vertex_deletes: u64::decode(reader)? as usize,
        })
    }
}

/// The **net** effect of a batch relative to the pre-batch live view, with
/// within-batch churn cancelled out: an edge added and then removed in the
/// same batch appears in neither list; removing a same-batch vertex erases
/// its insertion instead of recording a deletion.
///
/// This is what gets distributed to fragment holders: each fragment applies
/// the net removals to its current local state and then appends the net
/// additions, which reproduces — copy for copy, in order — the live view a
/// fresh cut of the updated graph would see.
#[derive(Debug, Clone, PartialEq)]
pub struct NetMutations<V, E> {
    /// Vertices live after the batch that were not live before, with their
    /// payloads, in insertion order.
    pub added_vertices: Vec<(VertexId, V)>,
    /// Edge copies live after the batch that were not live before, in
    /// insertion order (the per-source relative order matters: it is the
    /// CSR adjacency order of the updated graph).
    pub added_edges: Vec<(VertexId, VertexId, E)>,
    /// `(src, dst)` pairs whose pre-batch copies were all removed.
    pub removed_edges: Vec<(VertexId, VertexId)>,
    /// Pre-batch vertices removed by the batch (their incident pre-batch
    /// edges are implicitly removed too).
    pub removed_vertices: Vec<VertexId>,
}

impl<V, E> Default for NetMutations<V, E> {
    fn default() -> Self {
        Self {
            added_vertices: Vec::new(),
            added_edges: Vec::new(),
            removed_edges: Vec::new(),
            removed_vertices: Vec::new(),
        }
    }
}

impl<V, E> NetMutations<V, E> {
    /// Whether the batch had no net effect.
    pub fn is_empty(&self) -> bool {
        self.added_vertices.is_empty()
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.removed_vertices.is_empty()
    }
}

impl<V: Wire, E: Wire> Wire for NetMutations<V, E> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.added_vertices.encode(out);
        self.added_edges.encode(out);
        self.removed_edges.encode(out);
        self.removed_vertices.encode(out);
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            added_vertices: Vec::decode(reader)?,
            added_edges: Vec::decode(reader)?,
            removed_edges: Vec::decode(reader)?,
            removed_vertices: Vec::decode(reader)?,
        })
    }
}

/// Receipt of one applied mutation batch.
#[derive(Debug, Clone)]
pub struct AppliedBatch<V, E> {
    /// Live vertices whose local neighbourhood changed: endpoints of
    /// inserted/removed edges, inserted vertices, and the surviving
    /// neighbours of removed vertices. Sorted, deduplicated, and restricted
    /// to vertices that are still live after the batch — exactly the initial
    /// frontier an incremental run seeds IncEval with.
    pub dirty: Vec<VertexId>,
    /// Shape of the batch.
    pub profile: MutationProfile,
    /// Whether applying this batch triggered a compaction (dense indices may
    /// have been reassigned).
    pub compacted: bool,
    /// The batch's net effect, ready to distribute to fragment holders.
    pub net: NetMutations<V, E>,
}

/// A [`CsrGraph`] plus a mutation overlay: insertions appended, deletions
/// tombstoned, compacted back into a fresh CSR past
/// [`pending threshold`](DeltaGraph::with_threshold).
///
/// See the [module docs](self) for the design.
#[derive(Debug, Clone)]
pub struct DeltaGraph<V, E> {
    base: CsrGraph<V, E>,
    /// Ids of vertices inserted since the last compaction, in insertion
    /// order; `added_ids[i]` has stable dense index `base.num_vertices() + i`.
    added_ids: Vec<VertexId>,
    added_index: HashMap<VertexId, u32>,
    added_data: Vec<V>,
    /// Tombstoned vertices (base vertices only — removing an added vertex
    /// also tombstones it so its id cannot be re-inserted before compaction).
    removed_vertices: HashSet<VertexId>,
    /// Overlay adjacency: edges inserted since the last compaction. Invariant:
    /// every entry is live (incident removals purge the overlay eagerly).
    extra_out: HashMap<VertexId, Vec<(VertexId, E)>>,
    /// Tombstoned base edges: `(src, dst)` suppresses every base copy.
    removed_edges: HashSet<(VertexId, VertexId)>,
    pending_ops: usize,
    threshold: usize,
}

impl<V: Clone + Default, E: Clone> DeltaGraph<V, E> {
    /// Default number of pending mutations before a compaction.
    pub const DEFAULT_COMPACTION_THRESHOLD: usize = 4096;

    /// Wraps a base graph with the default compaction threshold.
    pub fn new(base: CsrGraph<V, E>) -> Self {
        Self::with_threshold(base, Self::DEFAULT_COMPACTION_THRESHOLD)
    }

    /// Wraps a base graph, compacting once `threshold` mutations are pending.
    /// A threshold of 0 compacts after every batch.
    pub fn with_threshold(base: CsrGraph<V, E>, threshold: usize) -> Self {
        Self {
            base,
            added_ids: Vec::new(),
            added_index: HashMap::new(),
            added_data: Vec::new(),
            removed_vertices: HashSet::new(),
            extra_out: HashMap::new(),
            removed_edges: HashSet::new(),
            pending_ops: 0,
            threshold,
        }
    }

    /// The current CSR base (excludes the overlay).
    pub fn base(&self) -> &CsrGraph<V, E> {
        &self.base
    }

    /// Mutations applied since the last compaction.
    pub fn pending_ops(&self) -> usize {
        self.pending_ops
    }

    /// Whether `v` is live (present and not tombstoned).
    pub fn contains(&self, v: VertexId) -> bool {
        !self.removed_vertices.contains(&v)
            && (self.base.contains(v) || self.added_index.contains_key(&v))
    }

    /// Number of live vertices.
    pub fn num_vertices(&self) -> usize {
        // Every tombstone names a previously-live vertex exactly once.
        self.base.num_vertices() + self.added_ids.len() - self.removed_vertices.len()
    }

    /// Number of live edges (counting parallel copies). `O(E)` — the delta
    /// layer sits outside the superstep loop, so clarity wins over caching.
    pub fn num_edges(&self) -> usize {
        let overlay: usize = self.extra_out.values().map(Vec::len).sum();
        let base_live = self
            .base
            .edges()
            .filter(|(s, d, _)| self.base_edge_live(*s, *d))
            .count();
        base_live + overlay
    }

    /// The stable dense index of a live vertex: its base index, or appended
    /// after the base range for vertices inserted since the last compaction.
    /// `None` for tombstoned / unknown vertices.
    pub fn dense_index(&self, v: VertexId) -> Option<u32> {
        if self.removed_vertices.contains(&v) {
            return None;
        }
        self.base.dense_index(v).or_else(|| {
            self.added_index
                .get(&v)
                .map(|i| self.base.num_vertices() as u32 + i)
        })
    }

    /// Live vertex ids: base order followed by insertion order.
    pub fn vertices(&self) -> Vec<VertexId> {
        self.base
            .vertex_ids()
            .iter()
            .chain(self.added_ids.iter())
            .copied()
            .filter(|v| !self.removed_vertices.contains(v))
            .collect()
    }

    /// Payload of a live vertex.
    pub fn vertex_data(&self, v: VertexId) -> Option<&V> {
        if self.removed_vertices.contains(&v) {
            return None;
        }
        self.base.vertex_data(v).or_else(|| {
            self.added_index
                .get(&v)
                .map(|&i| &self.added_data[i as usize])
        })
    }

    /// Live out-edges of `v`: surviving base copies first, then overlay
    /// insertions in insertion order.
    pub fn out_edges(&self, v: VertexId) -> Vec<(VertexId, E)> {
        let mut out = Vec::new();
        if !self.contains(v) {
            return out;
        }
        if self.base.contains(v) {
            for (d, data) in self.base.out_edges(v) {
                if self.base_edge_live(v, d) {
                    out.push((d, data.clone()));
                }
            }
        }
        if let Some(extra) = self.extra_out.get(&v) {
            out.extend(extra.iter().cloned());
        }
        out
    }

    /// All live edges as records (base order, then overlay per-source order).
    pub fn live_edges(&self) -> Vec<EdgeRecord<E>> {
        let mut out = Vec::new();
        for (s, d, data) in self.base.edges() {
            if self.base_edge_live(s, d) {
                out.push(EdgeRecord::new(s, d, data.clone()));
            }
        }
        for v in self
            .base
            .vertex_ids()
            .iter()
            .chain(self.added_ids.iter())
            .copied()
        {
            if let Some(extra) = self.extra_out.get(&v) {
                for (d, data) in extra {
                    out.push(EdgeRecord::new(v, *d, data.clone()));
                }
            }
        }
        out
    }

    fn base_edge_live(&self, s: VertexId, d: VertexId) -> bool {
        !self.removed_edges.contains(&(s, d))
            && !self.removed_vertices.contains(&s)
            && !self.removed_vertices.contains(&d)
    }

    /// Applies a mutation batch atomically: either every mutation is applied
    /// (and the receipt returned), or the graph is left untouched and the
    /// first offending mutation's error is returned.
    ///
    /// Triggers a compaction when the pending-mutation count crosses the
    /// threshold; `AppliedBatch::compacted` reports it so callers know dense
    /// indices may have been reassigned.
    pub fn apply(
        &mut self,
        batch: &[GraphMutation<V, E>],
    ) -> Result<AppliedBatch<V, E>, GraphError> {
        // Stage on a clone of the overlay state; the base is shared and never
        // mutated here, so cloning is proportional to the delta, not the graph.
        let mut staged = self.clone_overlay();
        let mut dirty: BTreeSet<VertexId> = BTreeSet::new();
        let mut profile = MutationProfile::default();
        let mut net = NetMutations::default();
        for m in batch {
            staged.apply_one(m, &mut dirty, &mut net)?;
            profile.record(m);
        }
        // Commit: destructure the staged overlay first so the borrow of
        // `self.base` it carries ends before `self` is mutated.
        let OverlayState {
            base: _,
            added_ids,
            added_index,
            added_data,
            removed_vertices,
            extra_out,
            removed_edges,
        } = staged;
        self.added_ids = added_ids;
        self.added_index = added_index;
        self.added_data = added_data;
        self.removed_vertices = removed_vertices;
        self.extra_out = extra_out;
        self.removed_edges = removed_edges;
        self.pending_ops += batch.len();
        let dirty: Vec<VertexId> = dirty.into_iter().filter(|&v| self.contains(v)).collect();
        let compacted = self.pending_ops >= self.threshold && self.pending_ops > 0;
        if compacted {
            self.compact();
        }
        Ok(AppliedBatch {
            dirty,
            profile,
            compacted,
            net,
        })
    }

    fn clone_overlay(&self) -> OverlayState<'_, V, E> {
        OverlayState {
            base: &self.base,
            added_ids: self.added_ids.clone(),
            added_index: self.added_index.clone(),
            added_data: self.added_data.clone(),
            removed_vertices: self.removed_vertices.clone(),
            extra_out: self.extra_out.clone(),
            removed_edges: self.removed_edges.clone(),
        }
    }

    /// Rebuilds the base CSR from the live view and clears the overlay.
    /// Dense indices may be reassigned (vertex ids are re-sorted); everything
    /// that outlives a compaction must be keyed by global id.
    pub fn compact(&mut self) {
        let vertices: Vec<(VertexId, V)> = self
            .vertices()
            .into_iter()
            .map(|v| (v, self.vertex_data(v).cloned().unwrap_or_default()))
            .collect();
        let edges = self.live_edges();
        let with_reverse = self.base.has_reverse();
        self.base = CsrGraph::from_records(vertices, edges, with_reverse)
            .expect("live view is internally consistent");
        self.added_ids.clear();
        self.added_index.clear();
        self.added_data.clear();
        self.removed_vertices.clear();
        self.extra_out.clear();
        self.removed_edges.clear();
        self.pending_ops = 0;
    }

    /// Materializes the live view as a fresh CSR (the overlay is untouched).
    /// This is what a cold run on the updated graph executes against.
    pub fn snapshot(&self, with_reverse: bool) -> CsrGraph<V, E> {
        let vertices: Vec<(VertexId, V)> = self
            .vertices()
            .into_iter()
            .map(|v| (v, self.vertex_data(v).cloned().unwrap_or_default()))
            .collect();
        CsrGraph::from_records(vertices, self.live_edges(), with_reverse)
            .expect("live view is internally consistent")
    }
}

/// The staged overlay of an in-flight [`DeltaGraph::apply`] batch.
struct OverlayState<'a, V, E> {
    base: &'a CsrGraph<V, E>,
    added_ids: Vec<VertexId>,
    added_index: HashMap<VertexId, u32>,
    added_data: Vec<V>,
    removed_vertices: HashSet<VertexId>,
    extra_out: HashMap<VertexId, Vec<(VertexId, E)>>,
    removed_edges: HashSet<(VertexId, VertexId)>,
}

impl<V: Clone, E: Clone> OverlayState<'_, V, E> {
    fn contains(&self, v: VertexId) -> bool {
        !self.removed_vertices.contains(&v)
            && (self.base.contains(v) || self.added_index.contains_key(&v))
    }

    fn base_edge_live(&self, s: VertexId, d: VertexId) -> bool {
        !self.removed_edges.contains(&(s, d))
            && !self.removed_vertices.contains(&s)
            && !self.removed_vertices.contains(&d)
    }

    fn apply_one(
        &mut self,
        m: &GraphMutation<V, E>,
        dirty: &mut BTreeSet<VertexId>,
        net: &mut NetMutations<V, E>,
    ) -> Result<(), GraphError> {
        match m {
            GraphMutation::AddVertex { id, data } => {
                if self.contains(*id) {
                    return Err(GraphError::InvalidParameter(format!(
                        "AddVertex: vertex {id} already exists"
                    )));
                }
                if self.removed_vertices.contains(id) || self.base.contains(*id) {
                    return Err(GraphError::InvalidParameter(format!(
                        "AddVertex: vertex {id} was removed and cannot be re-inserted \
                         before compaction"
                    )));
                }
                self.added_index.insert(*id, self.added_ids.len() as u32);
                self.added_ids.push(*id);
                self.added_data.push(data.clone());
                net.added_vertices.push((*id, data.clone()));
                dirty.insert(*id);
            }
            GraphMutation::RemoveVertex { id } => {
                if !self.contains(*id) {
                    return Err(GraphError::UnknownVertex(*id));
                }
                // Neighbours lose an edge: they are the dirty frontier.
                for (d, _) in self.live_out_edges(*id) {
                    dirty.insert(d);
                }
                for s in self.live_in_sources(*id) {
                    dirty.insert(s);
                }
                dirty.insert(*id);
                // Purge overlay edges incident to the vertex so the overlay
                // invariant (everything in extra_out is live) holds.
                self.extra_out.remove(id);
                for extra in self.extra_out.values_mut() {
                    extra.retain(|(d, _)| d != id);
                }
                self.extra_out.retain(|_, extra| !extra.is_empty());
                self.removed_vertices.insert(*id);
                // Net effect: a same-batch insertion simply disappears;
                // otherwise the pre-batch vertex is recorded as removed.
                // Same-batch edges incident to the vertex disappear too.
                net.added_edges.retain(|(s, d, _)| s != id && d != id);
                if let Some(pos) = net.added_vertices.iter().position(|(v, _)| v == id) {
                    net.added_vertices.remove(pos);
                } else {
                    net.removed_vertices.push(*id);
                }
            }
            GraphMutation::AddEdge { src, dst, data } => {
                for v in [src, dst] {
                    if !self.contains(*v) {
                        return Err(GraphError::UnknownVertex(*v));
                    }
                }
                self.extra_out
                    .entry(*src)
                    .or_default()
                    .push((*dst, data.clone()));
                net.added_edges.push((*src, *dst, data.clone()));
                dirty.insert(*src);
                dirty.insert(*dst);
            }
            GraphMutation::RemoveEdge { src, dst } => {
                let mut removed_any = false;
                if self.base.contains(*src)
                    && self.base_edge_live(*src, *dst)
                    && self.base.out_edges(*src).any(|(d, _)| d == *dst)
                {
                    self.removed_edges.insert((*src, *dst));
                    removed_any = true;
                }
                if let Some(extra) = self.extra_out.get_mut(src) {
                    let before = extra.len();
                    extra.retain(|(d, _)| d != dst);
                    if extra.len() < before {
                        removed_any = true;
                    }
                    if extra.is_empty() {
                        self.extra_out.remove(src);
                    }
                }
                if !removed_any {
                    return Err(GraphError::InvalidParameter(format!(
                        "RemoveEdge: no live edge {src} -> {dst}"
                    )));
                }
                // Net effect: same-batch copies are cancelled outright, and
                // the pair is recorded as removed (holders remove by pair, so
                // recording it when no pre-batch copy exists matches nothing
                // and is harmless).
                net.added_edges.retain(|(s, d, _)| !(s == src && d == dst));
                if !net.removed_edges.contains(&(*src, *dst)) {
                    net.removed_edges.push((*src, *dst));
                }
                dirty.insert(*src);
                dirty.insert(*dst);
            }
        }
        Ok(())
    }

    fn live_out_edges(&self, v: VertexId) -> Vec<(VertexId, ())> {
        let mut out = Vec::new();
        if self.base.contains(v) && !self.removed_vertices.contains(&v) {
            for (d, _) in self.base.out_edges(v) {
                if self.base_edge_live(v, d) {
                    out.push((d, ()));
                }
            }
        }
        if let Some(extra) = self.extra_out.get(&v) {
            out.extend(extra.iter().map(|(d, _)| (*d, ())));
        }
        out
    }

    fn live_in_sources(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        if self.base.contains(v) && !self.removed_vertices.contains(&v) {
            if self.base.has_reverse() {
                for (s, _) in self.base.in_edges(v) {
                    if self.base_edge_live(s, v) {
                        out.push(s);
                    }
                }
            } else {
                for (s, d, _) in self.base.edges() {
                    if d == v && self.base_edge_live(s, d) {
                        out.push(s);
                    }
                }
            }
        }
        for (s, extra) in &self.extra_out {
            if extra.iter().any(|(d, _)| *d == v) {
                out.push(*s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    type G = CsrGraph<(), f64>;

    fn diamond() -> G {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::<(), f64>::new().with_reverse(true);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(0, 2, 2.0);
        b.add_edge(2, 3, 2.0);
        b.build().unwrap()
    }

    fn add_edge(src: VertexId, dst: VertexId, w: f64) -> GraphMutation<(), f64> {
        GraphMutation::AddEdge { src, dst, data: w }
    }

    #[test]
    fn insertions_are_read_through_and_dense_index_stable() {
        let base = diamond();
        let base_idx: Vec<Option<u32>> = (0..4).map(|v| base.dense_index(v)).collect();
        let mut dg = DeltaGraph::new(base);
        let receipt = dg
            .apply(&[
                GraphMutation::AddVertex { id: 9, data: () },
                add_edge(3, 9, 0.5),
                add_edge(9, 0, 0.25),
            ])
            .unwrap();
        assert_eq!(receipt.dirty, vec![0, 3, 9]);
        assert!(receipt.profile.insert_only());
        assert!(!receipt.compacted);
        assert_eq!(dg.num_vertices(), 5);
        assert_eq!(dg.num_edges(), 6);
        assert!(dg.contains(9));
        // Base vertices keep their dense indices; the new vertex is appended.
        for v in 0..4 {
            assert_eq!(dg.dense_index(v), base_idx[v as usize]);
        }
        assert_eq!(dg.dense_index(9), Some(4));
        assert_eq!(dg.out_edges(9), vec![(0, 0.25)]);
        let out3 = dg.out_edges(3);
        assert_eq!(out3, vec![(9, 0.5)]);
    }

    #[test]
    fn removals_tombstone_without_disturbing_live_state() {
        let mut dg = DeltaGraph::new(diamond());
        let receipt = dg
            .apply(&[GraphMutation::RemoveEdge { src: 0, dst: 2 }])
            .unwrap();
        assert_eq!(receipt.dirty, vec![0, 2]);
        assert!(receipt.profile.delete_only());
        assert_eq!(dg.num_edges(), 3);
        assert_eq!(dg.out_edges(0), vec![(1, 1.0)]);
        // Vertex removal drops the vertex and its incident edges, and dirties
        // the surviving neighbours.
        let receipt = dg.apply(&[GraphMutation::RemoveVertex { id: 1 }]).unwrap();
        assert_eq!(receipt.dirty, vec![0, 3]);
        assert!(!dg.contains(1));
        assert_eq!(dg.dense_index(1), None);
        assert_eq!(dg.num_vertices(), 3);
        assert_eq!(dg.num_edges(), 1); // only 2 -> 3 survives
        assert!(dg.out_edges(0).is_empty());
        assert_eq!(dg.vertices(), vec![0, 2, 3]);
    }

    #[test]
    fn invalid_mutations_leave_the_graph_untouched() {
        let mut dg = DeltaGraph::new(diamond());
        // Second mutation fails -> the first must not stick either.
        let err = dg
            .apply(&[add_edge(0, 3, 9.0), add_edge(0, 77, 1.0)])
            .unwrap_err();
        assert!(matches!(err, GraphError::UnknownVertex(77)));
        assert_eq!(dg.num_edges(), 4);
        assert!(dg.out_edges(0).iter().all(|(_, w)| *w != 9.0));

        assert!(dg
            .apply(&[GraphMutation::AddVertex { id: 2, data: () }])
            .is_err());
        assert!(dg
            .apply(&[GraphMutation::RemoveEdge { src: 1, dst: 0 }])
            .is_err());
        assert!(dg.apply(&[GraphMutation::RemoveVertex { id: 42 }]).is_err());
        // A removed vertex id cannot be resurrected before compaction.
        dg.apply(&[GraphMutation::RemoveVertex { id: 1 }]).unwrap();
        assert!(dg
            .apply(&[GraphMutation::AddVertex { id: 1, data: () }])
            .is_err());
    }

    #[test]
    fn remove_edge_drops_all_parallel_copies() {
        let mut b = GraphBuilder::<(), f64>::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 1, 2.0);
        let mut dg = DeltaGraph::new(b.build().unwrap());
        dg.apply(&[add_edge(0, 1, 3.0)]).unwrap();
        assert_eq!(dg.num_edges(), 3);
        dg.apply(&[GraphMutation::RemoveEdge { src: 0, dst: 1 }])
            .unwrap();
        assert_eq!(dg.num_edges(), 0);
        // Re-inserting after a tombstone works: the overlay copy is live even
        // though the base copies stay suppressed.
        dg.apply(&[add_edge(0, 1, 4.0)]).unwrap();
        assert_eq!(dg.out_edges(0), vec![(1, 4.0)]);
    }

    #[test]
    fn compaction_fires_on_threshold_and_preserves_the_live_view() {
        let mut dg = DeltaGraph::with_threshold(diamond(), 3);
        let before = {
            let r = dg
                .apply(&[
                    GraphMutation::AddVertex { id: 7, data: () },
                    add_edge(7, 0, 9.0),
                ])
                .unwrap();
            assert!(!r.compacted);
            (dg.num_vertices(), dg.num_edges())
        };
        let r = dg
            .apply(&[GraphMutation::RemoveEdge { src: 0, dst: 1 }])
            .unwrap();
        assert!(r.compacted);
        assert_eq!(dg.pending_ops(), 0);
        assert_eq!(dg.num_vertices(), before.0);
        assert_eq!(dg.num_edges(), before.1 - 1);
        // The overlay is folded into the base; the view is unchanged.
        assert!(dg.base().contains(7));
        assert_eq!(dg.out_edges(7), vec![(0, 9.0)]);
        assert!(dg.out_edges(0).iter().all(|(d, _)| *d != 1));
        // A removed id is usable again after compaction.
        dg.apply(&[GraphMutation::RemoveVertex { id: 7 }]).unwrap();
        dg.compact();
        dg.apply(&[GraphMutation::AddVertex { id: 7, data: () }])
            .unwrap();
        assert!(dg.contains(7));
    }

    #[test]
    fn snapshot_matches_the_live_view() {
        let mut dg = DeltaGraph::new(diamond());
        dg.apply(&[
            GraphMutation::AddVertex { id: 5, data: () },
            add_edge(5, 3, 1.5),
            GraphMutation::RemoveEdge { src: 1, dst: 3 },
        ])
        .unwrap();
        let snap = dg.snapshot(true);
        assert_eq!(snap.num_vertices(), dg.num_vertices());
        assert_eq!(snap.num_edges(), dg.num_edges());
        assert!(snap.has_reverse());
        for v in dg.vertices() {
            let mut live: Vec<(VertexId, f64)> = dg.out_edges(v);
            let mut snapped: Vec<(VertexId, f64)> =
                snap.out_edges(v).map(|(d, w)| (d, *w)).collect();
            live.sort_by(|a, b| a.partial_cmp(b).unwrap());
            snapped.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(live, snapped, "out-edges of {v}");
        }
    }

    #[test]
    fn net_effect_cancels_within_batch_churn() {
        let mut dg = DeltaGraph::new(diamond());
        let receipt = dg
            .apply(&[
                GraphMutation::AddVertex { id: 8, data: () },
                add_edge(8, 0, 1.0),
                add_edge(0, 3, 7.0),
                // Same-batch churn: vertex 9 and its edge vanish entirely.
                GraphMutation::AddVertex { id: 9, data: () },
                add_edge(9, 8, 2.0),
                GraphMutation::RemoveVertex { id: 9 },
                // Removing 0 -> 1 only affects the pre-batch copy.
                GraphMutation::RemoveEdge { src: 0, dst: 1 },
            ])
            .unwrap();
        let net = &receipt.net;
        assert_eq!(net.added_vertices, vec![(8, ())]);
        assert_eq!(net.added_edges, vec![(8, 0, 1.0), (0, 3, 7.0)]);
        assert_eq!(net.removed_edges, vec![(0, 1)]);
        assert!(net.removed_vertices.is_empty());
        assert!(!net.is_empty());

        // Add-then-remove of the same pair cancels the batch copy but still
        // records the pair (pre-batch copies must go).
        let receipt = dg
            .apply(&[
                add_edge(2, 3, 9.0),
                GraphMutation::RemoveEdge { src: 2, dst: 3 },
            ])
            .unwrap();
        assert!(receipt.net.added_edges.is_empty());
        assert_eq!(receipt.net.removed_edges, vec![(2, 3)]);
        // Removing a pre-batch vertex records it.
        let receipt = dg.apply(&[GraphMutation::RemoveVertex { id: 8 }]).unwrap();
        assert_eq!(receipt.net.removed_vertices, vec![8]);
        assert!(receipt.net.added_vertices.is_empty());
        assert!(NetMutations::<(), f64>::default().is_empty());
    }

    #[test]
    fn profiles_merge_and_classify() {
        let mut p = MutationProfile {
            edge_inserts: 2,
            ..Default::default()
        };
        assert!(p.insert_only() && !p.delete_only() && !p.is_empty());
        p.merge(&MutationProfile {
            edge_deletes: 1,
            vertex_inserts: 1,
            ..Default::default()
        });
        assert!(!p.insert_only() && !p.delete_only());
        assert!(p.vertex_set_changed());
        assert_eq!(p.edge_inserts, 2);
        assert!(MutationProfile::default().is_empty());
    }

    #[test]
    fn mutations_roundtrip_on_the_wire() {
        let batch: Vec<GraphMutation<(), f64>> = vec![
            GraphMutation::AddVertex { id: 3, data: () },
            GraphMutation::RemoveVertex { id: 4 },
            add_edge(1, 2, 0.5),
            GraphMutation::RemoveEdge { src: 2, dst: 1 },
        ];
        let bytes = batch.encode_to_vec();
        let mut reader = WireReader::new(&bytes);
        let back = Vec::<GraphMutation<(), f64>>::decode(&mut reader).unwrap();
        reader.finish().unwrap();
        assert_eq!(back, batch);

        let profile = MutationProfile {
            edge_inserts: 1,
            edge_deletes: 2,
            vertex_inserts: 3,
            vertex_deletes: 4,
        };
        let bytes = profile.encode_to_vec();
        let mut reader = WireReader::new(&bytes);
        assert_eq!(MutationProfile::decode(&mut reader).unwrap(), profile);
        reader.finish().unwrap();

        // Bad kind byte and truncation are typed errors.
        let mut bad = WireReader::new(&[9u8]);
        assert!(GraphMutation::<(), f64>::decode(&mut bad).is_err());
        let bytes = batch.encode_to_vec();
        let mut truncated = WireReader::new(&bytes[..bytes.len() - 1]);
        assert!(Vec::<GraphMutation<(), f64>>::decode(&mut truncated).is_err());
    }
}
