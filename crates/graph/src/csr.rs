//! Compressed-sparse-row graph storage.
//!
//! [`CsrGraph`] is the immutable graph representation used throughout
//! GRAPE-RS: by the sequential reference algorithms, by the partitioners when
//! cutting a graph into fragments, and by the baseline engines. It stores the
//! forward adjacency as the classic `(offsets, targets)` pair and, optionally,
//! the reverse adjacency for algorithms that need in-edges (graph simulation,
//! PageRank, keyword search on undirected semantics).

use crate::types::{Direction, EdgeRecord, GraphError, VertexId};
use std::collections::HashMap;

/// An immutable compressed-sparse-row graph.
///
/// * `V` — per-vertex payload (label, attribute record, …).
/// * `E` — per-edge payload (weight, relation type, …).
///
/// Vertices carry arbitrary global [`VertexId`]s; internally they are mapped
/// to dense indices `0..num_vertices`. All adjacency queries accept global
/// ids and the dense index is available through [`CsrGraph::dense_index`] for
/// algorithms that want to use flat arrays keyed by vertex.
#[derive(Debug, Clone)]
pub struct CsrGraph<V, E> {
    /// Sorted list of global vertex ids; position = dense index.
    vertex_ids: Vec<VertexId>,
    /// Map from global id to dense index.
    index_of: HashMap<VertexId, u32>,
    /// Per-vertex payloads, indexed densely.
    vertex_data: Vec<V>,
    /// CSR offsets for out-edges (`len = n + 1`).
    out_offsets: Vec<usize>,
    /// Dense target indices for out-edges.
    out_targets: Vec<u32>,
    /// Edge payloads aligned with `out_targets`.
    out_data: Vec<E>,
    /// CSR offsets for in-edges, empty if reverse adjacency was not built.
    in_offsets: Vec<usize>,
    /// Dense source indices for in-edges.
    in_sources: Vec<u32>,
    /// For each in-edge, the position of the corresponding out-edge, so the
    /// payload can be shared without cloning.
    in_edge_pos: Vec<usize>,
}

impl<V, E> CsrGraph<V, E>
where
    V: Clone,
    E: Clone,
{
    /// Builds a CSR graph from vertex and edge records.
    ///
    /// `vertices` supplies `(id, payload)` pairs; every edge endpoint must be
    /// present. When `with_reverse` is true the in-adjacency is also built.
    pub fn from_records(
        vertices: Vec<(VertexId, V)>,
        edges: Vec<EdgeRecord<E>>,
        with_reverse: bool,
    ) -> Result<Self, GraphError> {
        let mut vertex_ids: Vec<VertexId> = vertices.iter().map(|(id, _)| *id).collect();
        vertex_ids.sort_unstable();
        vertex_ids.dedup();
        let index_of: HashMap<VertexId, u32> = vertex_ids
            .iter()
            .enumerate()
            .map(|(i, id)| (*id, i as u32))
            .collect();
        if index_of.len() != vertices.len() {
            // Duplicate vertex ids: keep the first payload for each id but
            // treat it as a parameter problem so callers notice.
            return Err(GraphError::InvalidParameter(
                "duplicate vertex ids supplied to CsrGraph::from_records".into(),
            ));
        }
        let n = vertex_ids.len();
        let mut vertex_data: Vec<Option<V>> = vec![None; n];
        for (id, data) in vertices {
            let idx = index_of[&id] as usize;
            vertex_data[idx] = Some(data);
        }
        let vertex_data: Vec<V> = vertex_data
            .into_iter()
            .map(|d| d.expect("filled"))
            .collect();

        // Count out-degrees.
        let mut out_degree = vec![0usize; n];
        for e in &edges {
            let s = *index_of
                .get(&e.src)
                .ok_or(GraphError::UnknownVertex(e.src))? as usize;
            let _ = *index_of
                .get(&e.dst)
                .ok_or(GraphError::UnknownVertex(e.dst))?;
            out_degree[s] += 1;
        }
        let mut out_offsets = vec![0usize; n + 1];
        for i in 0..n {
            out_offsets[i + 1] = out_offsets[i] + out_degree[i];
        }
        let m = edges.len();
        let mut out_targets = vec![0u32; m];
        let mut out_data: Vec<Option<E>> = vec![None; m];
        let mut cursor = out_offsets.clone();
        for e in &edges {
            let s = index_of[&e.src] as usize;
            let d = index_of[&e.dst];
            let pos = cursor[s];
            out_targets[pos] = d;
            out_data[pos] = Some(e.data.clone());
            cursor[s] += 1;
        }
        let out_data: Vec<E> = out_data.into_iter().map(|d| d.expect("filled")).collect();

        let (in_offsets, in_sources, in_edge_pos) = if with_reverse {
            let mut in_degree = vec![0usize; n];
            for &t in &out_targets {
                in_degree[t as usize] += 1;
            }
            let mut in_offsets = vec![0usize; n + 1];
            for i in 0..n {
                in_offsets[i + 1] = in_offsets[i] + in_degree[i];
            }
            let mut in_sources = vec![0u32; m];
            let mut in_edge_pos = vec![0usize; m];
            let mut cursor = in_offsets.clone();
            for s in 0..n {
                let range = out_offsets[s]..out_offsets[s + 1];
                for (pos, &target) in out_targets[range.clone()].iter().enumerate() {
                    let pos = range.start + pos;
                    let t = target as usize;
                    let p = cursor[t];
                    in_sources[p] = s as u32;
                    in_edge_pos[p] = pos;
                    cursor[t] += 1;
                }
            }
            (in_offsets, in_sources, in_edge_pos)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };

        Ok(Self {
            vertex_ids,
            index_of,
            vertex_data,
            out_offsets,
            out_targets,
            out_data,
            in_offsets,
            in_sources,
            in_edge_pos,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_ids.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Whether the reverse adjacency is available.
    pub fn has_reverse(&self) -> bool {
        !self.in_offsets.is_empty() || self.num_edges() == 0
    }

    /// Returns true if the graph contains the given global id.
    pub fn contains(&self, v: VertexId) -> bool {
        self.index_of.contains_key(&v)
    }

    /// The dense index (`0..n`) of a global vertex id.
    pub fn dense_index(&self, v: VertexId) -> Option<u32> {
        self.index_of.get(&v).copied()
    }

    /// The global id at a dense index.
    pub fn vertex_id(&self, dense: u32) -> VertexId {
        self.vertex_ids[dense as usize]
    }

    /// The global id at a dense index (the inverse of
    /// [`CsrGraph::dense_index`]; alias of [`CsrGraph::vertex_id`] used by
    /// dense-path code for symmetry with `dense_index`).
    #[inline]
    pub fn vertex_of(&self, dense: u32) -> VertexId {
        self.vertex_id(dense)
    }

    /// Out-degree of the vertex at dense index `u`.
    #[inline]
    pub fn out_degree_dense(&self, u: u32) -> usize {
        self.out_offsets[u as usize + 1] - self.out_offsets[u as usize]
    }

    /// The dense indices of the out-neighbours of the vertex at dense index
    /// `u`, as a flat slice into the CSR target array.
    #[inline]
    pub fn out_neighbors_dense(&self, u: u32) -> &[u32] {
        &self.out_targets[self.out_offsets[u as usize]..self.out_offsets[u as usize + 1]]
    }

    /// The edge payloads of the out-edges of `u`, aligned element-for-element
    /// with [`CsrGraph::out_neighbors_dense`].
    #[inline]
    pub fn out_edge_data_dense(&self, u: u32) -> &[E] {
        &self.out_data[self.out_offsets[u as usize]..self.out_offsets[u as usize + 1]]
    }

    /// Iterates over the out-edges of dense vertex `u` as
    /// `(dense_target, &edge_data)` — the dense counterpart of
    /// [`CsrGraph::out_edges`].
    #[inline]
    pub fn out_edges_dense(&self, u: u32) -> impl Iterator<Item = (u32, &E)> + '_ {
        self.out_neighbors_dense(u)
            .iter()
            .copied()
            .zip(self.out_edge_data_dense(u))
    }

    /// The dense indices of the in-neighbours of the vertex at dense index
    /// `u`. Empty when the reverse adjacency was not built.
    #[inline]
    pub fn in_neighbors_dense(&self, u: u32) -> &[u32] {
        if self.in_offsets.is_empty() {
            return &[];
        }
        &self.in_sources[self.in_offsets[u as usize]..self.in_offsets[u as usize + 1]]
    }

    /// Iterates over the in-edges of dense vertex `u` as
    /// `(dense_source, &edge_data)`, sharing payloads with the out-edge
    /// arrays. Empty when the reverse adjacency was not built.
    pub fn in_edges_dense(&self, u: u32) -> impl Iterator<Item = (u32, &E)> + '_ {
        let range = if self.in_offsets.is_empty() {
            0..0
        } else {
            self.in_offsets[u as usize]..self.in_offsets[u as usize + 1]
        };
        range.map(move |pos| (self.in_sources[pos], &self.out_data[self.in_edge_pos[pos]]))
    }

    /// Iterator over all global vertex ids in ascending order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertex_ids.iter().copied()
    }

    /// Slice of all global vertex ids in ascending order.
    pub fn vertex_ids(&self) -> &[VertexId] {
        &self.vertex_ids
    }

    /// Payload of a vertex.
    pub fn vertex_data(&self, v: VertexId) -> Option<&V> {
        self.dense_index(v).map(|i| &self.vertex_data[i as usize])
    }

    /// Payload of a vertex by dense index.
    pub fn vertex_data_at(&self, dense: u32) -> &V {
        &self.vertex_data[dense as usize]
    }

    /// Out-degree of a vertex. Returns 0 for unknown vertices.
    pub fn out_degree(&self, v: VertexId) -> usize {
        match self.dense_index(v) {
            Some(i) => self.out_offsets[i as usize + 1] - self.out_offsets[i as usize],
            None => 0,
        }
    }

    /// In-degree of a vertex. Requires reverse adjacency; returns 0 otherwise.
    pub fn in_degree(&self, v: VertexId) -> usize {
        if self.in_offsets.is_empty() {
            return 0;
        }
        match self.dense_index(v) {
            Some(i) => self.in_offsets[i as usize + 1] - self.in_offsets[i as usize],
            None => 0,
        }
    }

    /// Degree in the requested direction (`Both` = out + in).
    pub fn degree(&self, v: VertexId, dir: Direction) -> usize {
        match dir {
            Direction::Out => self.out_degree(v),
            Direction::In => self.in_degree(v),
            Direction::Both => self.out_degree(v) + self.in_degree(v),
        }
    }

    /// Iterates over the out-neighbours of `v` as `(neighbour_id, &edge_data)`.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, &E)> + '_ {
        let range = match self.dense_index(v) {
            Some(i) => self.out_offsets[i as usize]..self.out_offsets[i as usize + 1],
            None => 0..0,
        };
        range.map(move |pos| {
            (
                self.vertex_ids[self.out_targets[pos] as usize],
                &self.out_data[pos],
            )
        })
    }

    /// Iterates over the in-neighbours of `v` as `(neighbour_id, &edge_data)`.
    ///
    /// Returns an empty iterator when the reverse adjacency was not built.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, &E)> + '_ {
        let range = match (self.dense_index(v), self.in_offsets.is_empty()) {
            (Some(i), false) => self.in_offsets[i as usize]..self.in_offsets[i as usize + 1],
            _ => 0..0,
        };
        range.map(move |pos| {
            (
                self.vertex_ids[self.in_sources[pos] as usize],
                &self.out_data[self.in_edge_pos[pos]],
            )
        })
    }

    /// Iterates over neighbours in the requested direction.
    pub fn neighbours(
        &self,
        v: VertexId,
        dir: Direction,
    ) -> Box<dyn Iterator<Item = (VertexId, &E)> + '_> {
        match dir {
            Direction::Out => Box::new(self.out_edges(v)),
            Direction::In => Box::new(self.in_edges(v)),
            Direction::Both => Box::new(self.out_edges(v).chain(self.in_edges(v))),
        }
    }

    /// Iterates over every directed edge as `(src, dst, &data)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, &E)> + '_ {
        (0..self.num_vertices()).flat_map(move |s| {
            let src = self.vertex_ids[s];
            (self.out_offsets[s]..self.out_offsets[s + 1]).map(move |pos| {
                (
                    src,
                    self.vertex_ids[self.out_targets[pos] as usize],
                    &self.out_data[pos],
                )
            })
        })
    }

    /// Collects all edges into owned [`EdgeRecord`]s (used by partitioners).
    pub fn edge_records(&self) -> Vec<EdgeRecord<E>> {
        self.edges()
            .map(|(s, d, w)| EdgeRecord::new(s, d, w.clone()))
            .collect()
    }

    /// Returns the subgraph induced by `keep`, preserving payloads.
    ///
    /// Edges are kept only when both endpoints are in `keep`.
    pub fn induced_subgraph(&self, keep: &std::collections::HashSet<VertexId>) -> Self {
        let vertices: Vec<(VertexId, V)> = self
            .vertices()
            .filter(|v| keep.contains(v))
            .map(|v| (v, self.vertex_data(v).expect("present").clone()))
            .collect();
        let edges: Vec<EdgeRecord<E>> = self
            .edges()
            .filter(|(s, d, _)| keep.contains(s) && keep.contains(d))
            .map(|(s, d, w)| EdgeRecord::new(s, d, w.clone()))
            .collect();
        Self::from_records(vertices, edges, self.has_reverse()).expect("subset of valid graph")
    }

    /// Total payload-free memory footprint estimate in bytes (offsets +
    /// targets + ids); used by the load balancer's workload estimates.
    pub fn memory_estimate(&self) -> usize {
        self.vertex_ids.len() * 8
            + self.out_offsets.len() * 8
            + self.out_targets.len() * 4
            + self.in_offsets.len() * 8
            + self.in_sources.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn diamond() -> CsrGraph<(), f64> {
        // 0 -> 1 (1.0), 0 -> 2 (2.0), 1 -> 3 (3.0), 2 -> 3 (1.0)
        let vs = vec![(0, ()), (1, ()), (2, ()), (3, ())];
        let es = vec![
            EdgeRecord::new(0, 1, 1.0),
            EdgeRecord::new(0, 2, 2.0),
            EdgeRecord::new(1, 3, 3.0),
            EdgeRecord::new(2, 3, 1.0),
        ];
        CsrGraph::from_records(vs, es, true).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_reverse());
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.degree(1, Direction::Both), 2);
        assert_eq!(g.out_degree(99), 0, "unknown vertices have degree zero");
    }

    #[test]
    fn out_and_in_edges() {
        let g = diamond();
        let outs: Vec<(VertexId, f64)> = g.out_edges(0).map(|(v, w)| (v, *w)).collect();
        assert_eq!(outs, vec![(1, 1.0), (2, 2.0)]);
        let ins: Vec<(VertexId, f64)> = g.in_edges(3).map(|(v, w)| (v, *w)).collect();
        assert_eq!(ins.len(), 2);
        assert!(ins.contains(&(1, 3.0)));
        assert!(ins.contains(&(2, 1.0)));
    }

    #[test]
    fn neighbours_both_directions() {
        let g = diamond();
        let both: Vec<VertexId> = g.neighbours(1, Direction::Both).map(|(v, _)| v).collect();
        assert_eq!(both, vec![3, 0]);
    }

    #[test]
    fn dense_index_round_trip() {
        let g = diamond();
        for v in g.vertices() {
            let d = g.dense_index(v).unwrap();
            assert_eq!(g.vertex_id(d), v);
        }
        assert!(g.dense_index(42).is_none());
    }

    #[test]
    fn non_contiguous_ids() {
        let vs = vec![(10, ()), (200, ()), (3_000_000_000u64, ())];
        let es = vec![
            EdgeRecord::new(10, 200, ()),
            EdgeRecord::new(200, 3_000_000_000u64, ()),
        ];
        let g = CsrGraph::from_records(vs, es, true).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.out_degree(10), 1);
        assert_eq!(g.in_degree(3_000_000_000u64), 1);
    }

    #[test]
    fn unknown_endpoint_is_error() {
        let vs = vec![(0, ()), (1, ())];
        let es = vec![EdgeRecord::new(0, 7, ())];
        let err = CsrGraph::from_records(vs, es, false).unwrap_err();
        assert_eq!(err, GraphError::UnknownVertex(7));
    }

    #[test]
    fn duplicate_vertices_rejected() {
        let vs = vec![(0, ()), (0, ())];
        let err = CsrGraph::<(), ()>::from_records(vs, vec![], false).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameter(_)));
    }

    #[test]
    fn edges_iterator_visits_all() {
        let g = diamond();
        let all: Vec<(VertexId, VertexId)> = g.edges().map(|(s, d, _)| (s, d)).collect();
        assert_eq!(all.len(), 4);
        assert!(all.contains(&(2, 3)));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = diamond();
        let keep: HashSet<VertexId> = [0, 1, 3].into_iter().collect();
        let sub = g.induced_subgraph(&keep);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2); // 0->1 and 1->3
        assert_eq!(sub.out_degree(0), 1);
    }

    #[test]
    fn graph_without_reverse_has_empty_in_edges() {
        let vs = vec![(0, ()), (1, ())];
        let es = vec![EdgeRecord::new(0, 1, ())];
        let g = CsrGraph::from_records(vs, es, false).unwrap();
        assert!(!g.has_reverse());
        assert_eq!(g.in_edges(1).count(), 0);
        assert_eq!(g.in_degree(1), 0);
    }

    #[test]
    fn memory_estimate_positive() {
        let g = diamond();
        assert!(g.memory_estimate() > 0);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::<(), ()>::from_records(vec![], vec![], true).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn self_loops_and_parallel_edges_are_preserved() {
        let vs = vec![(0, ()), (1, ())];
        let es = vec![
            EdgeRecord::new(0, 0, 1.0),
            EdgeRecord::new(0, 1, 2.0),
            EdgeRecord::new(0, 1, 3.0),
        ];
        let g = CsrGraph::from_records(vs, es, true).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(g.in_degree(1), 2);
        assert_eq!(g.in_degree(0), 1);
    }
}
