//! Flat per-vertex state keyed by dense CSR indices.
//!
//! [`CsrGraph`](crate::CsrGraph) maps arbitrary global [`VertexId`]s to dense
//! indices `0..n`. Algorithms that keep per-vertex state in a
//! `HashMap<VertexId, T>` pay a hash + probe on every edge relaxation; the
//! types in this module replace that with a single indexed load:
//!
//! * [`VertexDenseMap<T>`] — a `Vec<T>` keyed by dense index, with a
//!   [`VertexId`] view for the points where global ids are needed (assembling
//!   results, shipping border values).
//! * [`DenseBitset`] — a packed membership bitset over dense indices, used
//!   for inner/outer tests in fragments and visited sets in traversals.

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// A dense per-vertex value table: `map[dense_index] = value`.
///
/// Construct it sized to a graph with [`VertexDenseMap::for_graph`] (or
/// [`VertexDenseMap::new`] when only the count is at hand), index it with the
/// `u32` dense indices produced by
/// [`CsrGraph::dense_index`](crate::CsrGraph::dense_index) /
/// [`CsrGraph::out_neighbors_dense`](crate::CsrGraph::out_neighbors_dense),
/// and convert back to global ids at the edges of the hot path with
/// [`VertexDenseMap::iter_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct VertexDenseMap<T> {
    values: Vec<T>,
}

impl<T> VertexDenseMap<T> {
    /// A map of `n` slots, all set to `init`.
    pub fn new(n: usize, init: T) -> Self
    where
        T: Clone,
    {
        Self {
            values: vec![init; n],
        }
    }

    /// A map with one slot per vertex of `graph`, all set to `init`.
    pub fn for_graph<V, E>(graph: &CsrGraph<V, E>, init: T) -> Self
    where
        T: Clone,
        V: Clone,
        E: Clone,
    {
        Self::new(graph.num_vertices(), init)
    }

    /// A map of `n` slots where slot `i` holds `f(i)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(u32) -> T) -> Self {
        Self {
            values: (0..n).map(|i| f(i as u32)).collect(),
        }
    }

    /// Wraps an existing dense vector (must be aligned with the graph's
    /// dense indices).
    pub fn from_vec(values: Vec<T>) -> Self {
        Self { values }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the map has no slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at dense index `i`.
    #[inline]
    pub fn get(&self, i: u32) -> &T {
        &self.values[i as usize]
    }

    /// Mutable access to the value at dense index `i`.
    #[inline]
    pub fn get_mut(&mut self, i: u32) -> &mut T {
        &mut self.values[i as usize]
    }

    /// Sets the value at dense index `i`.
    #[inline]
    pub fn set(&mut self, i: u32, value: T) {
        self.values[i as usize] = value;
    }

    /// The backing slice, aligned with dense indices.
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }

    /// The backing slice, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Consumes the map, returning the backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.values
    }

    /// Resets every slot to `value`.
    pub fn fill(&mut self, value: T)
    where
        T: Clone,
    {
        self.values.fill(value);
    }

    /// Iterates as `(dense_index, &value)`.
    pub fn iter_dense(&self) -> impl Iterator<Item = (u32, &T)> + '_ {
        self.values.iter().enumerate().map(|(i, v)| (i as u32, v))
    }

    /// The global-id view: iterates as `(VertexId, &value)` using `graph` to
    /// translate dense indices back to global ids. The graph must be the one
    /// the map was sized for.
    pub fn iter_with<'a, V, E>(
        &'a self,
        graph: &'a CsrGraph<V, E>,
    ) -> impl Iterator<Item = (VertexId, &'a T)> + 'a
    where
        V: Clone,
        E: Clone,
    {
        debug_assert_eq!(self.values.len(), graph.num_vertices());
        self.values
            .iter()
            .enumerate()
            .map(move |(i, v)| (graph.vertex_of(i as u32), v))
    }
}

impl<T> Default for VertexDenseMap<T> {
    /// An empty map (no slots); resize by constructing a fresh map for the
    /// graph at hand.
    fn default() -> Self {
        Self { values: Vec::new() }
    }
}

impl<T> std::ops::Index<u32> for VertexDenseMap<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: u32) -> &T {
        &self.values[i as usize]
    }
}

impl<T> std::ops::IndexMut<u32> for VertexDenseMap<T> {
    #[inline]
    fn index_mut(&mut self, i: u32) -> &mut T {
        &mut self.values[i as usize]
    }
}

/// A packed bitset over dense vertex indices.
///
/// One bit per vertex; used for constant-time inner/outer membership tests
/// in fragments and for visited sets in traversals, replacing
/// `HashSet<VertexId>` probes on hot paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseBitset {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitset {
    /// An all-zero bitset over `n` indices.
    pub fn new(n: usize) -> Self {
        Self {
            words: vec![0u64; n.div_ceil(64)],
            len: n,
        }
    }

    /// Number of indices covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitset covers no indices.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`. Must be in range (`i < len`); out-of-range indices
    /// would otherwise land silently in the last word's slack bits.
    #[inline]
    pub fn set(&mut self, i: u32) {
        debug_assert!((i as usize) < self.len, "DenseBitset::set out of range");
        self.words[i as usize / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`. Must be in range (`i < len`).
    #[inline]
    pub fn clear(&mut self, i: u32) {
        debug_assert!((i as usize) < self.len, "DenseBitset::clear out of range");
        self.words[i as usize / 64] &= !(1u64 << (i % 64));
    }

    /// Whether bit `i` is set. Out-of-range indices read as unset.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        (i as usize) < self.len && self.words[i as usize / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over the set indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(wi as u32 * 64 + bit)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EdgeRecord;

    fn graph() -> CsrGraph<(), f64> {
        // Non-contiguous ids to exercise the dense mapping.
        let vs = vec![(10, ()), (20, ()), (30, ())];
        let es = vec![EdgeRecord::new(10, 20, 1.0), EdgeRecord::new(20, 30, 2.0)];
        CsrGraph::from_records(vs, es, true).unwrap()
    }

    #[test]
    fn dense_map_round_trips_through_graph() {
        let g = graph();
        let mut m = VertexDenseMap::for_graph(&g, 0.0f64);
        assert_eq!(m.len(), 3);
        let i20 = g.dense_index(20).unwrap();
        m[i20] = 7.5;
        assert_eq!(m[i20], 7.5);
        let by_id: Vec<(VertexId, f64)> = m.iter_with(&g).map(|(v, x)| (v, *x)).collect();
        assert_eq!(by_id, vec![(10, 0.0), (20, 7.5), (30, 0.0)]);
    }

    #[test]
    fn dense_map_constructors_and_accessors() {
        let mut m = VertexDenseMap::from_fn(4, |i| i * 2);
        assert_eq!(m.as_slice(), &[0, 2, 4, 6]);
        m.set(1, 9);
        assert_eq!(*m.get(1), 9);
        *m.get_mut(0) = 1;
        m.fill(5);
        assert!(m.as_slice().iter().all(|&x| x == 5));
        assert_eq!(m.iter_dense().count(), 4);
        assert!(!m.is_empty());
        let v = m.into_vec();
        assert_eq!(VertexDenseMap::from_vec(v).len(), 4);
        assert!(VertexDenseMap::<u8>::new(0, 0).is_empty());
    }

    #[test]
    fn bitset_set_clear_contains() {
        let mut b = DenseBitset::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.contains(0) && b.contains(64) && b.contains(129));
        assert!(!b.contains(1));
        assert!(!b.contains(1000), "out of range reads as unset");
        assert!(
            !b.contains(135),
            "slack bits of the last word read as unset"
        );
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.contains(64));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
        assert!(DenseBitset::new(0).is_empty());
    }
}
