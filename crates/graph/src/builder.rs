//! Incremental graph construction.
//!
//! [`GraphBuilder`] accumulates vertices and edges in insertion order and
//! finalizes into a [`CsrGraph`]. It tolerates edges that mention vertices
//! which were never explicitly added (they receive the default payload),
//! which matches how raw edge-list datasets are usually consumed.

use crate::csr::CsrGraph;
use crate::types::{EdgeRecord, GraphError, VertexId};
use std::collections::HashMap;

/// Edge-at-a-time builder for [`CsrGraph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder<V, E> {
    vertices: HashMap<VertexId, V>,
    edges: Vec<EdgeRecord<E>>,
    with_reverse: bool,
    symmetric: bool,
}

impl<V: Clone + Default, E: Clone> Default for GraphBuilder<V, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone + Default, E: Clone> GraphBuilder<V, E> {
    /// Creates an empty builder that will also build the reverse adjacency.
    pub fn new() -> Self {
        Self {
            vertices: HashMap::new(),
            edges: Vec::new(),
            with_reverse: true,
            symmetric: false,
        }
    }

    /// Configures whether the reverse (in-edge) adjacency is materialized.
    pub fn with_reverse(mut self, yes: bool) -> Self {
        self.with_reverse = yes;
        self
    }

    /// When set, every added edge `(u, v)` also inserts `(v, u)` with the
    /// same payload, producing an undirected graph in directed representation
    /// (the convention used for road networks in the paper's experiments).
    pub fn symmetric(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Adds (or overwrites) a vertex with an explicit payload.
    pub fn add_vertex(&mut self, id: VertexId, data: V) -> &mut Self {
        self.vertices.insert(id, data);
        self
    }

    /// Ensures a vertex exists, inserting the default payload if not.
    pub fn ensure_vertex(&mut self, id: VertexId) -> &mut Self {
        self.vertices.entry(id).or_default();
        self
    }

    /// Adds a directed edge; endpoints are created on demand.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, data: E) -> &mut Self {
        self.ensure_vertex(src);
        self.ensure_vertex(dst);
        self.edges.push(EdgeRecord::new(src, dst, data.clone()));
        if self.symmetric && src != dst {
            self.edges.push(EdgeRecord::new(dst, src, data));
        }
        self
    }

    /// Number of vertices currently known to the builder.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edge records accumulated (including symmetric duplicates).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into a [`CsrGraph`].
    pub fn build(self) -> Result<CsrGraph<V, E>, GraphError> {
        let vertices: Vec<(VertexId, V)> = self.vertices.into_iter().collect();
        CsrGraph::from_records(vertices, self.edges, self.with_reverse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::<(), f64>::new();
        b.add_edge(0, 1, 1.0).add_edge(1, 2, 2.0);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn symmetric_builder_duplicates_edges() {
        let mut b = GraphBuilder::<(), u32>::new().symmetric(true);
        b.add_edge(0, 1, 7);
        b.add_edge(2, 2, 9); // self loop must not be duplicated
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(1), 1);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(2), 1);
    }

    #[test]
    fn explicit_vertex_payloads_survive() {
        let mut b = GraphBuilder::<u8, ()>::new();
        b.add_vertex(5, 42);
        b.add_edge(5, 6, ());
        let g = b.build().unwrap();
        assert_eq!(*g.vertex_data(5).unwrap(), 42);
        assert_eq!(
            *g.vertex_data(6).unwrap(),
            0,
            "implicit vertex uses default"
        );
    }

    #[test]
    fn no_reverse_option_respected() {
        let mut b = GraphBuilder::<(), ()>::new().with_reverse(false);
        b.add_edge(1, 2, ());
        let g = b.build().unwrap();
        assert!(!g.has_reverse());
    }

    #[test]
    fn isolated_vertices_survive() {
        let mut b = GraphBuilder::<(), ()>::new();
        b.ensure_vertex(3);
        b.add_edge(0, 1, ());
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn counts_track_insertions() {
        let mut b = GraphBuilder::<(), ()>::new();
        assert_eq!(b.num_vertices(), 0);
        b.add_edge(0, 1, ());
        assert_eq!(b.num_vertices(), 2);
        assert_eq!(b.num_edges(), 1);
    }
}
