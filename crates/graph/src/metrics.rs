//! Graph summary statistics.
//!
//! These metrics back the Analytics panel of the demo (Section 3(4)): the
//! load balancer uses degree/size estimates, the partition-quality report
//! uses component structure, and the benchmark harness prints dataset
//! summaries alongside every reproduced table.

use crate::csr::CsrGraph;
use crate::types::{Direction, VertexId};
use std::collections::{HashMap, VecDeque};

/// Degree-distribution and size summary of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Minimum out-degree.
    pub min_out_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Number of weakly connected components.
    pub num_components: usize,
    /// Size of the largest weakly connected component.
    pub largest_component: usize,
}

/// Computes a [`GraphSummary`].
pub fn summarize<V: Clone, E: Clone>(graph: &CsrGraph<V, E>) -> GraphSummary {
    let n = graph.num_vertices();
    let mut min_d = usize::MAX;
    let mut max_d = 0usize;
    for v in graph.vertices() {
        let d = graph.out_degree(v);
        min_d = min_d.min(d);
        max_d = max_d.max(d);
    }
    if n == 0 {
        min_d = 0;
    }
    let components = weakly_connected_components(graph);
    let mut sizes: HashMap<VertexId, usize> = HashMap::new();
    for &c in components.values() {
        *sizes.entry(c).or_insert(0) += 1;
    }
    GraphSummary {
        num_vertices: n,
        num_edges: graph.num_edges(),
        min_out_degree: min_d,
        max_out_degree: max_d,
        avg_out_degree: if n == 0 {
            0.0
        } else {
            graph.num_edges() as f64 / n as f64
        },
        num_components: sizes.len(),
        largest_component: sizes.values().copied().max().unwrap_or(0),
    }
}

/// Assigns every vertex a weakly-connected-component id (the smallest vertex
/// id in its component). This is also the sequential reference used by the CC
/// PIE program's tests.
pub fn weakly_connected_components<V: Clone, E: Clone>(
    graph: &CsrGraph<V, E>,
) -> HashMap<VertexId, VertexId> {
    let mut component: HashMap<VertexId, VertexId> = HashMap::new();
    for start in graph.vertices() {
        if component.contains_key(&start) {
            continue;
        }
        // BFS over the undirected view; record members, then label with min id.
        let mut members = Vec::new();
        let mut queue = VecDeque::from([start]);
        component.insert(start, start);
        while let Some(u) = queue.pop_front() {
            members.push(u);
            for (v, _) in graph.neighbours(u, Direction::Both) {
                if let std::collections::hash_map::Entry::Vacant(e) = component.entry(v) {
                    e.insert(start);
                    queue.push_back(v);
                }
            }
        }
        let min_id = members.iter().copied().min().unwrap_or(start);
        for m in members {
            component.insert(m, min_id);
        }
    }
    component
}

/// Out-degree histogram bucketed by powers of two: `bucket[i]` counts
/// vertices with out-degree in `[2^i, 2^(i+1))` (bucket 0 additionally holds
/// degree-0 vertices).
pub fn degree_histogram<V: Clone, E: Clone>(graph: &CsrGraph<V, E>) -> Vec<usize> {
    let mut hist = vec![0usize; 1];
    for v in graph.vertices() {
        let d = graph.out_degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize - 1
        };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

/// Breadth-first estimate of the graph's diameter: runs BFS from `samples`
/// pseudo-evenly-spaced start vertices and returns the maximum eccentricity
/// observed (a lower bound of the true diameter). Used by the bench harness
/// to document why road networks punish vertex-centric engines.
pub fn estimate_diameter<V: Clone, E: Clone>(graph: &CsrGraph<V, E>, samples: usize) -> usize {
    let n = graph.num_vertices();
    if n == 0 {
        return 0;
    }
    let ids: Vec<VertexId> = graph.vertices().collect();
    let step = (n / samples.max(1)).max(1);
    let mut best = 0usize;
    for chunk_start in (0..n).step_by(step).take(samples.max(1)) {
        let start = ids[chunk_start];
        let mut dist: HashMap<VertexId, usize> = HashMap::new();
        dist.insert(start, 0);
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            best = best.max(du);
            for (v, _) in graph.neighbours(u, Direction::Both) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(du + 1);
                    queue.push_back(v);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{barabasi_albert, road_network, RoadNetworkConfig};

    fn two_components() -> CsrGraph<(), ()> {
        let mut b = GraphBuilder::<(), ()>::new();
        b.add_edge(0, 1, ());
        b.add_edge(1, 2, ());
        b.add_edge(10, 11, ());
        b.build().unwrap()
    }

    #[test]
    fn summary_counts_components() {
        let g = two_components();
        let s = summarize(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.num_components, 2);
        assert_eq!(s.largest_component, 3);
        assert!(s.avg_out_degree > 0.0);
    }

    #[test]
    fn wcc_labels_are_min_ids() {
        let g = two_components();
        let cc = weakly_connected_components(&g);
        assert_eq!(cc[&0], 0);
        assert_eq!(cc[&1], 0);
        assert_eq!(cc[&2], 0);
        assert_eq!(cc[&10], 10);
        assert_eq!(cc[&11], 10);
    }

    #[test]
    fn wcc_follows_edges_in_both_directions() {
        let mut b = GraphBuilder::<(), ()>::new();
        // 5 -> 3, 4 -> 3: all three are one weak component labeled 3.
        b.add_edge(5, 3, ());
        b.add_edge(4, 3, ());
        let g = b.build().unwrap();
        let cc = weakly_connected_components(&g);
        assert_eq!(cc[&5], 3);
        assert_eq!(cc[&4], 3);
    }

    #[test]
    fn histogram_has_counts_for_every_vertex() {
        let g = barabasi_albert(500, 3, 5).unwrap();
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 500);
        assert!(
            hist.len() > 2,
            "power-law graph spreads over several buckets"
        );
    }

    #[test]
    fn road_network_has_large_diameter_relative_to_social() {
        let road = road_network(
            RoadNetworkConfig {
                width: 24,
                height: 24,
                removal_prob: 0.0,
                shortcut_prob: 0.0,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let social = barabasi_albert(road.num_vertices(), 4, 1).unwrap();
        let d_road = estimate_diameter(&road, 4);
        let d_social = estimate_diameter(&social, 4);
        assert!(
            d_road > 3 * d_social,
            "road diameter {d_road} should dwarf social diameter {d_social}"
        );
    }

    #[test]
    fn empty_graph_summary() {
        let g = CsrGraph::<(), ()>::from_records(vec![], vec![], false).unwrap();
        let s = summarize(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.num_components, 0);
        assert_eq!(estimate_diameter(&g, 3), 0);
    }
}
