//! # grape-partition
//!
//! Graph partitioning for GRAPE-RS: the Partition Manager of the paper's
//! architecture (Fig. 2) and the partition strategies offered in the Play
//! panel (Section 3(2)): hash, 1D range, 2D grid, streaming (LDG / Fennel,
//! the Stanton–Kliot family) and a multilevel METIS-like strategy.
//!
//! Partitioning produces a [`PartitionAssignment`] (vertex → fragment), from
//! which [`fragment::build_fragments`] constructs the per-worker
//! [`Fragment`]s used by the PIE engine: each fragment knows its *inner*
//! vertices, its *outer* (mirror) vertices owned by other fragments, and
//! which fragments mirror each of its inner vertices — exactly the border
//! structure the paper's update parameters are declared over.

#![warn(missing_docs)]

pub mod assignment;
pub mod fragment;
pub mod multilevel;
pub mod mutate;
pub mod quality;
pub mod strategy;
pub mod streaming;

pub use assignment::{FragmentId, PartitionAssignment};
pub use fragment::{build_fragments, Fragment, FragmentParts};
pub use multilevel::MetisLikePartitioner;
pub use mutate::{resolve_net_mutations, ResolvedMutations};
pub use quality::{evaluate_partition, PartitionQuality};
pub use strategy::{
    hash_fragment_of, Grid2DPartitioner, HashPartitioner, Partitioner, RangePartitioner,
};
pub use streaming::{FennelPartitioner, LdgPartitioner};

/// The built-in strategies, in the order they appear in the demo UI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinStrategy {
    /// Hash vertices to fragments (the default of most vertex-centric systems).
    Hash,
    /// Contiguous ranges of the vertex-id space.
    Range,
    /// 2-D grid partition of the id space.
    Grid2D,
    /// Linear deterministic greedy streaming partitioner.
    Ldg,
    /// Fennel streaming partitioner.
    Fennel,
    /// Multilevel (METIS-like) partitioner.
    MetisLike,
}

impl BuiltinStrategy {
    /// All builtin strategies.
    pub fn all() -> &'static [BuiltinStrategy] {
        &[
            BuiltinStrategy::Hash,
            BuiltinStrategy::Range,
            BuiltinStrategy::Grid2D,
            BuiltinStrategy::Ldg,
            BuiltinStrategy::Fennel,
            BuiltinStrategy::MetisLike,
        ]
    }

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            BuiltinStrategy::Hash => "hash",
            BuiltinStrategy::Range => "range-1d",
            BuiltinStrategy::Grid2D => "grid-2d",
            BuiltinStrategy::Ldg => "ldg-streaming",
            BuiltinStrategy::Fennel => "fennel-streaming",
            BuiltinStrategy::MetisLike => "metis-like",
        }
    }

    /// Partitions `graph` into `k` fragments with this strategy.
    pub fn partition<V: Clone, E: Clone>(
        &self,
        graph: &grape_graph::CsrGraph<V, E>,
        k: usize,
    ) -> PartitionAssignment {
        match self {
            BuiltinStrategy::Hash => HashPartitioner.partition(graph, k),
            BuiltinStrategy::Range => RangePartitioner.partition(graph, k),
            BuiltinStrategy::Grid2D => Grid2DPartitioner.partition(graph, k),
            BuiltinStrategy::Ldg => LdgPartitioner::default().partition(graph, k),
            BuiltinStrategy::Fennel => FennelPartitioner::default().partition(graph, k),
            BuiltinStrategy::MetisLike => MetisLikePartitioner::default().partition(graph, k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::generators::{barabasi_albert, road_network, RoadNetworkConfig};

    #[test]
    fn all_builtin_strategies_cover_every_vertex() {
        let g = barabasi_albert(300, 3, 5).unwrap();
        for strategy in BuiltinStrategy::all() {
            let assignment = strategy.partition(&g, 4);
            assert_eq!(
                assignment.num_assigned(),
                g.num_vertices(),
                "strategy {} must assign every vertex",
                strategy.name()
            );
            assert!(assignment.num_fragments() <= 4);
        }
    }

    #[test]
    fn metis_like_beats_hash_on_road_networks() {
        let g = road_network(
            RoadNetworkConfig {
                width: 32,
                height: 32,
                removal_prob: 0.0,
                shortcut_prob: 0.0,
                ..Default::default()
            },
            3,
        )
        .unwrap();
        let hash = evaluate_partition(&g, &BuiltinStrategy::Hash.partition(&g, 8));
        let metis = evaluate_partition(&g, &BuiltinStrategy::MetisLike.partition(&g, 8));
        assert!(
            metis.cut_edges * 2 < hash.cut_edges,
            "metis-like cut {} should be far below hash cut {}",
            metis.cut_edges,
            hash.cut_edges
        );
    }

    #[test]
    fn strategy_names_are_unique() {
        let names: std::collections::HashSet<_> =
            BuiltinStrategy::all().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), BuiltinStrategy::all().len());
    }
}
