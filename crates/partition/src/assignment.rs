//! Vertex → fragment assignments.

use grape_graph::VertexId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a fragment / worker. The paper uses `P_1 … P_n`.
pub type FragmentId = usize;

/// The result of a partitioning pass: a total map from vertices to fragments.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PartitionAssignment {
    /// Requested number of fragments.
    num_fragments: usize,
    /// Vertex → fragment map.
    assignment: HashMap<VertexId, FragmentId>,
}

impl PartitionAssignment {
    /// Creates an empty assignment targeting `num_fragments` fragments.
    pub fn new(num_fragments: usize) -> Self {
        Self {
            num_fragments,
            assignment: HashMap::new(),
        }
    }

    /// Assigns a vertex to a fragment.
    ///
    /// # Panics
    /// Panics if `fragment >= num_fragments`, which would indicate a buggy
    /// partitioner rather than bad user input.
    pub fn assign(&mut self, vertex: VertexId, fragment: FragmentId) {
        assert!(
            fragment < self.num_fragments,
            "fragment id {fragment} out of range (k = {})",
            self.num_fragments
        );
        self.assignment.insert(vertex, fragment);
    }

    /// The fragment that owns `vertex`, if assigned.
    pub fn fragment_of(&self, vertex: VertexId) -> Option<FragmentId> {
        self.assignment.get(&vertex).copied()
    }

    /// Number of fragments this assignment targets.
    pub fn num_fragments(&self) -> usize {
        self.num_fragments
    }

    /// Number of vertices assigned so far.
    pub fn num_assigned(&self) -> usize {
        self.assignment.len()
    }

    /// Iterates over `(vertex, fragment)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, FragmentId)> + '_ {
        self.assignment.iter().map(|(v, f)| (*v, *f))
    }

    /// Vertices owned by each fragment, as sorted vectors.
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.num_fragments];
        for (&v, &f) in &self.assignment {
            out[f].push(v);
        }
        for m in &mut out {
            m.sort_unstable();
        }
        out
    }

    /// Sizes (vertex counts) of each fragment.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_fragments];
        for &f in self.assignment.values() {
            sizes[f] += 1;
        }
        sizes
    }

    /// Moves a vertex to a different fragment (used by the load balancer).
    pub fn reassign(&mut self, vertex: VertexId, fragment: FragmentId) {
        self.assign(vertex, fragment);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_and_query() {
        let mut a = PartitionAssignment::new(3);
        a.assign(10, 0);
        a.assign(11, 2);
        assert_eq!(a.fragment_of(10), Some(0));
        assert_eq!(a.fragment_of(11), Some(2));
        assert_eq!(a.fragment_of(12), None);
        assert_eq!(a.num_assigned(), 2);
        assert_eq!(a.num_fragments(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_fragment_panics() {
        let mut a = PartitionAssignment::new(2);
        a.assign(0, 5);
    }

    #[test]
    fn members_and_sizes_agree() {
        let mut a = PartitionAssignment::new(2);
        for v in 0..10u64 {
            a.assign(v, (v % 2) as usize);
        }
        let members = a.members();
        let sizes = a.sizes();
        assert_eq!(members[0].len(), sizes[0]);
        assert_eq!(members[1].len(), sizes[1]);
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(members[0].windows(2).all(|w| w[0] < w[1]), "sorted");
    }

    #[test]
    fn reassign_moves_vertex() {
        let mut a = PartitionAssignment::new(2);
        a.assign(7, 0);
        a.reassign(7, 1);
        assert_eq!(a.fragment_of(7), Some(1));
        assert_eq!(a.num_assigned(), 1);
    }
}
