//! Multilevel (METIS-like) partitioner.
//!
//! The demo highlights METIS as the "best strategy" for SSSP on LiveJournal
//! (18.3 s / 7.5 M messages vs 30 s / 40 M messages for streaming). METIS
//! itself is a large C library; what matters for reproducing the paper's
//! result is the *multilevel* scheme it pioneered:
//!
//! 1. **Coarsen** the graph by repeatedly collapsing a heavy-edge matching
//!    until it is small.
//! 2. **Partition** the coarsest graph greedily (region growing from seeds).
//! 3. **Uncoarsen** and apply boundary refinement (a lightweight
//!    Kernighan–Lin / Fiduccia–Mattheyses pass) at every level.
//!
//! The implementation here follows that recipe and, on mesh-like and
//! community-structured graphs, produces edge cuts several times smaller
//! than hash or streaming placement — exactly the property the paper's
//! partition-strategy experiment depends on.

use crate::assignment::{FragmentId, PartitionAssignment};
use crate::strategy::Partitioner;
use grape_graph::{CsrGraph, VertexId};
use std::collections::HashMap;

/// Multilevel METIS-like partitioner.
#[derive(Debug, Clone, Copy)]
pub struct MetisLikePartitioner {
    /// Stop coarsening when the graph has at most `coarsen_until · k`
    /// vertices.
    pub coarsen_until: usize,
    /// Number of boundary-refinement sweeps per level.
    pub refine_passes: usize,
    /// Maximum allowed imbalance: a fragment may hold up to
    /// `balance_slack · n / k` vertex weight.
    pub balance_slack: f64,
}

impl Default for MetisLikePartitioner {
    fn default() -> Self {
        Self {
            coarsen_until: 30,
            refine_passes: 4,
            balance_slack: 1.15,
        }
    }
}

/// A small weighted graph used internally during coarsening. Vertices are
/// dense `usize` indices; `weight[v]` counts how many original vertices the
/// coarse vertex represents.
#[derive(Debug, Clone)]
struct CoarseGraph {
    /// Adjacency: for each vertex, (neighbour, edge weight) pairs.
    adj: Vec<Vec<(usize, u64)>>,
    /// Vertex weights (number of collapsed original vertices).
    weight: Vec<u64>,
}

impl CoarseGraph {
    fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    fn total_weight(&self) -> u64 {
        self.weight.iter().sum()
    }
}

impl MetisLikePartitioner {
    /// Builds the level-0 coarse graph from the input CSR (undirected view,
    /// parallel edges merged, self-loops dropped).
    fn initial_coarse<V: Clone, E: Clone>(graph: &CsrGraph<V, E>) -> (CoarseGraph, Vec<VertexId>) {
        let n = graph.num_vertices();
        let ids: Vec<VertexId> = graph.vertices().collect();
        let mut adj_maps: Vec<HashMap<usize, u64>> = vec![HashMap::new(); n];
        for (s, d, _) in graph.edges() {
            if s == d {
                continue;
            }
            let si = graph.dense_index(s).unwrap() as usize;
            let di = graph.dense_index(d).unwrap() as usize;
            *adj_maps[si].entry(di).or_insert(0) += 1;
            *adj_maps[di].entry(si).or_insert(0) += 1;
        }
        let adj = adj_maps
            .into_iter()
            .map(|m| {
                let mut v: Vec<(usize, u64)> = m.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
        (
            CoarseGraph {
                adj,
                weight: vec![1; n],
            },
            ids,
        )
    }

    /// One round of heavy-edge-matching coarsening. Returns the coarser graph
    /// and the map from fine vertex to coarse vertex.
    fn coarsen_once(graph: &CoarseGraph) -> (CoarseGraph, Vec<usize>) {
        let n = graph.num_vertices();
        let mut matched = vec![usize::MAX; n];
        let mut coarse_of = vec![usize::MAX; n];
        let mut next_coarse = 0usize;
        // Visit vertices in order of increasing degree so low-degree vertices
        // get matched before hubs swallow everything.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| graph.adj[v].len());
        for &v in &order {
            if matched[v] != usize::MAX {
                continue;
            }
            // Heaviest unmatched neighbour.
            let mut best = usize::MAX;
            let mut best_w = 0u64;
            for &(u, w) in &graph.adj[v] {
                if matched[u] == usize::MAX && w > best_w {
                    best = u;
                    best_w = w;
                }
            }
            if best != usize::MAX {
                matched[v] = best;
                matched[best] = v;
                coarse_of[v] = next_coarse;
                coarse_of[best] = next_coarse;
            } else {
                matched[v] = v;
                coarse_of[v] = next_coarse;
            }
            next_coarse += 1;
        }
        // Build the coarse graph.
        let mut weight = vec![0u64; next_coarse];
        for v in 0..n {
            weight[coarse_of[v]] += graph.weight[v];
        }
        let mut adj_maps: Vec<HashMap<usize, u64>> = vec![HashMap::new(); next_coarse];
        for v in 0..n {
            let cv = coarse_of[v];
            for &(u, w) in &graph.adj[v] {
                let cu = coarse_of[u];
                if cu != cv {
                    *adj_maps[cv].entry(cu).or_insert(0) += w;
                }
            }
        }
        let adj = adj_maps
            .into_iter()
            .map(|m| {
                let mut v: Vec<(usize, u64)> = m.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
        (CoarseGraph { adj, weight }, coarse_of)
    }

    /// Greedy region-growing partition of the coarsest graph.
    fn initial_partition(graph: &CoarseGraph, k: usize) -> Vec<FragmentId> {
        let n = graph.num_vertices();
        let mut part = vec![usize::MAX; n];
        if n == 0 {
            return part;
        }
        let target = (graph.total_weight() as f64 / k as f64).ceil() as u64;
        let mut loads = vec![0u64; k];
        // Seeds: spread over the vertex order.
        for (f, load) in loads.iter_mut().enumerate() {
            let seed = (f * n / k).min(n - 1);
            // BFS from the seed claiming unassigned vertices until the target
            // load is reached.
            let start = (seed..n).chain(0..seed).find(|&v| part[v] == usize::MAX);
            let Some(start) = start else { break };
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                if part[v] != usize::MAX {
                    continue;
                }
                if *load >= target && f + 1 < k {
                    break;
                }
                part[v] = f;
                *load += graph.weight[v];
                for &(u, _) in &graph.adj[v] {
                    if part[u] == usize::MAX {
                        queue.push_back(u);
                    }
                }
            }
        }
        // Any vertex still unassigned goes to the least-loaded fragment.
        for (v, p) in part.iter_mut().enumerate() {
            if *p == usize::MAX {
                let f = (0..k).min_by_key(|&f| loads[f]).unwrap_or(0);
                *p = f;
                loads[f] += graph.weight[v];
            }
        }
        part
    }

    /// Boundary refinement: greedily move boundary vertices to the
    /// neighbouring fragment that most reduces the cut, while respecting the
    /// balance constraint.
    fn refine(&self, graph: &CoarseGraph, part: &mut [FragmentId], k: usize, passes: usize) {
        let n = graph.num_vertices();
        if n == 0 {
            return;
        }
        let max_load = (self.balance_slack * graph.total_weight() as f64 / k as f64).ceil() as u64;
        let mut loads = vec![0u64; k];
        for v in 0..n {
            loads[part[v]] += graph.weight[v];
        }
        for _ in 0..passes {
            let mut moved = 0usize;
            for v in 0..n {
                let current = part[v];
                // Gain of moving v to fragment f = (edges to f) - (edges to current).
                let mut edges_to: HashMap<FragmentId, u64> = HashMap::new();
                for &(u, w) in &graph.adj[v] {
                    *edges_to.entry(part[u]).or_insert(0) += w;
                }
                let internal = edges_to.get(&current).copied().unwrap_or(0);
                let mut best_f = current;
                let mut best_gain = 0i64;
                let mut candidates: Vec<(FragmentId, u64)> = edges_to.into_iter().collect();
                candidates.sort_unstable();
                for (f, w) in candidates {
                    if f == current {
                        continue;
                    }
                    if loads[f] + graph.weight[v] > max_load {
                        continue;
                    }
                    let gain = w as i64 - internal as i64;
                    if gain > best_gain {
                        best_gain = gain;
                        best_f = f;
                    }
                }
                if best_f != current {
                    loads[current] -= graph.weight[v];
                    loads[best_f] += graph.weight[v];
                    part[v] = best_f;
                    moved += 1;
                }
            }
            if moved == 0 {
                break;
            }
        }
    }
}

impl Partitioner for MetisLikePartitioner {
    fn partition<V: Clone, E: Clone>(
        &self,
        graph: &CsrGraph<V, E>,
        k: usize,
    ) -> PartitionAssignment {
        let k = k.max(1);
        let mut assignment = PartitionAssignment::new(k);
        let n = graph.num_vertices();
        if n == 0 {
            return assignment;
        }
        if k == 1 {
            for v in graph.vertices() {
                assignment.assign(v, 0);
            }
            return assignment;
        }

        // 1. Coarsening: keep every level so refinement can run on each one
        // during the uncoarsening phase.
        let (g0, ids) = Self::initial_coarse(graph);
        let mut levels: Vec<CoarseGraph> = vec![g0];
        let mut maps: Vec<Vec<usize>> = Vec::new();
        let stop = (self.coarsen_until * k).max(2 * k);
        let mut guard = 0;
        while levels.last().expect("non-empty").num_vertices() > stop && guard < 64 {
            guard += 1;
            let current = levels.last().expect("non-empty");
            let before = current.num_vertices();
            let (coarser, map) = Self::coarsen_once(current);
            if coarser.num_vertices() as f64 > 0.95 * before as f64 {
                // Matching stopped making progress (e.g. star graphs).
                break;
            }
            maps.push(map);
            levels.push(coarser);
        }

        // 2. Initial partition of the coarsest graph + refinement there.
        let coarsest = levels.last().expect("non-empty");
        let mut part = Self::initial_partition(coarsest, k);
        self.refine(coarsest, &mut part, k, self.refine_passes);

        // 3. Uncoarsen with refinement at every level.
        for (level_idx, map) in maps.iter().enumerate().rev() {
            let finer = &levels[level_idx];
            let mut fine_part = vec![0usize; finer.num_vertices()];
            for (v, p) in fine_part.iter_mut().enumerate() {
                *p = part[map[v]];
            }
            part = fine_part;
            self.refine(finer, &mut part, k, self.refine_passes);
        }

        for (dense, &frag) in part.iter().enumerate() {
            assignment.assign(ids[dense], frag.min(k - 1));
        }
        assignment
    }

    fn name(&self) -> &'static str {
        "metis-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::evaluate_partition;
    use crate::strategy::HashPartitioner;
    use grape_graph::generators::{barabasi_albert, road_network, RoadNetworkConfig};

    #[test]
    fn covers_every_vertex_with_valid_fragments() {
        let g = barabasi_albert(500, 3, 4).unwrap();
        let a = MetisLikePartitioner::default().partition(&g, 6);
        assert_eq!(a.num_assigned(), 500);
        assert!(a.iter().all(|(_, f)| f < 6));
    }

    #[test]
    fn grid_cut_is_near_optimal_order() {
        // A 32×32 grid split into 4 parts has an optimal cut of ~64 edges
        // (2 straight cuts × 32 edges × 2 directions /2 ...). We only require
        // that the multilevel cut is within a small factor of that and far
        // below the hash cut.
        let g = road_network(
            RoadNetworkConfig {
                width: 32,
                height: 32,
                removal_prob: 0.0,
                shortcut_prob: 0.0,
                ..Default::default()
            },
            5,
        )
        .unwrap();
        let metis = evaluate_partition(&g, &MetisLikePartitioner::default().partition(&g, 4));
        let hash = evaluate_partition(&g, &HashPartitioner.partition(&g, 4));
        assert!(
            metis.cut_edges < hash.cut_edges / 3,
            "metis cut {} vs hash cut {}",
            metis.cut_edges,
            hash.cut_edges
        );
    }

    #[test]
    fn balance_constraint_is_respected() {
        let g = barabasi_albert(800, 3, 9).unwrap();
        let p = MetisLikePartitioner::default();
        let a = p.partition(&g, 8);
        let sizes = a.sizes();
        let cap = (p.balance_slack * 800.0 / 8.0).ceil() as usize;
        for s in &sizes {
            assert!(
                *s <= cap + 2,
                "fragment size {s} exceeds cap {cap}: {sizes:?}"
            );
        }
        assert_eq!(sizes.iter().sum::<usize>(), 800);
    }

    #[test]
    fn k_one_trivial_partition() {
        let g = barabasi_albert(50, 2, 1).unwrap();
        let a = MetisLikePartitioner::default().partition(&g, 1);
        assert!(a.iter().all(|(_, f)| f == 0));
    }

    #[test]
    fn deterministic() {
        let g = barabasi_albert(300, 3, 8).unwrap();
        let a1 = MetisLikePartitioner::default().partition(&g, 4);
        let a2 = MetisLikePartitioner::default().partition(&g, 4);
        for v in g.vertices() {
            assert_eq!(a1.fragment_of(v), a2.fragment_of(v));
        }
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut b = grape_graph::GraphBuilder::<(), ()>::new();
        for i in 0..10u64 {
            b.add_edge(i, (i + 1) % 10, ());
        }
        for i in 100..110u64 {
            b.add_edge(i, (i + 1 - 100) % 10 + 100, ());
        }
        let g = b.build().unwrap();
        let a = MetisLikePartitioner::default().partition(&g, 2);
        assert_eq!(a.num_assigned(), 20);
    }
}
