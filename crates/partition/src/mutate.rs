//! Fragment mutation: applying a resolved update batch to a resident
//! [`Fragment`] without re-cutting the whole graph.
//!
//! The flow mirrors how a coordinator distributes work. The graph holder
//! (a session / service) applies a user batch to its
//! [`DeltaGraph`](grape_graph::DeltaGraph) and obtains the batch's
//! [`NetMutations`]. [`resolve_net_mutations`] then stamps every referenced
//! vertex with its owner fragment — existing vertices keep their assignment,
//! inserted vertices are placed by [`hash_fragment_of`] — and attaches the
//! payloads a fragment might need for brand-new mirrors. The resulting
//! [`ResolvedMutations`] batch is fully self-contained: each fragment applies
//! it *locally and deterministically* with [`Fragment::apply_mutations`], no
//! global graph in sight.
//!
//! **Equivalence guarantee** (pinned by tests here and exercised end-to-end
//! by the incremental engine path): applying resolved batches to the
//! fragments of graph `G` yields fragments **bit-identical** to cutting the
//! updated graph `G'` from scratch with [`build_fragments`] under the updated
//! assignment — same CSR edge order (surviving copies keep their order, net
//! additions append in insertion order, exactly like the delta overlay), same
//! border tables, same dense indices. That is what lets an incremental run on
//! mutated fragments reproduce a cold run on `G'` bit for bit, even for
//! order-sensitive float accumulations.

use crate::assignment::{FragmentId, PartitionAssignment};
use crate::fragment::{assemble_fragment, Fragment};
use crate::strategy::hash_fragment_of;
use grape_comm::wire::{Wire, WireError, WireReader};
use grape_graph::delta::NetMutations;
use grape_graph::types::EdgeRecord;
use grape_graph::{CsrGraph, GraphError, VertexId};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A net mutation batch resolved against the partition: every vertex the
/// batch references carries its owner fragment, and endpoints that may be
/// new mirrors carry their payloads. Self-contained — a fragment applies it
/// with no access to the global graph or the assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedMutations<V, E> {
    /// The net effect of the batch (see [`NetMutations`]).
    pub net: NetMutations<V, E>,
    /// `(vertex, owner fragment)` for every vertex referenced by the net:
    /// inserted vertices and all endpoints of inserted edges. Sorted by
    /// vertex id.
    pub owners: Vec<(VertexId, u32)>,
    /// Payloads of inserted-edge endpoints that are *not* themselves
    /// inserted vertices (a fragment may need them to materialize a new
    /// mirror it has never seen). Sorted by vertex id.
    pub endpoint_data: Vec<(VertexId, V)>,
}

impl<V, E> ResolvedMutations<V, E> {
    /// Whether the batch has no effect at all.
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
    }
}

impl<V: Wire, E: Wire> Wire for ResolvedMutations<V, E> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.net.encode(out);
        self.owners.encode(out);
        self.endpoint_data.encode(out);
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            net: NetMutations::decode(reader)?,
            owners: Vec::decode(reader)?,
            endpoint_data: Vec::decode(reader)?,
        })
    }
}

/// Resolves a net mutation batch against the partition assignment.
///
/// Inserted vertices that the assignment has never seen are placed by the
/// [`hash_fragment_of`] rule and **recorded into `assignment`**, so later
/// batches (and a from-scratch cut of the updated graph under this
/// assignment) agree on ownership. `payload_of` supplies the payload of an
/// existing vertex (typically `DeltaGraph::vertex_data`), consulted only for
/// inserted-edge endpoints.
pub fn resolve_net_mutations<V: Clone, E: Clone>(
    net: NetMutations<V, E>,
    assignment: &mut PartitionAssignment,
    payload_of: impl Fn(VertexId) -> Option<V>,
) -> ResolvedMutations<V, E> {
    let k = assignment.num_fragments();
    for (v, _) in &net.added_vertices {
        if assignment.fragment_of(*v).is_none() {
            assignment.assign(*v, hash_fragment_of(*v, k));
        }
    }
    let mut referenced: BTreeSet<VertexId> = BTreeSet::new();
    for (v, _) in &net.added_vertices {
        referenced.insert(*v);
    }
    for (s, d, _) in &net.added_edges {
        referenced.insert(*s);
        referenced.insert(*d);
    }
    let owners: Vec<(VertexId, u32)> = referenced
        .iter()
        .map(|&v| (v, assignment.fragment_of(v).unwrap_or(0) as u32))
        .collect();
    let inserted: HashSet<VertexId> = net.added_vertices.iter().map(|(v, _)| *v).collect();
    let endpoint_data: Vec<(VertexId, V)> = referenced
        .iter()
        .filter(|v| !inserted.contains(v))
        .filter_map(|&v| payload_of(v).map(|d| (v, d)))
        .collect();
    ResolvedMutations {
        net,
        owners,
        endpoint_data,
    }
}

impl<V: Clone + Default, E: Clone> Fragment<V, E> {
    /// Applies a resolved mutation batch and returns the updated fragment.
    ///
    /// Local and deterministic: surviving edges keep their CSR order, net
    /// additions relevant to this fragment (an endpoint owned here) append in
    /// insertion order, and every derived table is rebuilt through the same
    /// assembly path as [`crate::build_fragments`] — so the result is
    /// bit-identical to a from-scratch cut of the updated graph (see the
    /// [module docs](self)).
    pub fn apply_mutations(
        &self,
        batch: &ResolvedMutations<V, E>,
    ) -> Result<Fragment<V, E>, GraphError> {
        let my = self.id;
        let removed_v: HashSet<VertexId> = batch.net.removed_vertices.iter().copied().collect();
        let removed_e: HashSet<(VertexId, VertexId)> =
            batch.net.removed_edges.iter().copied().collect();

        // Owner of every vertex this fragment can encounter: its own state
        // covers the old edge endpoints, the batch covers everything new.
        let mut owner: HashMap<VertexId, FragmentId> = HashMap::new();
        for &v in self.inner_vertices() {
            owner.insert(v, my);
        }
        for &v in self.outer_vertices() {
            if let Some(f) = self.owner_of(v) {
                owner.insert(v, f);
            }
        }
        for &(v, f) in &batch.owners {
            owner.insert(v, f as FragmentId);
        }
        let mut payload: HashMap<VertexId, &V> = HashMap::new();
        for (v, d) in &batch.endpoint_data {
            payload.insert(*v, d);
        }
        for (v, d) in &batch.net.added_vertices {
            payload.insert(*v, d);
        }

        // 1. Edge list: surviving local copies in CSR order, then relevant
        //    net additions in insertion order.
        let mut edges: Vec<EdgeRecord<E>> = Vec::with_capacity(self.graph.num_edges());
        for r in self.graph.edge_records() {
            if removed_e.contains(&(r.src, r.dst))
                || removed_v.contains(&r.src)
                || removed_v.contains(&r.dst)
            {
                continue;
            }
            edges.push(r);
        }
        for (s, d, w) in &batch.net.added_edges {
            let os = *owner.get(s).ok_or(GraphError::UnknownVertex(*s))?;
            let od = *owner.get(d).ok_or(GraphError::UnknownVertex(*d))?;
            if os == my || od == my {
                edges.push(EdgeRecord::new(*s, *d, w.clone()));
            }
        }

        // 2. Inner set: survivors plus inserted vertices owned here.
        let mut inner: BTreeSet<VertexId> = self
            .inner_vertices()
            .iter()
            .copied()
            .filter(|v| !removed_v.contains(v))
            .collect();
        for (v, _) in &batch.net.added_vertices {
            if owner.get(v) == Some(&my) {
                inner.insert(*v);
            }
        }

        // 3. Outer set and mirror routing, re-derived from the final edge
        //    list — the same discovery rule build_fragments applies to the
        //    global edge stream, evaluated on the local one (which contains
        //    every edge incident to an inner vertex by construction).
        let mut outer: BTreeSet<VertexId> = BTreeSet::new();
        let mut mirrored: BTreeMap<VertexId, BTreeSet<FragmentId>> = BTreeMap::new();
        for r in &edges {
            let os = *owner.get(&r.src).ok_or(GraphError::UnknownVertex(r.src))?;
            let od = *owner.get(&r.dst).ok_or(GraphError::UnknownVertex(r.dst))?;
            if os == od {
                continue;
            }
            if os == my {
                mirrored.entry(r.src).or_default().insert(od);
                outer.insert(r.dst);
            }
            if od == my {
                mirrored.entry(r.dst).or_default().insert(os);
                outer.insert(r.src);
            }
        }

        let inner_list: Vec<VertexId> = inner.into_iter().collect();
        let outer_list: Vec<VertexId> = outer.into_iter().collect();
        let mut vertices: Vec<(VertexId, V)> =
            Vec::with_capacity(inner_list.len() + outer_list.len());
        for &v in inner_list.iter().chain(outer_list.iter()) {
            let data = self
                .graph
                .vertex_data(v)
                .cloned()
                .or_else(|| payload.get(&v).map(|d| (*d).clone()))
                .unwrap_or_default();
            vertices.push((v, data));
        }
        let local_graph = CsrGraph::from_records(vertices, edges, true)?;
        let outer_owner: HashMap<VertexId, FragmentId> = outer_list
            .iter()
            .map(|&v| (v, *owner.get(&v).expect("outer endpoints have owners")))
            .collect();
        let mirrored: HashMap<VertexId, Vec<FragmentId>> = mirrored
            .into_iter()
            .map(|(v, fs)| (v, fs.into_iter().collect()))
            .collect();
        Ok(assemble_fragment(
            my,
            self.num_fragments,
            local_graph,
            inner_list,
            outer_list,
            outer_owner,
            mirrored,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::build_fragments;
    use crate::strategy::{HashPartitioner, Partitioner};
    use grape_graph::generators::erdos_renyi;
    use grape_graph::{DeltaGraph, GraphMutation};

    fn assert_fragments_eq(
        incremental: &[Fragment<(), f64>],
        fresh: &[Fragment<(), f64>],
        context: &str,
    ) {
        assert_eq!(incremental.len(), fresh.len());
        for (a, b) in incremental.iter().zip(fresh) {
            assert_eq!(a.to_parts(), b.to_parts(), "{context}: fragment {}", a.id);
            assert_eq!(
                a.graph.edges().collect::<Vec<_>>(),
                b.graph.edges().collect::<Vec<_>>(),
                "{context}: CSR edge order of fragment {}",
                a.id
            );
            assert_eq!(a.border_vertices(), b.border_vertices(), "{context}");
            assert_eq!(
                a.mirrored_inner_border_positions(),
                b.mirrored_inner_border_positions(),
                "{context}"
            );
        }
    }

    /// Applies batches both ways — incrementally to resident fragments, and
    /// by re-cutting the updated graph from scratch — and demands bitwise
    /// equality after every batch.
    fn check_batches(seed: u64, k: usize, batches: Vec<Vec<GraphMutation<(), f64>>>) {
        let g = erdos_renyi(120, 0.04, seed).unwrap();
        let mut assignment = HashPartitioner.partition(&g, k);
        let mut fragments = build_fragments(&g, &assignment);
        let mut delta = DeltaGraph::new(g);
        for (i, batch) in batches.into_iter().enumerate() {
            let receipt = delta.apply(&batch).expect("valid batch");
            let resolved = resolve_net_mutations(receipt.net, &mut assignment, |v| {
                delta.vertex_data(v).cloned()
            });
            fragments = fragments
                .iter()
                .map(|f| f.apply_mutations(&resolved).expect("apply"))
                .collect();
            let fresh = build_fragments(&delta.snapshot(true), &assignment);
            assert_fragments_eq(&fragments, &fresh, &format!("batch {i}"));
        }
    }

    #[test]
    fn edge_insertions_match_a_fresh_cut() {
        check_batches(
            7,
            3,
            vec![
                vec![
                    GraphMutation::AddEdge {
                        src: 3,
                        dst: 90,
                        data: 0.5,
                    },
                    GraphMutation::AddEdge {
                        src: 90,
                        dst: 3,
                        data: 0.25,
                    },
                    GraphMutation::AddEdge {
                        src: 1,
                        dst: 2,
                        data: 1.5,
                    },
                ],
                // A second batch with a parallel copy of an existing pair.
                vec![GraphMutation::AddEdge {
                    src: 3,
                    dst: 90,
                    data: 0.75,
                }],
            ],
        );
    }

    #[test]
    fn vertex_insertions_land_on_their_hash_owner() {
        let g = erdos_renyi(80, 0.05, 11).unwrap();
        let mut assignment = HashPartitioner.partition(&g, 4);
        let fragments = build_fragments(&g, &assignment);
        let mut delta = DeltaGraph::new(g);
        let receipt = delta
            .apply(&[
                GraphMutation::AddVertex { id: 500, data: () },
                GraphMutation::AddEdge {
                    src: 500,
                    dst: 0,
                    data: 1.0,
                },
                GraphMutation::AddEdge {
                    src: 7,
                    dst: 500,
                    data: 2.0,
                },
            ])
            .unwrap();
        let resolved = resolve_net_mutations(receipt.net, &mut assignment, |v| {
            delta.vertex_data(v).cloned()
        });
        assert_eq!(assignment.fragment_of(500), Some(hash_fragment_of(500, 4)));
        let updated: Vec<_> = fragments
            .iter()
            .map(|f| f.apply_mutations(&resolved).unwrap())
            .collect();
        let home = hash_fragment_of(500, 4);
        assert!(updated[home].is_inner(500));
        for (i, f) in updated.iter().enumerate() {
            if i != home {
                assert!(!f.is_inner(500));
            }
        }
        assert_fragments_eq(
            &updated,
            &build_fragments(&delta.snapshot(true), &assignment),
            "vertex insert",
        );
    }

    #[test]
    fn mixed_batches_with_deletions_match_a_fresh_cut() {
        // Find a few edges that actually exist so removals are valid.
        let g = erdos_renyi(120, 0.04, 13).unwrap();
        let existing: Vec<(VertexId, VertexId)> =
            g.edges().map(|(s, d, _)| (s, d)).take(4).collect();
        let mut batches = vec![vec![
            GraphMutation::RemoveEdge {
                src: existing[0].0,
                dst: existing[0].1,
            },
            GraphMutation::AddEdge {
                src: existing[0].0,
                dst: existing[0].1,
                data: 42.0,
            },
            GraphMutation::AddVertex { id: 300, data: () },
            GraphMutation::AddEdge {
                src: 300,
                dst: existing[1].0,
                data: 3.0,
            },
        ]];
        batches.push(vec![
            GraphMutation::RemoveEdge {
                src: existing[2].0,
                dst: existing[2].1,
            },
            GraphMutation::RemoveVertex { id: existing[3].0 },
        ]);
        check_batches(13, 4, batches);
    }

    #[test]
    fn removing_a_border_vertex_rewires_the_border_tables() {
        // Pick a vertex that is mirrored somewhere so its removal must shrink
        // border tables on several fragments at once.
        let g = erdos_renyi(100, 0.06, 17).unwrap();
        let assignment = HashPartitioner.partition(&g, 3);
        let fragments = build_fragments(&g, &assignment);
        let victim = *fragments[0]
            .mirrored_inner_vertices()
            .first()
            .expect("dense ER graph has cross edges");
        check_batches(
            17,
            3,
            vec![vec![GraphMutation::RemoveVertex { id: victim }]],
        );
    }

    #[test]
    fn empty_batches_are_identity() {
        let g = erdos_renyi(60, 0.05, 19).unwrap();
        let mut assignment = HashPartitioner.partition(&g, 2);
        let fragments = build_fragments(&g, &assignment);
        let net: NetMutations<(), f64> = NetMutations::default();
        let resolved = resolve_net_mutations(net, &mut assignment, |_| Some(()));
        assert!(resolved.is_empty());
        for f in &fragments {
            let back = f.apply_mutations(&resolved).unwrap();
            assert_eq!(back.to_parts(), f.to_parts());
        }
    }
}
