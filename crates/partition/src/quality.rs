//! Partition-quality metrics.
//!
//! The demo's Analytics panel reports communication and computation cost per
//! partition strategy; those costs are driven by the structural quality of
//! the partition. This module computes the standard quality measures used to
//! compare strategies in the benchmark harness: edge cut, replication factor
//! and vertex balance.

use crate::assignment::PartitionAssignment;
use grape_graph::{CsrGraph, VertexId};
use std::collections::HashSet;

/// Quality report for a partition of a specific graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Number of fragments with at least one vertex.
    pub used_fragments: usize,
    /// Number of directed edges whose endpoints live on different fragments.
    pub cut_edges: usize,
    /// Fraction of edges cut (`cut_edges / num_edges`).
    pub cut_ratio: f64,
    /// Total number of mirror (outer) vertex copies across all fragments.
    pub mirror_vertices: usize,
    /// Average number of copies per vertex (1.0 = no replication).
    pub replication_factor: f64,
    /// Largest fragment size divided by the ideal size `n / k`.
    pub balance: f64,
    /// Vertex counts per fragment.
    pub sizes: Vec<usize>,
}

/// Evaluates the quality of `assignment` on `graph`.
pub fn evaluate_partition<V: Clone, E: Clone>(
    graph: &CsrGraph<V, E>,
    assignment: &PartitionAssignment,
) -> PartitionQuality {
    let k = assignment.num_fragments().max(1);
    let owner = |v: VertexId| assignment.fragment_of(v).unwrap_or(0);
    let mut cut = 0usize;
    // The set of (fragment, vertex) mirror pairs.
    let mut mirrors: HashSet<(usize, VertexId)> = HashSet::new();
    for (s, d, _) in graph.edges() {
        let fs = owner(s);
        let fd = owner(d);
        if fs != fd {
            cut += 1;
            mirrors.insert((fd, s));
            mirrors.insert((fs, d));
        }
    }
    let sizes = assignment.sizes();
    let used = sizes.iter().filter(|s| **s > 0).count();
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let ideal = if k == 0 { 0.0 } else { n as f64 / k as f64 };
    let max_size = sizes.iter().copied().max().unwrap_or(0);
    PartitionQuality {
        used_fragments: used,
        cut_edges: cut,
        cut_ratio: if m == 0 { 0.0 } else { cut as f64 / m as f64 },
        mirror_vertices: mirrors.len(),
        replication_factor: if n == 0 {
            1.0
        } else {
            (n + mirrors.len()) as f64 / n as f64
        },
        balance: if ideal == 0.0 {
            1.0
        } else {
            max_size as f64 / ideal
        },
        sizes,
    }
}

impl PartitionQuality {
    /// Renders a one-line summary used by the bench harness tables.
    pub fn summary(&self) -> String {
        format!(
            "fragments={} cut={} ({:.2}%) replication={:.3} balance={:.3}",
            self.used_fragments,
            self.cut_edges,
            100.0 * self.cut_ratio,
            self.replication_factor,
            self.balance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{HashPartitioner, Partitioner, RangePartitioner};
    use grape_graph::GraphBuilder;

    fn chain(n: u64) -> CsrGraph<(), f64> {
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..n - 1 {
            b.add_edge(v, v + 1, 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_range_partition_cuts_k_minus_one_edges() {
        let g = chain(100);
        let a = RangePartitioner.partition(&g, 4);
        let q = evaluate_partition(&g, &a);
        assert_eq!(q.cut_edges, 3);
        assert_eq!(q.used_fragments, 4);
        assert!((q.balance - 1.0).abs() < 0.05);
        assert_eq!(q.mirror_vertices, 6, "each cut edge mirrors two vertices");
    }

    #[test]
    fn perfect_partition_of_disconnected_graph_has_zero_cut() {
        let mut b = GraphBuilder::<(), ()>::new();
        b.add_edge(0, 1, ());
        b.add_edge(10, 11, ());
        let g = b.build().unwrap();
        let mut a = PartitionAssignment::new(2);
        a.assign(0, 0);
        a.assign(1, 0);
        a.assign(10, 1);
        a.assign(11, 1);
        let q = evaluate_partition(&g, &a);
        assert_eq!(q.cut_edges, 0);
        assert_eq!(q.cut_ratio, 0.0);
        assert_eq!(q.replication_factor, 1.0);
    }

    #[test]
    fn cut_ratio_and_replication_are_consistent() {
        let g = chain(50);
        let a = HashPartitioner.partition(&g, 5);
        let q = evaluate_partition(&g, &a);
        assert!(q.cut_ratio >= 0.0 && q.cut_ratio <= 1.0);
        assert!(q.replication_factor >= 1.0);
        assert_eq!(q.sizes.iter().sum::<usize>(), 50);
        assert!(q.summary().contains("cut="));
    }

    #[test]
    fn empty_graph_quality() {
        let g = CsrGraph::<(), ()>::from_records(vec![], vec![], false).unwrap();
        let a = PartitionAssignment::new(3);
        let q = evaluate_partition(&g, &a);
        assert_eq!(q.cut_edges, 0);
        assert_eq!(q.balance, 1.0);
        assert_eq!(q.replication_factor, 1.0);
    }
}
