//! Basic partition strategies: hash, contiguous range (1D) and 2-D grid.
//!
//! These are the "1D/2D" strategies mentioned in Section 3(2) of the paper.
//! They ignore the edge structure entirely and therefore serve as the
//! baseline that the streaming and multilevel strategies improve upon.

use crate::assignment::{FragmentId, PartitionAssignment};
use grape_graph::{CsrGraph, VertexId};

/// The fragment the hash rule places a vertex on: Fibonacci hashing of the
/// 64-bit id for good spread even when ids are consecutive integers.
///
/// Exposed standalone because it is also the placement rule for vertices
/// *inserted after* partitioning (mutation batches on a resident graph):
/// new vertices land where a fresh hash partition would have put them, so a
/// hash-partitioned graph keeps its invariant across updates.
pub fn hash_fragment_of(v: VertexId, k: usize) -> FragmentId {
    let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h % k.max(1) as u64) as usize
}

/// A graph-partition strategy: maps every vertex of a graph to one of `k`
/// fragments.
pub trait Partitioner {
    /// Partitions `graph` into at most `k` fragments.
    fn partition<V: Clone, E: Clone>(
        &self,
        graph: &CsrGraph<V, E>,
        k: usize,
    ) -> PartitionAssignment;

    /// Short name used in reports and benchmark tables.
    fn name(&self) -> &'static str;
}

/// Hash partitioner: `fragment = hash(vertex) % k`.
///
/// This is the default placement of Pregel/Giraph and GraphLab, and the
/// strategy GRAPE's Table 1 competitors implicitly use.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn partition<V: Clone, E: Clone>(
        &self,
        graph: &CsrGraph<V, E>,
        k: usize,
    ) -> PartitionAssignment {
        let k = k.max(1);
        let mut assignment = PartitionAssignment::new(k);
        for v in graph.vertices() {
            assignment.assign(v, hash_fragment_of(v, k));
        }
        assignment
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Range partitioner: sorts vertex ids and cuts them into `k` contiguous
/// chunks (the classic 1D partition). Works well when vertex ids encode
/// locality (e.g. road networks numbered row by row).
#[derive(Debug, Clone, Copy, Default)]
pub struct RangePartitioner;

impl Partitioner for RangePartitioner {
    fn partition<V: Clone, E: Clone>(
        &self,
        graph: &CsrGraph<V, E>,
        k: usize,
    ) -> PartitionAssignment {
        let k = k.max(1);
        let mut assignment = PartitionAssignment::new(k);
        let n = graph.num_vertices();
        if n == 0 {
            return assignment;
        }
        let per = n.div_ceil(k);
        for (pos, v) in graph.vertices().enumerate() {
            assignment.assign(v, (pos / per).min(k - 1));
        }
        assignment
    }

    fn name(&self) -> &'static str {
        "range-1d"
    }
}

/// 2-D grid partitioner: interprets the sorted vertex position as a point in
/// a √n × √n square and tiles the square with a `rows × cols` grid of
/// fragments. A simple stand-in for 2D edge partitioning schemes; for road
/// networks whose ids are laid out row-major (as our generator does) this
/// yields spatially compact fragments.
#[derive(Debug, Clone, Copy, Default)]
pub struct Grid2DPartitioner;

impl Partitioner for Grid2DPartitioner {
    fn partition<V: Clone, E: Clone>(
        &self,
        graph: &CsrGraph<V, E>,
        k: usize,
    ) -> PartitionAssignment {
        let k = k.max(1);
        let mut assignment = PartitionAssignment::new(k);
        let n = graph.num_vertices();
        if n == 0 {
            return assignment;
        }
        // Choose a fragment grid  rows × cols ≈ k  with rows <= cols.
        let mut rows = (k as f64).sqrt().floor() as usize;
        while rows > 1 && !k.is_multiple_of(rows) {
            rows -= 1;
        }
        let rows = rows.max(1);
        let cols = k / rows;
        let side = (n as f64).sqrt().ceil() as usize;
        let side = side.max(1);
        for (pos, v) in graph.vertices().enumerate() {
            let x = pos % side;
            let y = pos / side;
            let fx = (x * cols / side).min(cols - 1);
            let fy = (y.min(side - 1) * rows / side).min(rows - 1);
            let frag = fy * cols + fx;
            assignment.assign(v, frag.min(k - 1));
        }
        assignment
    }

    fn name(&self) -> &'static str {
        "grid-2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::generators::{erdos_renyi, road_network, RoadNetworkConfig};

    #[test]
    fn hash_partition_is_balanced() {
        let g = erdos_renyi(1_000, 0.005, 1).unwrap();
        let a = HashPartitioner.partition(&g, 8);
        let sizes = a.sizes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min < 120, "hash keeps fragments similar: {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 1_000);
    }

    #[test]
    fn range_partition_is_contiguous() {
        let g = erdos_renyi(100, 0.05, 2).unwrap();
        let a = RangePartitioner.partition(&g, 4);
        // Vertices are 0..100 in sorted order; fragment must be monotone.
        let mut last = 0;
        for v in g.vertices() {
            let f = a.fragment_of(v).unwrap();
            assert!(f >= last);
            last = f;
        }
        assert_eq!(a.sizes().iter().sum::<usize>(), 100);
    }

    #[test]
    fn grid_partition_covers_all_and_stays_in_range() {
        let g = road_network(
            RoadNetworkConfig {
                width: 20,
                height: 20,
                removal_prob: 0.0,
                shortcut_prob: 0.0,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        for k in [1, 2, 4, 6, 9, 16] {
            let a = Grid2DPartitioner.partition(&g, k);
            assert_eq!(a.num_assigned(), g.num_vertices(), "k = {k}");
            for (_, f) in a.iter() {
                assert!(f < k);
            }
        }
    }

    #[test]
    fn partitioners_handle_k_one_and_empty_graphs() {
        let g = erdos_renyi(10, 0.2, 3).unwrap();
        let single = [
            HashPartitioner.partition(&g, 1),
            RangePartitioner.partition(&g, 1),
            Grid2DPartitioner.partition(&g, 1),
        ];
        for a in &single {
            assert!(a.iter().all(|(_, f)| f == 0));
        }
        let empty = grape_graph::CsrGraph::<(), ()>::from_records(vec![], vec![], false).unwrap();
        let a = RangePartitioner.partition(&empty, 4);
        assert_eq!(a.num_assigned(), 0);
        let a = Grid2DPartitioner.partition(&empty, 4);
        assert_eq!(a.num_assigned(), 0);
    }

    #[test]
    fn partitioner_names() {
        assert_eq!(HashPartitioner.name(), "hash");
        assert_eq!(RangePartitioner.name(), "range-1d");
        assert_eq!(Grid2DPartitioner.name(), "grid-2d");
    }
}
